//! The streaming runtime: live ingestion over the pipelined engine.
//!
//! ```text
//!  producers ──push──▶ sharded ingest buffers (one striped shard per
//!                         │ source; bounded, backpressured)
//!                         │ seal (flush / count / tick): O(1) swap per
//!                         ▼ source → pooled Arc'd epoch columns
//!            WAL append ── PhaseScript segment + LiveFeed columns
//!                         │ admit (batched + silence-aware: provably
//!                         ▼ silent source polls are never scheduled)
//!              LiveEngine (k workers, pipelined phases)
//!                         │ phases retire in order
//!                         ▼
//!              delivery thread ──▶ subscribers (serial order)
//! ```
//!
//! The runtime never touches the scheduling algorithm: it only decides
//! *when* the environment step runs (epoch sealing) and observes sink
//! emissions *after* their phase has retired. Serializability is
//! therefore inherited from the engine, and every run commits a
//! [`PhaseScript`] that replays the exact same history through the
//! sequential oracle.
//!
//! ## Durability
//!
//! With [`StreamRuntimeBuilder::durable`], sealing appends each
//! committed row to a write-ahead log (`ec-store`) *before* the phase
//! is admitted — the log is the authoritative commit, so a killed
//! process loses no accepted epoch. Periodic snapshots
//! ([`snapshot_every`](StreamRuntimeBuilder::snapshot_every),
//! [`snapshot_on_flush`](StreamRuntimeBuilder::snapshot_on_flush),
//! [`StreamRuntime::checkpoint`]) capture operator state at retired
//! phase boundaries to bound recovery time;
//! [`StreamRuntimeBuilder::restore`] rebuilds from the newest usable
//! snapshot, replays the log tail through the engine, and resumes at
//! the exact next phase with global phase numbering intact.

use crate::error::{PushError, RuntimeError};
use crate::ingest::IngestBuffers;
use crate::obs::MetricsRegistry;
use crate::policy::{Backpressure, EpochPolicy};
use crate::script::{PhaseScript, ScriptSegment};
use ec_core::{EnginePool, ExecutionHistory, LiveEngine, MetricsSnapshot, PathLatency};
use ec_events::{ColumnPool, FeedWriter, PhaseColumn, Value};
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use ec_graph::VertexId;
use ec_obs::{
    FlightRecorder, HealthConfig, HealthMonitor, HealthReport, LaneObs, LogHistogram,
    MetricsServer, Observation, SourceObs, SpanKind,
};
use ec_store::{Recovery, Snapshotter, StoreIo, WalOptions, WalWriter};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered live source.
struct LiveSource {
    name: String,
    vertex: VertexId,
    writer: FeedWriter,
}

/// Durability configuration (immutable after build).
struct DurableCfg {
    dir: PathBuf,
    /// Snapshot automatically once this many phases have been admitted
    /// since the last snapshot.
    snapshot_every: Option<u64>,
    /// Snapshot after every explicit [`StreamRuntime::flush`].
    snapshot_on_flush: bool,
    /// WAL segment size bound (rotation threshold).
    segment_bytes: u64,
    /// Compact the WAL after this many successful snapshots (0 = never).
    compact_every: u64,
    /// Bounded retry for transient store errors.
    store_retry: StoreRetry,
    /// The I/O plane every store mutation goes through (swappable for
    /// fault injection).
    io: Arc<dyn StoreIo>,
}

impl DurableCfg {
    fn wal_options(&self) -> WalOptions {
        WalOptions {
            segment_bytes: self.segment_bytes,
            io: Arc::clone(&self.io),
        }
    }
}

/// Bounded-retry policy for transient store failures (see
/// [`StreamRuntimeBuilder::store_retry`]): `attempts` extra tries after
/// the first failure, sleeping `base_delay` before the first retry and
/// doubling it each time.
#[derive(Debug, Clone)]
pub struct StoreRetry {
    /// Extra attempts after the first failure.
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
}

impl Default for StoreRetry {
    fn default() -> Self {
        StoreRetry {
            attempts: 3,
            base_delay: Duration::from_millis(1),
        }
    }
}

/// Runs `op`, retrying transient failures per `retry` with exponential
/// backoff; counts retries into `retries`. Returns the first success or
/// the last error.
fn retry_store<T>(
    retry: &StoreRetry,
    retries: &AtomicU64,
    mut op: impl FnMut() -> Result<T, ec_store::StoreError>,
) -> Result<T, ec_store::StoreError> {
    let mut result = op();
    let mut delay = retry.base_delay;
    for _ in 0..retry.attempts {
        if result.is_ok() {
            break;
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        delay = delay.saturating_mul(2);
        retries.fetch_add(1, Relaxed);
        result = op();
    }
    result
}

/// Store-plane counters, rendered as `ec_store_*` on `/metrics`.
#[derive(Default)]
struct StoreStats {
    /// Successful WAL group commits.
    commits: AtomicU64,
    /// Retried store operations (commits, snapshots) after a failure.
    retries: AtomicU64,
    /// Live WAL bytes across all segments (gauge).
    wal_bytes: AtomicU64,
    /// Live WAL segment count (gauge).
    segments: AtomicU64,
    /// Full snapshots written.
    snapshots_full: AtomicU64,
    /// Incremental (delta) snapshots written.
    snapshots_delta: AtomicU64,
    /// Compactions that removed at least one segment.
    compactions: AtomicU64,
    /// 1 once durability was suspended (degraded mode).
    degraded: AtomicU64,
}

/// A plain copy of [`StoreStats`] for rendering.
pub(crate) struct StoreStatsSnapshot {
    pub(crate) commits: u64,
    pub(crate) retries: u64,
    pub(crate) wal_bytes: u64,
    pub(crate) segments: u64,
    pub(crate) snapshots_full: u64,
    pub(crate) snapshots_delta: u64,
    pub(crate) compactions: u64,
    pub(crate) degraded: bool,
}

impl StoreStats {
    fn snapshot(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            commits: self.commits.load(Relaxed),
            retries: self.retries.load(Relaxed),
            wal_bytes: self.wal_bytes.load(Relaxed),
            segments: self.segments.load(Relaxed),
            snapshots_full: self.snapshots_full.load(Relaxed),
            snapshots_delta: self.snapshots_delta.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
            degraded: self.degraded.load(Relaxed) != 0,
        }
    }
}

/// Seal-side state: the WAL, the committed columnar script and the
/// column pool. One mutex serializes *seals* (and snapshots) against
/// each other — producers never touch it; they push into the sharded
/// [`IngestBuffers`] and only the pusher that triggers an automatic
/// seal crosses over. The interleaving of pushes and flushes is still a
/// well-defined sequence of committed rows: each seal's drain is the
/// commit point, and the WAL records exactly that sequence.
struct SealState {
    wal: Option<WalWriter>,
    /// Committed script segments (empty when `record_script` is off):
    /// the same `Arc`'d columns handed to the WAL and the live feeds.
    script: Vec<ScriptSegment>,
    /// Recycler for epoch column storage: in steady state a seal
    /// allocates nothing.
    pool: ColumnPool,
    /// Phase of the last snapshot written (0 = none yet).
    last_snapshot: u64,
    /// First snapshot failure, if any: periodic snapshots stop (the WAL
    /// alone still guarantees recovery) and the error surfaces on the
    /// next explicit flush/tick/checkpoint call.
    snapshot_error: Option<RuntimeError>,
    /// Incremental-snapshot cadence: deltas between fulls, diffed
    /// against the previously captured state.
    snapshotter: Snapshotter,
    /// Successful snapshots since the last compaction.
    snapshots_since_compact: u64,
}

/// Default trace sampling rate: 1 in 64 pushes carries a causal trace.
const DEFAULT_TRACE_SAMPLING: u64 = 64;

/// Bound on traces awaiting delivery. Past it the oldest are dropped —
/// sampling loss, never memory growth, when subscribers lag far behind.
const MAX_PENDING_TRACES: usize = 4096;

/// One sampled event between its seal (phase assignment) and its
/// phase's sink delivery.
struct PendingTrace {
    phase: u64,
    /// Live-source slot the event entered through.
    slot: usize,
    trace_id: u64,
    /// Push timestamp, nanoseconds since [`TracePlane::epoch`].
    ingest_nanos: u64,
}

/// The causal-tracing plane: samples producer pushes 1-in-N, assigns
/// trace ids, and accumulates end-to-end (source, sink) latency
/// histograms as traced phases deliver.
struct TracePlane {
    /// Power-of-two sampling interval (a push is sampled when its
    /// source's counter hits a multiple of it).
    mask: u64,
    /// Per-source push counters (sampling is per source, so a quiet
    /// source still gets traces).
    counters: Vec<AtomicU64>,
    next_id: AtomicU64,
    /// The clock all trace timestamps are relative to.
    epoch: Instant,
    /// Traces sealed into phases, awaiting those phases' deliveries.
    /// Globally phase-sorted: seals serialize under the seal lock and
    /// each appends its batch in phase order.
    pending: Mutex<VecDeque<PendingTrace>>,
    /// End-to-end latency per (source slot, sink vertex index) path.
    /// Written only by the delivery thread; snapshotted by scrapes.
    e2e: Mutex<HashMap<(usize, usize), LogHistogram>>,
}

impl TracePlane {
    fn new(sample_every: u64, sources: usize) -> TracePlane {
        TracePlane {
            mask: sample_every.max(1).next_power_of_two() - 1,
            counters: (0..sources).map(|_| AtomicU64::new(0)).collect(),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            pending: Mutex::new(VecDeque::new()),
            e2e: Mutex::new(HashMap::new()),
        }
    }

    /// Nanoseconds since the trace epoch.
    fn nanos_now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Decides whether this push is sampled; if so returns its
    /// `(trace_id, ingest_nanos)` stamp. One relaxed `fetch_add` on the
    /// unsampled path.
    fn maybe_stamp(&self, slot: usize) -> Option<(u64, u64)> {
        if self.counters[slot].fetch_add(1, Relaxed) & self.mask != 0 {
            return None;
        }
        let id = self.next_id.fetch_add(1, Relaxed);
        Some((id, self.nanos_now()))
    }

    /// Snapshots the accumulated (source, sink) histograms, resolving
    /// indices to names.
    fn path_snapshots(&self, live: &[LiveSource], names: &[Arc<str>]) -> Vec<PathLatency> {
        let e2e = self.e2e.lock();
        let mut paths: Vec<PathLatency> = e2e
            .iter()
            .map(|((slot, sink), hist)| PathLatency {
                source: live[*slot].name.clone(),
                sink: names[*sink].to_string(),
                hist: hist.snapshot(),
            })
            .collect();
        paths.sort_by(|a, b| a.source.cmp(&b.source).then(a.sink.cmp(&b.sink)));
        paths
    }
}

/// A sink emission delivered to subscribers, in serial (phase, vertex)
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkEmission {
    /// The sink node's name (as given to the builder). Shared, so
    /// fan-out to many subscribers does not copy the string.
    pub name: Arc<str>,
    /// The sink vertex.
    pub vertex: VertexId,
    /// The phase that produced the value.
    pub phase: u64,
    /// The emitted value.
    pub value: Value,
}

type Subscriber = Box<dyn FnMut(&SinkEmission) + Send>;

struct RuntimeShared {
    engine: LiveEngine,
    /// The sharded producer front door: per-source striped buffers.
    buffers: IngestBuffers,
    /// Seal/snapshot serialization and the state only seals touch.
    seal: Mutex<SealState>,
    subs: Mutex<Vec<Subscriber>>,
    /// No more pushes/seals accepted.
    stop: AtomicBool,
    /// Stops the interval ticker (set before the final flush so the
    /// ticker cannot race extra phases into a closing runtime).
    ticker_stop: AtomicBool,
    live: Vec<LiveSource>,
    /// Live-source slot per vertex, indexed by `VertexId::index()`
    /// (`None` for operators and scripted sources) — the map behind
    /// silence-aware admission.
    source_slot: Vec<Option<usize>>,
    /// Vertex names, indexed by `VertexId::index()`.
    names: Vec<Arc<str>>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    /// Record committed rows into the [`PhaseScript`]. Off for
    /// long-running services, where the script would grow without
    /// bound (the WAL, if enabled, still records every row).
    record_script: bool,
    durable: Option<DurableCfg>,
    /// Events committed to phases so far (counted at seal; per-tenant
    /// observability for session pools).
    events_committed: AtomicU64,
    /// Seals that committed at least one phase.
    seal_batches: AtomicU64,
    /// Events drained by those seals (mean drain batch size =
    /// `seal_events / seal_batches`).
    seal_events: AtomicU64,
    /// WAL group-commit durations (one sample per non-empty commit).
    wal_hist: LogHistogram,
    /// Producer push-wait durations: time a `push` spent bounced off a
    /// full ingest shard before succeeding.
    ingest_wait_hist: LogHistogram,
    /// Flight recorder shared with the engine, when one was configured
    /// ([`StreamRuntimeBuilder::flight_recorder`]). The runtime records
    /// its control-plane events (seal, WAL commit, snapshot) on lane 0.
    recorder: Option<Arc<FlightRecorder>>,
    /// Causal trace sampling, `None` when disabled
    /// ([`StreamRuntimeBuilder::trace_sampling`] of 0).
    trace: Option<TracePlane>,
    /// The watchdog, fed by the delivery loop; always on (its cost is
    /// one observation per delivery wakeup).
    health: HealthMonitor,
    /// `Some(reason)` once durability was suspended after a persistent
    /// store failure — ingest keeps flowing, the WAL is closed, and the
    /// reason (`"degraded: wal <path>: <cause>"`) is reported by the
    /// health plane until restart.
    degraded: Mutex<Option<String>>,
    /// Store-plane counters (`ec_store_*`).
    store_stats: StoreStats,
}

impl RuntimeShared {
    /// Seals the current epoch: swaps every source's buffered column
    /// out of the sharded ingest buffers (O(1) per source), commits
    /// `max(longest buffer, min_phases)` phases, stages the WAL frames
    /// (when durable), hands each frozen column to its live feed and
    /// the script as a shared `Arc`, then admits the whole batch
    /// through one or few lock acquisitions. Caller holds the seal
    /// lock; producers keep pushing into the buffers throughout.
    fn seal_locked(&self, seal: &mut SealState, min_phases: u64) -> Result<u64, RuntimeError> {
        // A closed runtime seals nothing: bins staged by an aborted
        // seal must never be consumed by a later admission, or live
        // phases would desynchronize from the WAL.
        if self.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        // The drain is the commit point: whatever each shard swap
        // observed is this epoch's binning. Pushes racing the drain
        // land in the next epoch.
        let mut drained = self.buffers.drain(&mut seal.pool);
        let longest = drained
            .iter()
            .map(|(bins, _)| bins.len())
            .max()
            .unwrap_or(0) as u64;
        let phases = longest.max(min_phases);
        if phases == 0 {
            for (bins, _) in drained {
                seal.pool.give_back(bins);
            }
            return Ok(0);
        }
        // Phase numbering for this epoch: bin `r` becomes phase
        // `base + r + 1`. All admission happens under the seal lock we
        // hold, so `admitted()` here is exactly the base the admit loop
        // below continues from — which lets sampled trace stamps be
        // resolved to their final phase numbers before admission.
        let base = self.engine.admitted();
        // Freeze the epoch: each drained buffer *is* its source's
        // column — pad the shorter ones with silent bins and share.
        // Events were appended in FIFO push order, so no per-event
        // move or per-row allocation happens here. Sampled trace stamps
        // ride their column; their phases are marked in the engine
        // *before* admission so exec/retire spans bypass sampling.
        let mut events = 0u64;
        let mut traces: Vec<PendingTrace> = Vec::new();
        let cols: Vec<Arc<PhaseColumn>> = drained
            .drain(..)
            .enumerate()
            .map(|(slot, (mut bins, stamps))| {
                events += bins.len() as u64;
                bins.resize(phases as usize, None);
                for s in &stamps {
                    let phase = base + s.bin as u64 + 1;
                    self.engine.mark_traced(phase);
                    traces.push(PendingTrace {
                        phase,
                        slot,
                        trace_id: s.trace_id,
                        ingest_nanos: s.ingest_nanos,
                    });
                }
                seal.pool.seal_stamped(bins, stamps)
            })
            .collect();
        // Stage all the epoch's WAL frames into the writer's buffer
        // (encoded row-major from the columns, via the writer's
        // recycled scratch) and flush them with a single `write_all` —
        // group commit, one syscall per epoch instead of one per row.
        // The commit is the durable cut point: bins are staged for the
        // engine only after the whole epoch has reached the OS. A WAL
        // failure (disk full, I/O error) gets a bounded retry with
        // exponential backoff — the writer's repair path truncates the
        // partial batch and rewrites it, so a retried commit is
        // exactly-once. If the failure persists the runtime flips to
        // DEGRADED instead of stopping: the WAL is closed, ingest keeps
        // flowing (this epoch included, now without a durability
        // guarantee), and the health plane reports `degraded: wal` with
        // the failing path until restart.
        let mut suspend_wal = false;
        if let Some(wal) = seal.wal.as_mut() {
            for r in 0..phases as usize {
                wal.stage_row_bins(cols.iter().map(|c| c[r].as_ref()));
            }
            let retry = self
                .durable
                .as_ref()
                .map(|cfg| cfg.store_retry.clone())
                .unwrap_or_default();
            match retry_store(&retry, &self.store_stats.retries, || wal.commit()) {
                Err(e) => {
                    let dir = self
                        .durable
                        .as_ref()
                        .map(|cfg| ec_store::wal_dir(&cfg.dir))
                        .unwrap_or_default();
                    let reason = format!("degraded: wal {}: {e}", dir.display());
                    *self.degraded.lock() = Some(reason);
                    self.store_stats.degraded.store(1, Relaxed);
                    suspend_wal = true;
                }
                Ok(rows) if rows > 0 => {
                    self.store_stats.commits.fetch_add(1, Relaxed);
                    self.store_stats.wal_bytes.store(wal.wal_bytes(), Relaxed);
                    self.store_stats
                        .segments
                        .store(wal.segment_count(), Relaxed);
                    let commit_nanos = wal.last_commit_nanos();
                    self.wal_hist.record(commit_nanos);
                    if let Some(r) = &self.recorder {
                        r.record_span(0, SpanKind::WalCommit, rows, 0, commit_nanos);
                    }
                }
                Ok(_) => {}
            }
        }
        if suspend_wal {
            // Dropping the writer is safe here: a failed commit leaves
            // it in its repair state, which skips the drop-time flush.
            seal.wal = None;
        }
        let staged = phases;
        for (source, col) in self.live.iter().zip(&cols) {
            source.writer.stage_column_sparse(Arc::clone(col));
        }
        self.events_committed.fetch_add(events, Relaxed);
        self.seal_batches.fetch_add(1, Relaxed);
        self.seal_events.fetch_add(events, Relaxed);
        if let Some(r) = &self.recorder {
            r.record(0, SpanKind::EpochSealed, phases, events);
        }
        // Admit the batch: one global-lock acquisition per in-flight
        // window instead of one per phase, and *silence-aware* — the
        // columns say exactly which sources are silent in which phases,
        // so those executions (provable no-ops: poll `None`, emit
        // nothing) are never scheduled at all. Admission may block on
        // the engine's throttle; the workers drain independently, so
        // this self-resolves.
        let mut admitted = 0u64;
        let mut refused = None;
        while admitted < staged {
            let base = admitted as usize;
            match self
                .engine
                .admit_batch_sparse(staged - admitted, |offset, vertex| {
                    self.live_slot(vertex)
                        .is_some_and(|slot| cols[slot][base + offset as usize].is_none())
                }) {
                Ok(n) => admitted += n,
                Err(e) => {
                    refused = Some(e);
                    break;
                }
            }
        }
        // Register sealed traces for the delivery thread, only for
        // phases that were actually admitted. The deque stays globally
        // phase-sorted: seals serialize, and this batch's phases all
        // follow every previous batch's.
        if let Some(tp) = &self.trace {
            if !traces.is_empty() {
                let limit = base + admitted;
                traces.retain(|t| t.phase <= limit);
                traces.sort_by_key(|t| t.phase);
                let mut pending = tp.pending.lock();
                pending.extend(traces);
                while pending.len() > MAX_PENDING_TRACES {
                    pending.pop_front();
                }
            }
        }
        // Record only what actually ran: refused admissions (engine
        // failed or closing) must not leave committed rows behind. The
        // staged bins past the admitted point are never polled — the
        // engine admits no further phases. (WAL rows stay: the log is
        // the durable commit and restore will replay them.) Truncation
        // is O(1): the columns stay shared, only the bound moves.
        if self.record_script && admitted > 0 {
            let mut segment = ScriptSegment::new(cols, phases as usize);
            segment.truncate(admitted as usize);
            seal.script.push(segment);
        }
        match refused {
            Some(e) => Err(e.into()),
            None => Ok(staged),
        }
    }

    /// The live-source slot of a vertex (`None` for operators and
    /// scripted sources — the ones silence-aware admission must never
    /// skip).
    fn live_slot(&self, vertex: VertexId) -> Option<usize> {
        self.source_slot.get(vertex.index()).copied().flatten()
    }

    /// Engine counters plus the ingest-side counters the runtime owns.
    fn metrics_with_ingest(&self) -> MetricsSnapshot {
        let mut m = self.engine.metrics();
        self.fill_ingest(&mut m);
        m
    }

    /// Fills the ingest-side counters and runtime-owned latency
    /// histograms into a snapshot (shared by
    /// [`metrics_with_ingest`](Self::metrics_with_ingest) and the final
    /// shutdown report, so a new counter cannot be forgotten in one).
    fn fill_ingest(&self, m: &mut MetricsSnapshot) {
        m.ingest.depths = self.buffers.depths();
        m.ingest.sources = self.live.iter().map(|s| s.name.clone()).collect();
        m.ingest.waits = self.buffers.waits();
        m.ingest.source_waits = self.buffers.wait_counts();
        m.ingest.seal_batches = self.seal_batches.load(Relaxed);
        m.ingest.seal_events = self.seal_events.load(Relaxed);
        m.latency.wal_commit = self.wal_hist.snapshot();
        m.latency.ingest_wait = self.ingest_wait_hist.snapshot();
        if let Some(tp) = &self.trace {
            m.latency.e2e = tp.path_snapshots(&self.live, &self.names);
        }
    }

    /// Takes a snapshot at the current retired boundary. Caller holds
    /// the seal lock (so no seal can interleave); waits for every
    /// admitted phase to retire first — a stop-the-world pause, which is
    /// what makes the captured state a serializable cut. Producers keep
    /// buffering throughout: unsealed events are not yet committed, so
    /// they do not belong to the cut.
    fn checkpoint_locked(&self, seal: &mut SealState) -> Result<u64, RuntimeError> {
        let Some(cfg) = &self.durable else {
            return Err(RuntimeError::Config(
                "checkpoint requires a durable runtime (StreamRuntimeBuilder::durable)".into(),
            ));
        };
        if let Some(reason) = self.degraded.lock().clone() {
            return Err(RuntimeError::Store(format!(
                "checkpoint refused: durability suspended ({reason})"
            )));
        }
        let start = Instant::now();
        self.engine.wait_idle()?;
        let checkpoint = self.engine.checkpoint_vertices()?;
        let names: Vec<String> = self.names.iter().map(|n| n.to_string()).collect();
        // Incremental snapshots: the snapshotter writes a delta of the
        // changed vertices, falling back to a full snapshot every K
        // increments (and on its first write after a restart). Errors
        // leave its memory unchanged, so a retry rewrites the same
        // file.
        let outcome = retry_store(&cfg.store_retry, &self.store_stats.retries, || {
            seal.snapshotter
                .write(&cfg.dir, &names, &checkpoint, &cfg.io)
        })
        .map_err(RuntimeError::from)?;
        if outcome.full {
            self.store_stats.snapshots_full.fetch_add(1, Relaxed);
        } else {
            self.store_stats.snapshots_delta.fetch_add(1, Relaxed);
        }
        if let Some(wal) = seal.wal.as_mut() {
            retry_store(&cfg.store_retry, &self.store_stats.retries, || wal.sync())?;
        }
        seal.last_snapshot = checkpoint.phase;
        // Compaction: with the snapshot durable, segments whose every
        // row it covers are replay-dead — drop them so a long-running
        // stream's disk usage stays bounded. Best-effort: a failed
        // compaction only leaves extra segments behind.
        seal.snapshots_since_compact += 1;
        if cfg.compact_every > 0 && seal.snapshots_since_compact >= cfg.compact_every {
            seal.snapshots_since_compact = 0;
            if let Some(wal) = seal.wal.as_mut() {
                if let Ok(report) = wal.compact(seal.last_snapshot) {
                    if report.changed() {
                        self.store_stats.compactions.fetch_add(1, Relaxed);
                    }
                }
            }
        }
        if let Some(wal) = seal.wal.as_ref() {
            self.store_stats.wal_bytes.store(wal.wal_bytes(), Relaxed);
            self.store_stats
                .segments
                .store(wal.segment_count(), Relaxed);
        }
        if let Some(r) = &self.recorder {
            r.record_span(
                0,
                SpanKind::Snapshot,
                checkpoint.phase,
                0,
                start.elapsed().as_nanos() as u64,
            );
        }
        Ok(checkpoint.phase)
    }

    /// Runs the automatic every-k-phases snapshot policy after a seal.
    /// Failures do not poison the seal (the WAL remains authoritative):
    /// the first error is remembered, periodic snapshots stop, and the
    /// error surfaces on the next explicit flush/tick/checkpoint.
    fn maybe_checkpoint_locked(&self, seal: &mut SealState) {
        let Some(cfg) = &self.durable else { return };
        let Some(every) = cfg.snapshot_every else {
            return;
        };
        if seal.snapshot_error.is_some() {
            return;
        }
        if self.engine.admitted().saturating_sub(seal.last_snapshot) >= every {
            if let Err(e) = self.checkpoint_locked(seal) {
                seal.snapshot_error = Some(e);
            }
        }
    }

    /// Surfaces (and clears) a deferred snapshot failure.
    fn take_snapshot_error(&self, seal: &mut SealState) -> Result<(), RuntimeError> {
        match seal.snapshot_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Closes sampled traces against a retired-sink batch: for every
    /// record whose phase carries pending traces, records push→delivery
    /// latency into the (source, sink) path histogram and emits a
    /// `TraceDeliver` span. `records` arrive in (phase, vertex) order
    /// and the pending deque is phase-sorted, so one forward walk
    /// suffices; traces for phases *before* a record's (their phases
    /// produced no sink output up to here) are discarded as the walk
    /// passes them.
    fn match_traces(&self, records: &[ec_core::SinkRecord]) {
        let Some(tp) = &self.trace else { return };
        let mut pending = tp.pending.lock();
        if pending.is_empty() {
            return;
        }
        let now = tp.nanos_now();
        let mut e2e = tp.e2e.lock();
        for r in records {
            let phase = r.phase.get();
            while pending.front().is_some_and(|t| t.phase < phase) {
                pending.pop_front();
            }
            // Multiple sinks can deliver the same phase, so matching
            // traces are *read*, not popped — the purge after the drain
            // retires them.
            for t in pending.iter().take_while(|t| t.phase == phase) {
                let nanos = now.saturating_sub(t.ingest_nanos);
                e2e.entry((t.slot, r.vertex.index()))
                    .or_insert_with(LogHistogram::new)
                    .record(nanos);
                if let Some(rec) = &self.recorder {
                    rec.record_span(0, SpanKind::TraceDeliver, t.trace_id, phase, nanos);
                }
            }
        }
    }

    /// Drops pending traces whose phases have fully retired — they
    /// either matched sink records in [`match_traces`] or their phases
    /// produced no sink output at all.
    fn purge_traces(&self, frontier: u64) {
        if let Some(tp) = &self.trace {
            let mut pending = tp.pending.lock();
            while pending.front().is_some_and(|t| t.phase <= frontier) {
                pending.pop_front();
            }
        }
    }

    /// Feeds one progress sample to the watchdog (called from the
    /// delivery loop, throttled by its wait cadence).
    fn observe_health(&self) {
        let depths = self.buffers.depths();
        let waits = self.buffers.wait_counts();
        let sources = self
            .live
            .iter()
            .zip(depths.iter().zip(&waits))
            .map(|(s, (&depth, &w))| SourceObs {
                name: s.name.clone(),
                depth: depth as usize,
                capacity: self.capacity,
                waits: w,
            })
            .collect();
        self.health.observe(
            Instant::now(),
            Observation {
                admitted: self.engine.admitted(),
                retired: self.engine.completed_through(),
                sources,
                lanes: vec![LaneObs {
                    name: "runtime".into(),
                    events: self.events_committed.load(Relaxed),
                }],
                faults: self.degraded.lock().clone().into_iter().collect(),
            },
        );
    }

    fn deliver(&self, records: Vec<ec_core::SinkRecord>) {
        if records.is_empty() {
            return;
        }
        self.match_traces(&records);
        let mut subs = self.subs.lock();
        for r in records {
            let emission = SinkEmission {
                name: Arc::clone(&self.names[r.vertex.index()]),
                vertex: r.vertex,
                phase: r.phase.get(),
                value: r.value,
            };
            for sub in subs.iter_mut() {
                sub(&emission);
            }
        }
    }

    /// The delivery loop: waits for phases to retire and forwards their
    /// sink emissions to subscribers in serial order. Doubles as the
    /// watchdog driver: each wakeup (at most every ~50 ms when idle)
    /// feeds the health monitor a progress sample — no extra thread.
    fn delivery_loop(&self) {
        let mut last = 0u64;
        let mut last_health = Instant::now();
        loop {
            let frontier = match self
                .engine
                .wait_progress_for(last, Duration::from_millis(50))
            {
                Ok(f) => f,
                Err(_) => {
                    // Engine failed: nothing further will retire (the
                    // error surfaces through shutdown()/wait_idle()),
                    // but phases that did retire still get delivered.
                    self.deliver(self.engine.drain_retired_sinks());
                    break;
                }
            };
            let progressed = frontier > last;
            if progressed {
                self.deliver(self.engine.drain_retired_sinks());
                self.purge_traces(frontier);
                last = frontier;
            }
            if last_health.elapsed() >= Duration::from_millis(50) {
                self.observe_health();
                last_health = Instant::now();
            }
            if self.stop.load(Relaxed) {
                // Shutdown path: everything admitted has completed by
                // now; one final drain empties the buffer.
                self.deliver(self.engine.drain_retired_sinks());
                break;
            }
            if !progressed {
                // No progress: either the 50 ms wait timed out (idle
                // stream) or the engine is quiescing for shutdown, in
                // which case wait_progress_for returns immediately —
                // pause briefly so that window doesn't busy-spin on the
                // scheduler lock while workers drain.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Builds a [`StreamRuntime`]: graph wiring plus runtime policy.
///
/// Wraps a [`CorrelatorBuilder`], adding live sources; operators and
/// scripted sources pass through to the correlator untouched.
pub struct StreamRuntimeBuilder {
    correlator: CorrelatorBuilder,
    live: Vec<LiveSource>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    threads: usize,
    max_inflight: u64,
    record_history: bool,
    record_script: bool,
    subs: Vec<Subscriber>,
    durable_dir: Option<PathBuf>,
    snapshot_every: Option<u64>,
    snapshot_on_flush: bool,
    wal_sync_every: Option<u64>,
    segment_bytes: u64,
    compact_every: u64,
    snapshot_full_every: u32,
    store_retry: StoreRetry,
    store_io: Option<Arc<dyn StoreIo>>,
    pool: Option<EnginePool>,
    pool_weight: u32,
    metrics_addr: Option<String>,
    recorder_capacity: Option<usize>,
    trace_sampling: u64,
    health_config: Option<HealthConfig>,
}

impl Default for StreamRuntimeBuilder {
    fn default() -> Self {
        StreamRuntimeBuilder::new()
    }
}

impl StreamRuntimeBuilder {
    /// New empty builder with defaults: manual epochs, blocking
    /// backpressure, 1024-event queues, 4 threads, engine-default
    /// in-flight bound, history recording on, no durability.
    pub fn new() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::from_correlator(CorrelatorBuilder::new(), Vec::new())
    }

    /// Wraps an already-started correlator. `feeds` lists its existing
    /// live sources (from [`CorrelatorBuilder::live_source`]) in wiring
    /// order; this is the path used by spec-driven construction.
    pub fn from_correlator(
        correlator: CorrelatorBuilder,
        feeds: Vec<(String, NodeHandle, FeedWriter)>,
    ) -> StreamRuntimeBuilder {
        StreamRuntimeBuilder {
            correlator,
            live: feeds
                .into_iter()
                .map(|(name, handle, writer)| LiveSource {
                    name,
                    vertex: handle.vertex(),
                    writer,
                })
                .collect(),
            policy: EpochPolicy::Manual,
            backpressure: Backpressure::Block,
            capacity: 1024,
            threads: 4,
            max_inflight: 64,
            record_history: true,
            record_script: true,
            subs: Vec::new(),
            durable_dir: None,
            snapshot_every: None,
            snapshot_on_flush: false,
            wal_sync_every: None,
            segment_bytes: ec_store::DEFAULT_SEGMENT_BYTES,
            compact_every: 1,
            snapshot_full_every: 4,
            store_retry: StoreRetry::default(),
            store_io: None,
            pool: None,
            pool_weight: 1,
            metrics_addr: None,
            recorder_capacity: None,
            trace_sampling: DEFAULT_TRACE_SAMPLING,
            health_config: None,
        }
    }

    /// Registers a subscriber **before** the runtime starts, so no
    /// emission can be missed — with a ticking epoch policy, phases can
    /// retire between `build()` and a later
    /// [`StreamRuntime::subscribe`] call.
    pub fn subscribe(mut self, f: impl FnMut(&SinkEmission) + Send + 'static) -> Self {
        self.subs.push(Box::new(f));
        self
    }

    /// Adds a live source; events are pushed through the runtime's
    /// [`SourceHandle`] for this node.
    pub fn live_source(&mut self, name: impl Into<String>) -> NodeHandle {
        let name = name.into();
        let (handle, writer) = self.correlator.live_source(name.clone());
        self.live.push(LiveSource {
            name,
            vertex: handle.vertex(),
            writer,
        });
        handle
    }

    /// Adds a scripted source (see
    /// [`CorrelatorBuilder::source`]) — useful for mixing live feeds
    /// with reference signals.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        generator: impl ec_events::EventSource + 'static,
    ) -> NodeHandle {
        self.correlator.source(name, generator)
    }

    /// Adds a computation node (see [`CorrelatorBuilder::add`]).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        module: impl ec_core::Module + 'static,
        inputs: &[NodeHandle],
    ) -> NodeHandle {
        self.correlator.add(name, module, inputs)
    }

    /// Direct access to the wrapped correlator for anything else.
    pub fn correlator_mut(&mut self) -> &mut CorrelatorBuilder {
        &mut self.correlator
    }

    /// Sets the epoch policy (default [`EpochPolicy::Manual`]).
    pub fn epoch_policy(mut self, policy: EpochPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the backpressure mode (default [`Backpressure::Block`]).
    pub fn backpressure(mut self, mode: Backpressure) -> Self {
        self.backpressure = mode;
        self
    }

    /// Sets the per-source ingest queue capacity (default 1024).
    pub fn ingest_capacity(mut self, events: usize) -> Self {
        self.capacity = events.max(1);
        self
    }

    /// Sets the engine worker count (default 4).
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Bounds started-but-incomplete phases (default 64).
    pub fn max_inflight(mut self, phases: u64) -> Self {
        self.max_inflight = phases.max(1);
        self
    }

    /// Records the full execution history (default on; turn off for
    /// long-running services and benchmarks).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Records the committed [`PhaseScript`] (default on). The script
    /// grows by one row per phase forever, so long-running services
    /// should turn it off alongside
    /// [`record_history`](Self::record_history); [`StreamRuntime::script`]
    /// and the final report's script are then empty. A durable runtime
    /// still logs every row to the WAL regardless of this setting.
    pub fn record_script(mut self, on: bool) -> Self {
        self.record_script = on;
        self
    }

    /// Enables durability: every committed row is appended to a
    /// write-ahead log in `dir` before its phase is admitted, so a
    /// killed process can be [`restore`](Self::restore)d to the exact
    /// next phase. [`build`](Self::build) creates a fresh store and
    /// refuses to overwrite an existing one; [`restore`](Self::restore)
    /// opens an existing store.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// With [`durable`](Self::durable): automatically snapshot operator
    /// state once `phases` phases have been admitted since the last
    /// snapshot. Snapshots bound recovery time; without any, restore
    /// replays the whole WAL from phase 1 (always correct, just
    /// slower). Requires every module in the graph to support
    /// [`snapshot_state`](ec_core::Module::snapshot_state).
    pub fn snapshot_every(mut self, phases: u64) -> Self {
        self.snapshot_every = Some(phases.max(1));
        self
    }

    /// With [`durable`](Self::durable): snapshot after every explicit
    /// [`StreamRuntime::flush`].
    pub fn snapshot_on_flush(mut self, on: bool) -> Self {
        self.snapshot_on_flush = on;
        self
    }

    /// Runs this runtime's engine on a shared [`EnginePool`] instead of
    /// private worker threads — the multi-tenant mode (see
    /// [`SessionPool`](crate::SessionPool), which calls this for every
    /// session it opens). [`threads`](Self::threads) is ignored (the
    /// pool's worker count applies); [`max_inflight`](Self::max_inflight)
    /// becomes this tenant's in-flight cap on the shared pool.
    pub fn pool(mut self, pool: &EnginePool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// With [`pool`](Self::pool): this tenant's weighted-round-robin
    /// admission weight (default 1) — its relative share of the shared
    /// pool's admission bandwidth under contention.
    pub fn pool_weight(mut self, weight: u32) -> Self {
        self.pool_weight = weight.max(1);
        self
    }

    /// Serves live Prometheus metrics at `addr` (e.g.
    /// `"127.0.0.1:9184"`; port 0 picks a free one, reported by
    /// [`StreamRuntime::metrics_addr`]). The endpoint is a minimal
    /// std-only HTTP server answering `GET /metrics` with the full
    /// `ec_*` exposition — engine counters, scheduler and ingest
    /// planes, and the latency summaries — re-rendered on every
    /// scrape. Binding happens in [`build`](Self::build); a busy port
    /// fails the build rather than silently dropping observability.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Sets the causal-trace sampling interval: roughly 1 in `every`
    /// pushes per source carries an end-to-end trace stamp (rounded to
    /// a power of two; default 64). Sampled events yield the
    /// (source, sink) push→delivery latency histograms in
    /// [`MetricsSnapshot`] and `/metrics`, and their phases' spans
    /// bypass the flight recorder's 1-in-8 sampling so `ec trace`
    /// shows their full causal chain. `0` disables tracing entirely.
    /// Sampling never changes what a seal commits — a traced run's
    /// `PhaseScript` is identical to an untraced one's.
    pub fn trace_sampling(mut self, every: u64) -> Self {
        self.trace_sampling = every;
        self
    }

    /// Tunes the health watchdog (stall timeout, collapse threshold,
    /// baseline half-life). The watchdog itself is always on — this
    /// only overrides [`HealthConfig::default`].
    pub fn health_config(mut self, cfg: HealthConfig) -> Self {
        self.health_config = Some(cfg);
        self
    }

    /// Attaches a flight recorder: per-worker ring buffers holding the
    /// newest `capacity` span events each (phase admitted/retired,
    /// per-vertex executions, epoch seals, WAL commits, snapshots,
    /// steal/park/wake). Recording is one clock read plus one ring
    /// write; the rings overwrite oldest-first, so a recorder left on
    /// costs the same whether drained or not. Drain with
    /// [`StreamRuntime::dump_trace`] (Chrome `chrome://tracing` JSON).
    pub fn flight_recorder(mut self, capacity: usize) -> Self {
        self.recorder_capacity = Some(capacity);
        self
    }

    /// With [`durable`](Self::durable): fsync the WAL automatically
    /// once `rows` committed rows have accumulated since the last sync
    /// — a bounded-loss commit interval between the default (sync at
    /// checkpoint/shutdown only; group commit still reaches the OS
    /// every seal) and syncing every seal (`1`).
    pub fn wal_sync_every(mut self, rows: u64) -> Self {
        self.wal_sync_every = Some(rows.max(1));
        self
    }

    /// With [`durable`](Self::durable): the WAL segment size bound
    /// (default 64 MiB). Once the active segment exceeds it, the next
    /// group commit rotates to a fresh segment — the unit compaction
    /// reclaims once a snapshot covers it.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// With [`durable`](Self::durable): compact the WAL (drop segments
    /// fully covered by the newest snapshot) after every `snapshots`
    /// successful snapshots (default 1, i.e. after each one). `0`
    /// disables compaction; the log then grows without bound.
    pub fn compact_every(mut self, snapshots: u64) -> Self {
        self.compact_every = snapshots;
        self
    }

    /// With [`durable`](Self::durable): write a full snapshot every
    /// `k`-th snapshot and cheap incremental deltas (changed operators
    /// only) in between (default 4). `1` makes every snapshot full.
    pub fn snapshot_full_every(mut self, k: u32) -> Self {
        self.snapshot_full_every = k.max(1);
        self
    }

    /// With [`durable`](Self::durable): the bounded-retry policy for
    /// transient store failures (default 3 attempts starting at 1 ms,
    /// doubling). When the retries are exhausted on a WAL commit the
    /// runtime flips to *degraded* mode instead of stopping: ingest
    /// keeps flowing, durability is suspended, and
    /// [`StreamRuntime::degraded_reason`] / the `/healthz` verdict
    /// report `degraded: wal` with the failing path.
    pub fn store_retry(mut self, attempts: u32, base_delay: Duration) -> Self {
        self.store_retry = StoreRetry {
            attempts,
            base_delay,
        };
        self
    }

    /// With [`durable`](Self::durable): routes every mutating store
    /// operation through `io` instead of the real filesystem — the
    /// fault-injection hook ([`ec_store::FaultIo`]) the crash/fault
    /// matrix uses to prove recovery and degraded mode. Reads still go
    /// to the filesystem.
    pub fn store_io(mut self, io: Arc<dyn StoreIo>) -> Self {
        self.store_io = Some(io);
        self
    }

    /// Builds and starts the runtime (workers and delivery thread spawn
    /// immediately; the interval ticker too, if configured). With
    /// [`durable`](Self::durable), creates a fresh store — errors if
    /// one already exists at the directory (use
    /// [`restore`](Self::restore) to resume it).
    pub fn build(self) -> Result<StreamRuntime, RuntimeError> {
        self.build_inner(None)
    }

    /// Restores the runtime from the durable store configured with
    /// [`durable`](Self::durable): loads the newest usable snapshot,
    /// replays the WAL tail through the engine, and resumes at the
    /// exact next phase (global phase numbering continues across the
    /// restart).
    ///
    /// The builder must describe the **identical** graph the store was
    /// written by (same nodes, names, wiring and configuration) — this
    /// is validated against the recorded source and vertex names.
    /// Subscribers registered on this builder receive the replayed
    /// tail's sink emissions again (at-least-once delivery across
    /// restarts); emissions of phases at or before the snapshot are
    /// not repeated.
    pub fn restore(self) -> Result<StreamRuntime, RuntimeError> {
        let dir = self.durable_dir.clone().ok_or_else(|| {
            RuntimeError::Config("restore requires StreamRuntimeBuilder::durable(dir)".into())
        })?;
        let recovery = Recovery::open(&dir)?;
        // A torn tail is the expected shape of a crash and is dropped;
        // a checksum/decode failure in the body is real damage. Resuming
        // would silently discard acknowledged phases (the append writer
        // truncates past the valid prefix), so refuse — inspect with
        // `ec recover`, repair or move the store, then restore.
        if let ec_store::WalTail::Corrupt {
            at_row,
            dropped_bytes,
            message,
        } = &recovery.tail
        {
            return Err(RuntimeError::Store(format!(
                "WAL in store {} is corrupt at row {at_row} ({message}; {dropped_bytes} bytes \
                 affected): refusing to resume over damaged history",
                dir.display()
            )));
        }
        self.build_inner(Some(recovery))
    }

    /// Convenience for durable services: [`restore`](Self::restore) if
    /// the store already exists, otherwise [`build`](Self::build) a
    /// fresh one.
    pub fn build_or_restore(self) -> Result<StreamRuntime, RuntimeError> {
        let dir = self.durable_dir.clone().ok_or_else(|| {
            RuntimeError::Config(
                "build_or_restore requires StreamRuntimeBuilder::durable(dir)".into(),
            )
        })?;
        if ec_store::store_exists(&dir) {
            self.restore()
        } else {
            self.build()
        }
    }

    /// The configured durable store directory, if any (crate-internal:
    /// the session pool namespaces un-configured sessions under its
    /// root and rejects two sessions sharing one store directory).
    pub(crate) fn durable_dir_ref(&self) -> Option<&PathBuf> {
        self.durable_dir.as_ref()
    }

    fn build_inner(self, recovery: Option<Recovery>) -> Result<StreamRuntime, RuntimeError> {
        if self.correlator.is_empty() {
            return Err(RuntimeError::Config("graph has no nodes".into()));
        }
        let names: Vec<Arc<str>> = {
            let dag = self.correlator.dag();
            dag.vertices().map(|v| Arc::from(dag.name(v))).collect()
        };

        // Validate the store against this graph before touching the
        // engine: source columns and vertex names must line up, or the
        // replay would bin events into the wrong feeds.
        if let Some(rec) = &recovery {
            let live_names: Vec<&str> = self.live.iter().map(|s| s.name.as_str()).collect();
            let rec_names: Vec<&str> = rec.sources.iter().map(String::as_str).collect();
            if live_names != rec_names {
                return Err(RuntimeError::Config(format!(
                    "store records live sources {rec_names:?}, graph has {live_names:?}"
                )));
            }
            if let Some(snap) = &rec.snapshot {
                let graph_names: Vec<&str> = names.iter().map(|n| n.as_ref()).collect();
                let snap_names: Vec<&str> = snap.names.iter().map(String::as_str).collect();
                if graph_names != snap_names {
                    return Err(RuntimeError::Config(format!(
                        "snapshot covers vertices {snap_names:?}, graph has {graph_names:?}"
                    )));
                }
            }
        }

        let base = recovery.as_ref().map(|r| r.snapshot_phase()).unwrap_or(0);
        // Lane 0 is the runtime's control plane (seals, WAL commits,
        // snapshots, admission/retirement); lane w+1 is worker w.
        let worker_lanes = self
            .pool
            .as_ref()
            .map(EnginePool::threads)
            .unwrap_or(self.threads);
        let recorder = self
            .recorder_capacity
            .map(|cap| Arc::new(FlightRecorder::new(worker_lanes + 1, cap)));
        let mut engine_builder = self
            .correlator
            .engine()
            .threads(self.threads)
            .max_inflight(self.max_inflight)
            .record_history(self.record_history)
            .resume_from(base);
        if let Some(rec) = &recorder {
            engine_builder = engine_builder.flight_recorder(rec);
        }
        if let Some(pool) = &self.pool {
            engine_builder = engine_builder.pooled(pool).pool_weight(self.pool_weight);
        }
        let engine = engine_builder.build()?;
        if let Some(snap) = recovery.as_ref().and_then(|r| r.snapshot.as_ref()) {
            engine.restore_checkpoint(&snap.checkpoint)?;
        }
        let engine = engine.into_live();

        // The WAL half: fresh log, or reopen-and-truncate after the
        // validated prefix.
        let durable = self.durable_dir.map(|dir| DurableCfg {
            dir,
            snapshot_every: self.snapshot_every,
            snapshot_on_flush: self.snapshot_on_flush,
            segment_bytes: self.segment_bytes,
            compact_every: self.compact_every,
            store_retry: self.store_retry.clone(),
            io: self.store_io.clone().unwrap_or_else(ec_store::real_io),
        });
        let (mut wal, last_snapshot) = match (&durable, &recovery) {
            (Some(cfg), Some(rec)) => (
                Some(rec.append_writer_with(cfg.wal_options())?),
                rec.snapshot_phase(),
            ),
            (Some(cfg), None) => {
                let sources: Vec<String> = self.live.iter().map(|s| s.name.clone()).collect();
                (
                    Some(WalWriter::create_with(
                        &cfg.dir,
                        &sources,
                        cfg.wal_options(),
                    )?),
                    0,
                )
            }
            (None, _) => (None, 0),
        };
        if let Some(w) = wal.as_mut() {
            w.set_sync_every(self.wal_sync_every);
        }

        let queue_count = self.live.len();
        // Recovered rows become one columnar script segment (shared
        // storage, same as live seals produce).
        let script = match (&recovery, self.record_script) {
            (Some(rec), true) => {
                let sources: Vec<String> = self.live.iter().map(|s| s.name.clone()).collect();
                PhaseScript::from_rows(sources, rec.rows.clone()).into_segments()
            }
            _ => Vec::new(),
        };
        let mut source_slot: Vec<Option<usize>> = vec![None; names.len()];
        for (slot, source) in self.live.iter().enumerate() {
            source_slot[source.vertex.index()] = Some(slot);
        }
        let shared = Arc::new(RuntimeShared {
            engine,
            buffers: IngestBuffers::new(queue_count),
            seal: Mutex::new(SealState {
                wal,
                script,
                pool: ColumnPool::new(),
                last_snapshot,
                snapshot_error: None,
                snapshotter: Snapshotter::new(self.snapshot_full_every),
                snapshots_since_compact: 0,
            }),
            subs: Mutex::new(self.subs),
            stop: AtomicBool::new(false),
            ticker_stop: AtomicBool::new(false),
            live: self.live,
            source_slot,
            names,
            policy: self.policy,
            backpressure: self.backpressure,
            capacity: self.capacity,
            record_script: self.record_script,
            durable,
            events_committed: AtomicU64::new(0),
            seal_batches: AtomicU64::new(0),
            seal_events: AtomicU64::new(0),
            wal_hist: LogHistogram::new(),
            ingest_wait_hist: LogHistogram::new(),
            recorder,
            trace: (self.trace_sampling > 0)
                .then(|| TracePlane::new(self.trace_sampling, queue_count)),
            health: HealthMonitor::new(self.health_config.unwrap_or_default(), Instant::now()),
            degraded: Mutex::new(None),
            store_stats: StoreStats::default(),
        });
        if let Some(wal) = shared.seal.lock().wal.as_ref() {
            shared.store_stats.wal_bytes.store(wal.wal_bytes(), Relaxed);
            shared
                .store_stats
                .segments
                .store(wal.segment_count(), Relaxed);
        }

        // Replay the WAL tail (rows after the snapshot) before any
        // thread can seal new epochs: transpose it into one column per
        // source, stage the columns, then admit the batch. After this,
        // operator state equals the crashed run's at its last committed
        // phase.
        if let Some(rec) = recovery {
            let tail = rec.tail_rows();
            let mut replayed_events = 0u64;
            let mut tail_cols: Vec<Arc<PhaseColumn>> = Vec::with_capacity(shared.live.len());
            if !tail.is_empty() {
                for (slot, source) in shared.live.iter().enumerate() {
                    let col: Vec<Option<Value>> =
                        tail.iter().map(|row| row[slot].clone()).collect();
                    replayed_events += col.iter().filter(|b| b.is_some()).count() as u64;
                    let col = Arc::new(PhaseColumn::from_bins(col));
                    source.writer.stage_column_sparse(Arc::clone(&col));
                    tail_cols.push(col);
                }
            }
            shared.events_committed.fetch_add(replayed_events, Relaxed);
            let total = tail.len() as u64;
            let mut admitted = 0u64;
            while admitted < total {
                let base = admitted as usize;
                admitted +=
                    shared
                        .engine
                        .admit_batch_sparse(total - admitted, |offset, vertex| {
                            shared.live_slot(vertex).is_some_and(|slot| {
                                tail_cols[slot][base + offset as usize].is_none()
                            })
                        })?;
            }
            shared.engine.wait_idle()?;
        }

        let delivery_shared = Arc::clone(&shared);
        let delivery = std::thread::Builder::new()
            .name("ec-runtime-delivery".into())
            .spawn(move || delivery_shared.delivery_loop())
            .expect("spawn delivery thread");

        let ticker = if let EpochPolicy::ByInterval(interval) = self.policy {
            let ticker_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("ec-runtime-ticker".into())
                    .spawn(move || {
                        // Sleep toward the next tick deadline in bounded
                        // chunks: long intervals don't busy-wake, and
                        // shutdown is noticed within ~20 ms.
                        let shutdown_check = Duration::from_millis(20);
                        let mut last_tick = Instant::now();
                        while !ticker_shared.ticker_stop.load(Relaxed) {
                            let remaining = interval.saturating_sub(last_tick.elapsed());
                            if !remaining.is_zero() {
                                std::thread::sleep(remaining.min(shutdown_check));
                                continue;
                            }
                            last_tick = Instant::now();
                            let mut seal = ticker_shared.seal.lock();
                            if ticker_shared.seal_locked(&mut seal, 1).is_err() {
                                break; // engine failed/closed; surfaced elsewhere
                            }
                            ticker_shared.maybe_checkpoint_locked(&mut seal);
                        }
                    })
                    .expect("spawn ticker thread"),
            )
        } else {
            None
        };

        // The live metrics plane: a registry rendering this runtime's
        // full snapshot on `/metrics` plus the watchdog's report on
        // `/healthz`, served until shutdown. Bound last so a busy port
        // cannot leave half-started background threads behind.
        let metrics_server = match &self.metrics_addr {
            Some(addr) => {
                let registry = MetricsRegistry::new();
                let obs_shared = Arc::clone(&shared);
                registry.register(move |page| {
                    crate::obs::render_snapshot(page, &[], &obs_shared.metrics_with_ingest());
                });
                if shared.durable.is_some() {
                    let store_shared = Arc::clone(&shared);
                    registry.register(move |page| {
                        crate::obs::render_store(page, &[], &store_shared.store_stats.snapshot());
                    });
                }
                let health_shared = Arc::clone(&shared);
                let healthz: ec_obs::RenderFn =
                    Arc::new(move || health_shared.health.report().to_json());
                Some(
                    registry
                        .serve_with(addr, vec![("/healthz", ec_obs::CONTENT_TYPE_JSON, healthz)])
                        .map_err(|e| {
                            RuntimeError::Config(format!("metrics endpoint {addr}: {e}"))
                        })?,
                )
            }
            None => None,
        };

        Ok(StreamRuntime {
            shared,
            delivery: Some(delivery),
            ticker,
            metrics_server,
        })
    }
}

/// The push side of one live source. Cloneable and `Send`: hand one to
/// each producer thread.
#[derive(Clone)]
pub struct SourceHandle {
    shared: Arc<RuntimeShared>,
    slot: usize,
}

impl SourceHandle {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.shared.live[self.slot].name
    }

    /// The source's graph vertex.
    pub fn vertex(&self) -> VertexId {
        self.shared.live[self.slot].vertex
    }

    /// Enqueues one event.
    ///
    /// Only this source's ingest shard is locked — producers on
    /// different sources never contend, and an in-progress seal delays
    /// a push by at most one buffer swap. With [`Backpressure::Block`]
    /// a full shard blocks the caller until an epoch seal drains it;
    /// with [`Backpressure::Reject`] it returns [`PushError::Full`].
    /// Under [`EpochPolicy::ByCount`] the push that reaches the
    /// threshold seals the epoch itself.
    pub fn push(&self, value: impl Into<Value>) -> Result<(), PushError> {
        let mut value = value.into();
        let shared = &*self.shared;
        // Sample the trace decision before the retry loop, so a traced
        // event's latency includes any time it spent bounced off a full
        // shard — that queueing delay is exactly what end-to-end
        // tracing exists to see.
        let stamp = shared.trace.as_ref().and_then(|tp| {
            let stamp = tp.maybe_stamp(self.slot);
            if let (Some((trace_id, _)), Some(r)) = (stamp, &shared.recorder) {
                r.record(0, SpanKind::TraceIngest, trace_id, self.slot as u64);
            }
            stamp
        });
        // Clock reads only off the fast path: a push that never bounces
        // never looks at the time. The first bounce starts the wait
        // clock; the eventual success records the whole wait.
        let mut wait_start: Option<Instant> = None;
        let total = loop {
            if shared.stop.load(Relaxed) {
                return Err(PushError::Closed);
            }
            match shared
                .buffers
                .try_push(self.slot, value, shared.capacity, stamp)
            {
                Ok(total) => {
                    if let Some(start) = wait_start {
                        shared
                            .ingest_wait_hist
                            .record(start.elapsed().as_nanos() as u64);
                    }
                    break total;
                }
                Err(bounced) => {
                    value = bounced;
                    wait_start.get_or_insert_with(Instant::now);
                    shared.buffers.count_wait(self.slot);
                    // Under ByCount, a full shard forces the epoch:
                    // waiting would deadlock whenever the count
                    // threshold cannot be reached (larger than
                    // capacity, or other sources idle) — nobody else is
                    // going to seal.
                    if matches!(shared.policy, EpochPolicy::ByCount(_)) {
                        let mut seal = shared.seal.lock();
                        if shared.seal_locked(&mut seal, 0).is_err() {
                            return Err(PushError::Closed);
                        }
                        shared.maybe_checkpoint_locked(&mut seal);
                        continue;
                    }
                    match shared.backpressure {
                        Backpressure::Reject => return Err(PushError::Full),
                        Backpressure::Block => {
                            // Bounded wait so shutdown can't strand us.
                            shared.buffers.wait_space(
                                self.slot,
                                shared.capacity,
                                Duration::from_millis(20),
                            );
                        }
                    }
                }
            }
        };
        if shared.policy.should_seal(total) {
            let mut seal = shared.seal.lock();
            // The push itself has succeeded — the value is buffered and
            // will be committed by whichever seal drains it (possibly
            // the final one at shutdown). A failing follow-on seal
            // (engine failed or closing) therefore does not bounce this
            // push; the root cause surfaces through
            // flush()/wait_idle()/shutdown(), and later pushes fail once
            // the runtime poisons or their shard fills.
            if shared.seal_locked(&mut seal, 0).is_ok() {
                shared.maybe_checkpoint_locked(&mut seal);
            }
        }
        Ok(())
    }

    /// Events currently buffered (unsealed) for this source.
    pub fn buffered(&self) -> usize {
        self.shared.buffers.depth(self.slot)
    }

    /// The configured per-source ingest queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// Final state of a completed run.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Phases committed and completed (cumulative across restore: a
    /// resumed runtime counts from the restored phase onward).
    pub phases: u64,
    /// Full execution history (if recording was enabled). After a
    /// restore, covers the replayed tail plus the live continuation —
    /// phases after the restored snapshot.
    pub history: Option<ExecutionHistory>,
    /// The committed event-to-phase binning. After a restore, includes
    /// the rows recovered from the WAL, so the script always spans
    /// phase 1 to the end.
    pub script: PhaseScript,
    /// Engine counters.
    pub metrics: MetricsSnapshot,
}

/// A running, push-based correlation service.
///
/// Built by [`StreamRuntimeBuilder`]. Producers push events through
/// [`SourceHandle`]s; epochs seal according to the configured policy;
/// subscribers receive sink emissions in serial order as phases retire;
/// [`shutdown`](StreamRuntime::shutdown) drains everything and returns
/// the report.
pub struct StreamRuntime {
    shared: Arc<RuntimeShared>,
    delivery: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    metrics_server: Option<MetricsServer>,
}

impl StreamRuntime {
    /// Starts a builder.
    pub fn builder() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::new()
    }

    /// Restores a runtime from the durable store at `dir`, built over
    /// `builder`'s graph (which must match the one the store was
    /// written by). Shorthand for
    /// `builder.durable(dir).restore()`.
    pub fn restore(
        dir: impl Into<PathBuf>,
        builder: StreamRuntimeBuilder,
    ) -> Result<StreamRuntime, RuntimeError> {
        builder.durable(dir).restore()
    }

    /// The push handle for a live source node.
    pub fn handle(&self, node: NodeHandle) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.vertex == node.vertex())
                .ok_or_else(|| {
                    RuntimeError::Config(format!("{:?} is not a live source", node.vertex()))
                })?,
        )
    }

    /// The push handle for a live source by name.
    pub fn handle_by_name(&self, name: &str) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| RuntimeError::Config(format!("no live source named {name:?}")))?,
        )
    }

    fn handle_at(&self, slot: usize) -> Result<SourceHandle, RuntimeError> {
        Ok(SourceHandle {
            shared: Arc::clone(&self.shared),
            slot,
        })
    }

    /// Names of the live sources, in wiring order.
    pub fn live_source_names(&self) -> Vec<String> {
        self.shared.live.iter().map(|s| s.name.clone()).collect()
    }

    /// The durable store directory, if durability is enabled.
    pub fn store_dir(&self) -> Option<&Path> {
        self.shared.durable.as_ref().map(|cfg| cfg.dir.as_path())
    }

    /// Subscribes to sink emissions; `f` is called for every sink
    /// output, in serial order, as its phase retires. Emissions of
    /// phases that retired before this call are not replayed — to
    /// guarantee none are missed (ticking policies can retire phases
    /// immediately), register via
    /// [`StreamRuntimeBuilder::subscribe`] instead.
    pub fn subscribe(&self, f: impl FnMut(&SinkEmission) + Send + 'static) {
        self.shared.subs.lock().push(Box::new(f));
    }

    /// Seals the current epoch explicitly: all buffered events commit
    /// to phases (the longest per-source backlog determines the phase
    /// count). Returns the number of phases committed (0 if nothing was
    /// buffered). On a durable runtime this is also a snapshot point
    /// when [`snapshot_on_flush`](StreamRuntimeBuilder::snapshot_on_flush)
    /// is set, and surfaces any deferred periodic-snapshot failure.
    pub fn flush(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut seal = self.shared.seal.lock();
        let phases = self.shared.seal_locked(&mut seal, 0)?;
        if self
            .shared
            .durable
            .as_ref()
            .is_some_and(|cfg| cfg.snapshot_on_flush)
        {
            self.shared.checkpoint_locked(&mut seal)?;
        } else {
            self.shared.maybe_checkpoint_locked(&mut seal);
        }
        self.shared.take_snapshot_error(&mut seal)?;
        Ok(phases)
    }

    /// Like [`flush`](Self::flush) but commits at least one phase, even
    /// if no events are buffered — an *empty epoch*, which still polls
    /// scripted sources and advances time-driven operators.
    pub fn tick(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut seal = self.shared.seal.lock();
        let phases = self.shared.seal_locked(&mut seal, 1)?;
        self.shared.maybe_checkpoint_locked(&mut seal);
        self.shared.take_snapshot_error(&mut seal)?;
        Ok(phases)
    }

    /// Takes a snapshot now: waits for every admitted phase to retire,
    /// captures operator state, writes it to the store and syncs the
    /// WAL. Returns the snapshot's phase. Errors on a non-durable
    /// runtime or when a module does not support snapshots.
    pub fn checkpoint(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut seal = self.shared.seal.lock();
        self.shared.take_snapshot_error(&mut seal)?;
        self.shared.checkpoint_locked(&mut seal)
    }

    /// Phases committed so far.
    pub fn admitted(&self) -> u64 {
        self.shared.engine.admitted()
    }

    /// Events committed to phases so far (including a restored WAL
    /// tail's replayed events).
    pub fn events_committed(&self) -> u64 {
        self.shared.events_committed.load(Relaxed)
    }

    /// A cheap, cloneable observability handle that outlives mutable
    /// borrows of the runtime: a [`SessionPool`](crate::SessionPool)
    /// keeps one per session to build its per-tenant metrics rows while
    /// the sessions themselves are owned by the caller.
    pub fn probe(&self) -> RuntimeProbe {
        RuntimeProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Phases fully completed so far.
    pub fn completed_through(&self) -> u64 {
        self.shared.engine.completed_through()
    }

    /// Blocks until every committed phase has completed.
    pub fn wait_idle(&self) -> Result<u64, RuntimeError> {
        Ok(self.shared.engine.wait_idle()?)
    }

    /// A snapshot of the committed script so far. O(epochs sealed), not
    /// O(events): the snapshot shares the committed columns with the
    /// runtime (`Arc` per source per epoch), so observability does not
    /// scale with run length.
    pub fn script(&self) -> PhaseScript {
        PhaseScript::from_segments(
            self.live_source_names(),
            self.shared.seal.lock().script.clone(),
        )
    }

    /// Engine counters plus ingest-side counters (per-source buffer
    /// depths, producer waits, seal drain batches) and the latency
    /// histograms (phase, exec, WAL commit, push wait).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics_with_ingest()
    }

    /// The bound address of the live `/metrics` endpoint, if one was
    /// configured with [`StreamRuntimeBuilder::metrics_addr`] (resolves
    /// port 0 to the actual port).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::local_addr)
    }

    /// The watchdog's current verdict: stalled retirement, wedged
    /// sources (with blame), throughput collapses. Served as JSON on
    /// `/healthz` when [`StreamRuntimeBuilder::metrics_addr`] is set;
    /// tune thresholds with [`StreamRuntimeBuilder::health_config`].
    pub fn health(&self) -> HealthReport {
        self.shared.health.report()
    }

    /// `Some(reason)` once the runtime suspended durability after a
    /// persistent store failure survived its bounded retries. The
    /// runtime keeps serving (pushes, seals, deliveries all proceed)
    /// but nothing further reaches the WAL; the same reason forces the
    /// `/healthz` verdict to `degraded`. Restart and
    /// [`restore`](StreamRuntimeBuilder::restore) to recover.
    pub fn degraded_reason(&self) -> Option<String> {
        self.shared.degraded.lock().clone()
    }

    /// Drains the flight recorder into a Chrome trace-viewer JSON
    /// document (load it at `chrome://tracing` or in Perfetto), or
    /// `None` if the runtime was built without
    /// [`StreamRuntimeBuilder::flight_recorder`]. Draining empties the
    /// rings: each call returns the events recorded since the last.
    pub fn dump_trace(&self) -> Option<String> {
        self.shared.recorder.as_ref().map(|r| r.chrome_trace())
    }

    /// Seals any remaining events, waits for completion, delivers every
    /// outstanding subscription callback, stops all threads and returns
    /// the final report. On a durable runtime the WAL is synced to
    /// stable storage; no final snapshot is taken (restore replays the
    /// tail from the last periodic snapshot).
    ///
    /// Events pushed concurrently with shutdown that miss the final
    /// seal are dropped (producers should quiesce first).
    pub fn shutdown(mut self) -> Result<RuntimeReport, RuntimeError> {
        // 0. Stop the metrics endpoint: scrapes must not race the
        //    teardown below.
        if let Some(mut server) = self.metrics_server.take() {
            server.stop();
        }
        // 1. Stop the ticker so it cannot admit more phases below.
        self.shared.ticker_stop.store(true, Relaxed);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        // 2. Final seal of whatever is buffered, then make the log
        //    durable.
        let seal_result = {
            let mut seal = self.shared.seal.lock();
            let sealed = self.shared.seal_locked(&mut seal, 0);
            if let Some(wal) = seal.wal.as_mut() {
                let _ = wal.sync();
            }
            sealed
        };
        // 3. Quiesce and stop the engine (workers join here).
        let engine_result = self.shared.engine.shutdown();
        // 4. Release pushers and the delivery thread.
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.buffers.notify_all();
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
        let report = engine_result?;
        seal_result?;
        let mut metrics = report.metrics;
        self.shared.fill_ingest(&mut metrics);
        Ok(RuntimeReport {
            phases: report.phases,
            history: report.history,
            script: PhaseScript::from_segments(
                self.shared.live.iter().map(|s| s.name.clone()).collect(),
                std::mem::take(&mut self.shared.seal.lock().script),
            ),
            metrics,
        })
    }
}

/// Read-only observability handle for one runtime (see
/// [`StreamRuntime::probe`]). Holding a probe does not keep the
/// runtime's threads alive — only its counters readable.
#[derive(Clone)]
pub struct RuntimeProbe {
    shared: Arc<RuntimeShared>,
}

impl RuntimeProbe {
    /// Phases committed so far.
    pub fn admitted(&self) -> u64 {
        self.shared.engine.admitted()
    }

    /// Phases fully completed (retired) so far.
    pub fn completed_through(&self) -> u64 {
        self.shared.engine.completed_through()
    }

    /// Events committed to phases so far.
    pub fn events_committed(&self) -> u64 {
        self.shared.events_committed.load(Relaxed)
    }

    /// Events buffered in the ingest shards, not yet sealed.
    pub fn buffered(&self) -> usize {
        self.shared.buffers.total()
    }

    /// Engine counters plus ingest-side counters. For a pooled runtime,
    /// `injector_depth` is this tenant's admission-lane depth while
    /// steal/park/wake counters are pool-global.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics_with_ingest()
    }

    /// The watchdog's current verdict (see [`StreamRuntime::health`]).
    /// Each runtime's delivery loop keeps its own watchdog fed, so a
    /// [`SessionPool`](crate::SessionPool) can aggregate these without
    /// driving anything.
    pub fn health(&self) -> HealthReport {
        self.shared.health.report()
    }

    /// `Some(reason)` once durability was suspended (see
    /// [`StreamRuntime::degraded_reason`]).
    pub fn degraded_reason(&self) -> Option<String> {
        self.shared.degraded.lock().clone()
    }

    /// Takes a snapshot now, exactly like [`StreamRuntime::checkpoint`]
    /// — the handle a [`SessionPool`](crate::SessionPool) uses to
    /// schedule checkpoints across every durable tenant it hosts.
    /// Errors with [`RuntimeError::Closed`] once the runtime has shut
    /// down.
    pub fn checkpoint(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut seal = self.shared.seal.lock();
        self.shared.take_snapshot_error(&mut seal)?;
        self.shared.checkpoint_locked(&mut seal)
    }
}

impl Drop for StreamRuntime {
    fn drop(&mut self) {
        // Unclean drop (e.g. test unwind, or a simulated crash in the
        // durability tests): stop threads without sealing; LiveEngine's
        // own Drop stops the workers. The WAL needs no special
        // handling — every committed row was already written at seal
        // time, which is exactly what restore reads back.
        if let Some(mut server) = self.metrics_server.take() {
            server.stop();
        }
        self.shared.ticker_stop.store(true, Relaxed);
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.buffers.notify_all();
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
    }
}
