//! The streaming runtime: live ingestion over the pipelined engine.
//!
//! ```text
//!  producers ──push──▶ SourceHandle queues (bounded, backpressured)
//!                         │ seal (flush / count / tick)
//!                         ▼
//!            WAL append ── PhaseScript row + LiveFeed bins
//!                         │ admit (batched: one lock per seal)
//!                         ▼
//!              LiveEngine (k workers, pipelined phases)
//!                         │ phases retire in order
//!                         ▼
//!              delivery thread ──▶ subscribers (serial order)
//! ```
//!
//! The runtime never touches the scheduling algorithm: it only decides
//! *when* the environment step runs (epoch sealing) and observes sink
//! emissions *after* their phase has retired. Serializability is
//! therefore inherited from the engine, and every run commits a
//! [`PhaseScript`] that replays the exact same history through the
//! sequential oracle.
//!
//! ## Durability
//!
//! With [`StreamRuntimeBuilder::durable`], sealing appends each
//! committed row to a write-ahead log (`ec-store`) *before* the phase
//! is admitted — the log is the authoritative commit, so a killed
//! process loses no accepted epoch. Periodic snapshots
//! ([`snapshot_every`](StreamRuntimeBuilder::snapshot_every),
//! [`snapshot_on_flush`](StreamRuntimeBuilder::snapshot_on_flush),
//! [`StreamRuntime::checkpoint`]) capture operator state at retired
//! phase boundaries to bound recovery time;
//! [`StreamRuntimeBuilder::restore`] rebuilds from the newest usable
//! snapshot, replays the log tail through the engine, and resumes at
//! the exact next phase with global phase numbering intact.

use crate::error::{PushError, RuntimeError};
use crate::policy::{Backpressure, EpochPolicy};
use crate::script::PhaseScript;
use ec_core::{EnginePool, ExecutionHistory, LiveEngine, MetricsSnapshot};
use ec_events::{FeedWriter, Value};
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use ec_graph::VertexId;
use ec_store::{Recovery, WalWriter};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered live source.
struct LiveSource {
    name: String,
    vertex: VertexId,
    writer: FeedWriter,
}

/// Durability configuration (immutable after build).
struct DurableCfg {
    dir: PathBuf,
    /// Snapshot automatically once this many phases have been admitted
    /// since the last snapshot.
    snapshot_every: Option<u64>,
    /// Snapshot after every explicit [`StreamRuntime::flush`].
    snapshot_on_flush: bool,
}

/// Ingest state: the bounded per-source queues, the committed script
/// and the WAL. One mutex for all of it, so a seal is atomic with
/// respect to every push — the interleaving of pushes and flushes is
/// always a well-defined sequence of committed rows, and the WAL
/// records exactly that sequence.
struct Ingest {
    queues: Vec<VecDeque<Value>>,
    rows: Vec<Vec<Option<Value>>>,
    wal: Option<WalWriter>,
    /// Phase of the last snapshot written (0 = none yet).
    last_snapshot: u64,
    /// First snapshot failure, if any: periodic snapshots stop (the WAL
    /// alone still guarantees recovery) and the error surfaces on the
    /// next explicit flush/tick/checkpoint call.
    snapshot_error: Option<RuntimeError>,
}

impl Ingest {
    fn buffered(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// A sink emission delivered to subscribers, in serial (phase, vertex)
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkEmission {
    /// The sink node's name (as given to the builder). Shared, so
    /// fan-out to many subscribers does not copy the string.
    pub name: Arc<str>,
    /// The sink vertex.
    pub vertex: VertexId,
    /// The phase that produced the value.
    pub phase: u64,
    /// The emitted value.
    pub value: Value,
}

type Subscriber = Box<dyn FnMut(&SinkEmission) + Send>;

struct RuntimeShared {
    engine: LiveEngine,
    ingest: Mutex<Ingest>,
    /// Signalled when a seal drains the queues (or shutdown begins);
    /// waited on by blocked pushers.
    space: Condvar,
    subs: Mutex<Vec<Subscriber>>,
    /// No more pushes/seals accepted.
    stop: AtomicBool,
    /// Stops the interval ticker (set before the final flush so the
    /// ticker cannot race extra phases into a closing runtime).
    ticker_stop: AtomicBool,
    live: Vec<LiveSource>,
    /// Vertex names, indexed by `VertexId::index()`.
    names: Vec<Arc<str>>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    /// Record committed rows into the [`PhaseScript`]. Off for
    /// long-running services, where the script would grow without
    /// bound (the WAL, if enabled, still records every row).
    record_script: bool,
    durable: Option<DurableCfg>,
    /// Events committed to phases so far (counted at seal; per-tenant
    /// observability for session pools).
    events_committed: AtomicU64,
}

impl RuntimeShared {
    /// Seals the current epoch: commits `max(longest queue, min_phases)`
    /// phases, appending each row to the WAL (when durable), staging one
    /// bin per live source per phase, then admitting the whole batch
    /// through one or few lock acquisitions. Caller holds the ingest
    /// lock.
    fn seal_locked(&self, ingest: &mut Ingest, min_phases: u64) -> Result<u64, RuntimeError> {
        // A poisoned runtime (store failure below, or shutdown) seals
        // nothing: bins staged by an aborted seal must never be
        // consumed by a later admission, or live phases would
        // desynchronize from the WAL.
        if self.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let longest = ingest.queues.iter().map(VecDeque::len).max().unwrap_or(0) as u64;
        let phases = longest.max(min_phases);
        if phases == 0 {
            return Ok(0);
        }
        // Commit the epoch: pop every row, stage all their WAL frames
        // into the writer's buffer, and flush them with a single
        // `write_all` — group commit, one syscall per epoch instead of
        // one per row. The commit is the durable cut point: bins are
        // staged for the engine only after the whole epoch has reached
        // the OS. A WAL failure (disk full, I/O error) POISONS the
        // runtime: durability can no longer be guaranteed, so no
        // further seal or push is accepted, and since no bin was staged
        // yet the engine never sees any of the aborted epoch (a partial
        // batch left on disk recovers as a torn tail and replays — its
        // pushes were accepted).
        let base_rows = ingest.rows.len();
        let mut epoch: Vec<Vec<Option<Value>>> = Vec::with_capacity(phases as usize);
        for _ in 0..phases {
            epoch.push(ingest.queues.iter_mut().map(VecDeque::pop_front).collect());
        }
        if let Some(wal) = ingest.wal.as_mut() {
            for row in &epoch {
                wal.stage_row(row);
            }
            if let Err(e) = wal.commit() {
                self.stop.store(true, Relaxed);
                self.ticker_stop.store(true, Relaxed);
                self.space.notify_all(); // blocked pushers observe Closed
                return Err(e.into());
            }
        }
        let staged = phases;
        let mut events = 0u64;
        for row in epoch {
            for (source, bin) in self.live.iter().zip(row.iter()) {
                source.writer.stage(bin.clone());
            }
            events += row.iter().filter(|b| b.is_some()).count() as u64;
            if self.record_script {
                ingest.rows.push(row);
            }
        }
        self.events_committed.fetch_add(events, Relaxed);
        // Admit the batch: one global-lock acquisition per in-flight
        // window instead of one per phase. Admission may block on the
        // engine's throttle; the workers drain independently, so this
        // self-resolves.
        let mut admitted = 0u64;
        while admitted < staged {
            match self.engine.admit_batch(staged - admitted) {
                Ok(n) => admitted += n,
                Err(e) => {
                    // Keep the in-memory script consistent with what
                    // actually ran: refused admissions (engine failed or
                    // closing) must not leave committed rows behind. The
                    // staged bins are never polled — the engine admits
                    // no further phases. (WAL rows stay: the log is the
                    // durable commit and restore will replay them.)
                    if self.record_script {
                        ingest.rows.truncate(base_rows + admitted as usize);
                    }
                    if admitted > 0 {
                        self.space.notify_all();
                    }
                    return Err(e.into());
                }
            }
        }
        self.space.notify_all();
        Ok(staged)
    }

    /// Takes a snapshot at the current retired boundary. Caller holds
    /// the ingest lock (so no seal can interleave); waits for every
    /// admitted phase to retire first — a stop-the-world pause, which is
    /// what makes the captured state a serializable cut.
    fn checkpoint_locked(&self, ingest: &mut Ingest) -> Result<u64, RuntimeError> {
        let Some(cfg) = &self.durable else {
            return Err(RuntimeError::Config(
                "checkpoint requires a durable runtime (StreamRuntimeBuilder::durable)".into(),
            ));
        };
        self.engine.wait_idle()?;
        let checkpoint = self.engine.checkpoint_vertices()?;
        let names: Vec<String> = self.names.iter().map(|n| n.to_string()).collect();
        ec_store::write_snapshot(&cfg.dir, &names, &checkpoint).map_err(RuntimeError::from)?;
        if let Some(wal) = ingest.wal.as_mut() {
            wal.sync()?;
        }
        ingest.last_snapshot = checkpoint.phase;
        Ok(checkpoint.phase)
    }

    /// Runs the automatic every-k-phases snapshot policy after a seal.
    /// Failures do not poison the seal (the WAL remains authoritative):
    /// the first error is remembered, periodic snapshots stop, and the
    /// error surfaces on the next explicit flush/tick/checkpoint.
    fn maybe_checkpoint_locked(&self, ingest: &mut Ingest) {
        let Some(cfg) = &self.durable else { return };
        let Some(every) = cfg.snapshot_every else {
            return;
        };
        if ingest.snapshot_error.is_some() {
            return;
        }
        if self.engine.admitted().saturating_sub(ingest.last_snapshot) >= every {
            if let Err(e) = self.checkpoint_locked(ingest) {
                ingest.snapshot_error = Some(e);
            }
        }
    }

    /// Surfaces (and clears) a deferred snapshot failure.
    fn take_snapshot_error(&self, ingest: &mut Ingest) -> Result<(), RuntimeError> {
        match ingest.snapshot_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn deliver(&self, records: Vec<ec_core::SinkRecord>) {
        if records.is_empty() {
            return;
        }
        let mut subs = self.subs.lock();
        for r in records {
            let emission = SinkEmission {
                name: Arc::clone(&self.names[r.vertex.index()]),
                vertex: r.vertex,
                phase: r.phase.get(),
                value: r.value,
            };
            for sub in subs.iter_mut() {
                sub(&emission);
            }
        }
    }

    /// The delivery loop: waits for phases to retire and forwards their
    /// sink emissions to subscribers in serial order.
    fn delivery_loop(&self) {
        let mut last = 0u64;
        loop {
            let frontier = match self
                .engine
                .wait_progress_for(last, Duration::from_millis(50))
            {
                Ok(f) => f,
                Err(_) => {
                    // Engine failed: nothing further will retire (the
                    // error surfaces through shutdown()/wait_idle()),
                    // but phases that did retire still get delivered.
                    self.deliver(self.engine.drain_retired_sinks());
                    break;
                }
            };
            let progressed = frontier > last;
            if progressed {
                self.deliver(self.engine.drain_retired_sinks());
                last = frontier;
            }
            if self.stop.load(Relaxed) {
                // Shutdown path: everything admitted has completed by
                // now; one final drain empties the buffer.
                self.deliver(self.engine.drain_retired_sinks());
                break;
            }
            if !progressed {
                // No progress: either the 50 ms wait timed out (idle
                // stream) or the engine is quiescing for shutdown, in
                // which case wait_progress_for returns immediately —
                // pause briefly so that window doesn't busy-spin on the
                // scheduler lock while workers drain.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Builds a [`StreamRuntime`]: graph wiring plus runtime policy.
///
/// Wraps a [`CorrelatorBuilder`], adding live sources; operators and
/// scripted sources pass through to the correlator untouched.
pub struct StreamRuntimeBuilder {
    correlator: CorrelatorBuilder,
    live: Vec<LiveSource>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    threads: usize,
    max_inflight: u64,
    record_history: bool,
    record_script: bool,
    subs: Vec<Subscriber>,
    durable_dir: Option<PathBuf>,
    snapshot_every: Option<u64>,
    snapshot_on_flush: bool,
    wal_sync_every: Option<u64>,
    pool: Option<EnginePool>,
    pool_weight: u32,
}

impl Default for StreamRuntimeBuilder {
    fn default() -> Self {
        StreamRuntimeBuilder::new()
    }
}

impl StreamRuntimeBuilder {
    /// New empty builder with defaults: manual epochs, blocking
    /// backpressure, 1024-event queues, 4 threads, engine-default
    /// in-flight bound, history recording on, no durability.
    pub fn new() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::from_correlator(CorrelatorBuilder::new(), Vec::new())
    }

    /// Wraps an already-started correlator. `feeds` lists its existing
    /// live sources (from [`CorrelatorBuilder::live_source`]) in wiring
    /// order; this is the path used by spec-driven construction.
    pub fn from_correlator(
        correlator: CorrelatorBuilder,
        feeds: Vec<(String, NodeHandle, FeedWriter)>,
    ) -> StreamRuntimeBuilder {
        StreamRuntimeBuilder {
            correlator,
            live: feeds
                .into_iter()
                .map(|(name, handle, writer)| LiveSource {
                    name,
                    vertex: handle.vertex(),
                    writer,
                })
                .collect(),
            policy: EpochPolicy::Manual,
            backpressure: Backpressure::Block,
            capacity: 1024,
            threads: 4,
            max_inflight: 64,
            record_history: true,
            record_script: true,
            subs: Vec::new(),
            durable_dir: None,
            snapshot_every: None,
            snapshot_on_flush: false,
            wal_sync_every: None,
            pool: None,
            pool_weight: 1,
        }
    }

    /// Registers a subscriber **before** the runtime starts, so no
    /// emission can be missed — with a ticking epoch policy, phases can
    /// retire between `build()` and a later
    /// [`StreamRuntime::subscribe`] call.
    pub fn subscribe(mut self, f: impl FnMut(&SinkEmission) + Send + 'static) -> Self {
        self.subs.push(Box::new(f));
        self
    }

    /// Adds a live source; events are pushed through the runtime's
    /// [`SourceHandle`] for this node.
    pub fn live_source(&mut self, name: impl Into<String>) -> NodeHandle {
        let name = name.into();
        let (handle, writer) = self.correlator.live_source(name.clone());
        self.live.push(LiveSource {
            name,
            vertex: handle.vertex(),
            writer,
        });
        handle
    }

    /// Adds a scripted source (see
    /// [`CorrelatorBuilder::source`]) — useful for mixing live feeds
    /// with reference signals.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        generator: impl ec_events::EventSource + 'static,
    ) -> NodeHandle {
        self.correlator.source(name, generator)
    }

    /// Adds a computation node (see [`CorrelatorBuilder::add`]).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        module: impl ec_core::Module + 'static,
        inputs: &[NodeHandle],
    ) -> NodeHandle {
        self.correlator.add(name, module, inputs)
    }

    /// Direct access to the wrapped correlator for anything else.
    pub fn correlator_mut(&mut self) -> &mut CorrelatorBuilder {
        &mut self.correlator
    }

    /// Sets the epoch policy (default [`EpochPolicy::Manual`]).
    pub fn epoch_policy(mut self, policy: EpochPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the backpressure mode (default [`Backpressure::Block`]).
    pub fn backpressure(mut self, mode: Backpressure) -> Self {
        self.backpressure = mode;
        self
    }

    /// Sets the per-source ingest queue capacity (default 1024).
    pub fn ingest_capacity(mut self, events: usize) -> Self {
        self.capacity = events.max(1);
        self
    }

    /// Sets the engine worker count (default 4).
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Bounds started-but-incomplete phases (default 64).
    pub fn max_inflight(mut self, phases: u64) -> Self {
        self.max_inflight = phases.max(1);
        self
    }

    /// Records the full execution history (default on; turn off for
    /// long-running services and benchmarks).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Records the committed [`PhaseScript`] (default on). The script
    /// grows by one row per phase forever, so long-running services
    /// should turn it off alongside
    /// [`record_history`](Self::record_history); [`StreamRuntime::script`]
    /// and the final report's script are then empty. A durable runtime
    /// still logs every row to the WAL regardless of this setting.
    pub fn record_script(mut self, on: bool) -> Self {
        self.record_script = on;
        self
    }

    /// Enables durability: every committed row is appended to a
    /// write-ahead log in `dir` before its phase is admitted, so a
    /// killed process can be [`restore`](Self::restore)d to the exact
    /// next phase. [`build`](Self::build) creates a fresh store and
    /// refuses to overwrite an existing one; [`restore`](Self::restore)
    /// opens an existing store.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// With [`durable`](Self::durable): automatically snapshot operator
    /// state once `phases` phases have been admitted since the last
    /// snapshot. Snapshots bound recovery time; without any, restore
    /// replays the whole WAL from phase 1 (always correct, just
    /// slower). Requires every module in the graph to support
    /// [`snapshot_state`](ec_core::Module::snapshot_state).
    pub fn snapshot_every(mut self, phases: u64) -> Self {
        self.snapshot_every = Some(phases.max(1));
        self
    }

    /// With [`durable`](Self::durable): snapshot after every explicit
    /// [`StreamRuntime::flush`].
    pub fn snapshot_on_flush(mut self, on: bool) -> Self {
        self.snapshot_on_flush = on;
        self
    }

    /// Runs this runtime's engine on a shared [`EnginePool`] instead of
    /// private worker threads — the multi-tenant mode (see
    /// [`SessionPool`](crate::SessionPool), which calls this for every
    /// session it opens). [`threads`](Self::threads) is ignored (the
    /// pool's worker count applies); [`max_inflight`](Self::max_inflight)
    /// becomes this tenant's in-flight cap on the shared pool.
    pub fn pool(mut self, pool: &EnginePool) -> Self {
        self.pool = Some(pool.clone());
        self
    }

    /// With [`pool`](Self::pool): this tenant's weighted-round-robin
    /// admission weight (default 1) — its relative share of the shared
    /// pool's admission bandwidth under contention.
    pub fn pool_weight(mut self, weight: u32) -> Self {
        self.pool_weight = weight.max(1);
        self
    }

    /// With [`durable`](Self::durable): fsync the WAL automatically
    /// once `rows` committed rows have accumulated since the last sync
    /// — a bounded-loss commit interval between the default (sync at
    /// checkpoint/shutdown only; group commit still reaches the OS
    /// every seal) and syncing every seal (`1`).
    pub fn wal_sync_every(mut self, rows: u64) -> Self {
        self.wal_sync_every = Some(rows.max(1));
        self
    }

    /// Builds and starts the runtime (workers and delivery thread spawn
    /// immediately; the interval ticker too, if configured). With
    /// [`durable`](Self::durable), creates a fresh store — errors if
    /// one already exists at the directory (use
    /// [`restore`](Self::restore) to resume it).
    pub fn build(self) -> Result<StreamRuntime, RuntimeError> {
        self.build_inner(None)
    }

    /// Restores the runtime from the durable store configured with
    /// [`durable`](Self::durable): loads the newest usable snapshot,
    /// replays the WAL tail through the engine, and resumes at the
    /// exact next phase (global phase numbering continues across the
    /// restart).
    ///
    /// The builder must describe the **identical** graph the store was
    /// written by (same nodes, names, wiring and configuration) — this
    /// is validated against the recorded source and vertex names.
    /// Subscribers registered on this builder receive the replayed
    /// tail's sink emissions again (at-least-once delivery across
    /// restarts); emissions of phases at or before the snapshot are
    /// not repeated.
    pub fn restore(self) -> Result<StreamRuntime, RuntimeError> {
        let dir = self.durable_dir.clone().ok_or_else(|| {
            RuntimeError::Config("restore requires StreamRuntimeBuilder::durable(dir)".into())
        })?;
        let recovery = Recovery::open(&dir)?;
        // A torn tail is the expected shape of a crash and is dropped;
        // a checksum/decode failure in the body is real damage. Resuming
        // would silently discard acknowledged phases (the append writer
        // truncates past the valid prefix), so refuse — inspect with
        // `ec recover`, repair or move the store, then restore.
        if let ec_store::WalTail::Corrupt {
            at_row,
            dropped_bytes,
            message,
        } = &recovery.tail
        {
            return Err(RuntimeError::Store(format!(
                "WAL at {} is corrupt at row {at_row} ({message}; {dropped_bytes} bytes \
                 affected): refusing to resume over damaged history",
                ec_store::wal_path(&dir).display()
            )));
        }
        self.build_inner(Some(recovery))
    }

    /// Convenience for durable services: [`restore`](Self::restore) if
    /// the store already exists, otherwise [`build`](Self::build) a
    /// fresh one.
    pub fn build_or_restore(self) -> Result<StreamRuntime, RuntimeError> {
        let dir = self.durable_dir.clone().ok_or_else(|| {
            RuntimeError::Config(
                "build_or_restore requires StreamRuntimeBuilder::durable(dir)".into(),
            )
        })?;
        if ec_store::wal_path(&dir).exists() {
            self.restore()
        } else {
            self.build()
        }
    }

    /// The configured durable store directory, if any (crate-internal:
    /// the session pool namespaces un-configured sessions under its
    /// root and rejects two sessions sharing one store directory).
    pub(crate) fn durable_dir_ref(&self) -> Option<&PathBuf> {
        self.durable_dir.as_ref()
    }

    fn build_inner(self, recovery: Option<Recovery>) -> Result<StreamRuntime, RuntimeError> {
        if self.correlator.is_empty() {
            return Err(RuntimeError::Config("graph has no nodes".into()));
        }
        let names: Vec<Arc<str>> = {
            let dag = self.correlator.dag();
            dag.vertices().map(|v| Arc::from(dag.name(v))).collect()
        };

        // Validate the store against this graph before touching the
        // engine: source columns and vertex names must line up, or the
        // replay would bin events into the wrong feeds.
        if let Some(rec) = &recovery {
            let live_names: Vec<&str> = self.live.iter().map(|s| s.name.as_str()).collect();
            let rec_names: Vec<&str> = rec.sources.iter().map(String::as_str).collect();
            if live_names != rec_names {
                return Err(RuntimeError::Config(format!(
                    "store records live sources {rec_names:?}, graph has {live_names:?}"
                )));
            }
            if let Some(snap) = &rec.snapshot {
                let graph_names: Vec<&str> = names.iter().map(|n| n.as_ref()).collect();
                let snap_names: Vec<&str> = snap.names.iter().map(String::as_str).collect();
                if graph_names != snap_names {
                    return Err(RuntimeError::Config(format!(
                        "snapshot covers vertices {snap_names:?}, graph has {graph_names:?}"
                    )));
                }
            }
        }

        let base = recovery.as_ref().map(|r| r.snapshot_phase()).unwrap_or(0);
        let mut engine_builder = self
            .correlator
            .engine()
            .threads(self.threads)
            .max_inflight(self.max_inflight)
            .record_history(self.record_history)
            .resume_from(base);
        if let Some(pool) = &self.pool {
            engine_builder = engine_builder.pooled(pool).pool_weight(self.pool_weight);
        }
        let engine = engine_builder.build()?;
        if let Some(snap) = recovery.as_ref().and_then(|r| r.snapshot.as_ref()) {
            engine.restore_checkpoint(&snap.checkpoint)?;
        }
        let engine = engine.into_live();

        // The WAL half: fresh log, or reopen-and-truncate after the
        // validated prefix.
        let durable = self.durable_dir.map(|dir| DurableCfg {
            dir,
            snapshot_every: self.snapshot_every,
            snapshot_on_flush: self.snapshot_on_flush,
        });
        let (mut wal, last_snapshot) = match (&durable, &recovery) {
            (Some(_), Some(rec)) => (Some(rec.append_writer()?), rec.snapshot_phase()),
            (Some(cfg), None) => {
                let sources: Vec<String> = self.live.iter().map(|s| s.name.clone()).collect();
                (Some(WalWriter::create(&cfg.dir, &sources)?), 0)
            }
            (None, _) => (None, 0),
        };
        if let Some(w) = wal.as_mut() {
            w.set_sync_every(self.wal_sync_every);
        }

        let queue_count = self.live.len();
        let rows = match (&recovery, self.record_script) {
            (Some(rec), true) => rec.rows.clone(),
            _ => Vec::new(),
        };
        let shared = Arc::new(RuntimeShared {
            engine,
            ingest: Mutex::new(Ingest {
                queues: vec![VecDeque::new(); queue_count],
                rows,
                wal,
                last_snapshot,
                snapshot_error: None,
            }),
            space: Condvar::new(),
            subs: Mutex::new(self.subs),
            stop: AtomicBool::new(false),
            ticker_stop: AtomicBool::new(false),
            live: self.live,
            names,
            policy: self.policy,
            backpressure: self.backpressure,
            capacity: self.capacity,
            record_script: self.record_script,
            durable,
            events_committed: AtomicU64::new(0),
        });

        // Replay the WAL tail (rows after the snapshot) before any
        // thread can seal new epochs: stage every row's bins, then
        // admit the batch. After this, operator state equals the
        // crashed run's at its last committed phase.
        if let Some(rec) = recovery {
            let tail = rec.tail_rows();
            let mut replayed_events = 0u64;
            for row in tail {
                for (source, bin) in shared.live.iter().zip(row.iter()) {
                    source.writer.stage(bin.clone());
                }
                replayed_events += row.iter().filter(|b| b.is_some()).count() as u64;
            }
            shared.events_committed.fetch_add(replayed_events, Relaxed);
            let mut remaining = tail.len() as u64;
            while remaining > 0 {
                remaining -= shared.engine.admit_batch(remaining)?;
            }
            shared.engine.wait_idle()?;
        }

        let delivery_shared = Arc::clone(&shared);
        let delivery = std::thread::Builder::new()
            .name("ec-runtime-delivery".into())
            .spawn(move || delivery_shared.delivery_loop())
            .expect("spawn delivery thread");

        let ticker = if let EpochPolicy::ByInterval(interval) = self.policy {
            let ticker_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("ec-runtime-ticker".into())
                    .spawn(move || {
                        // Sleep toward the next tick deadline in bounded
                        // chunks: long intervals don't busy-wake, and
                        // shutdown is noticed within ~20 ms.
                        let shutdown_check = Duration::from_millis(20);
                        let mut last_tick = Instant::now();
                        while !ticker_shared.ticker_stop.load(Relaxed) {
                            let remaining = interval.saturating_sub(last_tick.elapsed());
                            if !remaining.is_zero() {
                                std::thread::sleep(remaining.min(shutdown_check));
                                continue;
                            }
                            last_tick = Instant::now();
                            let mut ingest = ticker_shared.ingest.lock();
                            if ticker_shared.seal_locked(&mut ingest, 1).is_err() {
                                break; // engine failed/closed; surfaced elsewhere
                            }
                            ticker_shared.maybe_checkpoint_locked(&mut ingest);
                        }
                    })
                    .expect("spawn ticker thread"),
            )
        } else {
            None
        };

        Ok(StreamRuntime {
            shared,
            delivery: Some(delivery),
            ticker,
        })
    }
}

/// The push side of one live source. Cloneable and `Send`: hand one to
/// each producer thread.
#[derive(Clone)]
pub struct SourceHandle {
    shared: Arc<RuntimeShared>,
    slot: usize,
}

impl SourceHandle {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.shared.live[self.slot].name
    }

    /// The source's graph vertex.
    pub fn vertex(&self) -> VertexId {
        self.shared.live[self.slot].vertex
    }

    /// Enqueues one event.
    ///
    /// With [`Backpressure::Block`] a full queue blocks the caller
    /// until an epoch seal drains it; with [`Backpressure::Reject`] it
    /// returns [`PushError::Full`]. Under [`EpochPolicy::ByCount`] the
    /// push that reaches the threshold seals the epoch itself.
    pub fn push(&self, value: impl Into<Value>) -> Result<(), PushError> {
        let value = value.into();
        let shared = &*self.shared;
        let mut ingest = shared.ingest.lock();
        while ingest.queues[self.slot].len() >= shared.capacity {
            if shared.stop.load(Relaxed) {
                return Err(PushError::Closed);
            }
            // Under ByCount, a full queue forces the epoch: waiting
            // would deadlock whenever the count threshold cannot be
            // reached (larger than capacity, or other sources idle) —
            // nobody else is going to seal.
            if matches!(shared.policy, EpochPolicy::ByCount(_)) {
                if shared.seal_locked(&mut ingest, 0).is_err() {
                    return Err(PushError::Closed);
                }
                shared.maybe_checkpoint_locked(&mut ingest);
                continue;
            }
            match shared.backpressure {
                Backpressure::Reject => return Err(PushError::Full),
                Backpressure::Block => {
                    // Bounded wait so shutdown can't strand us.
                    shared
                        .space
                        .wait_for(&mut ingest, Duration::from_millis(20));
                }
            }
        }
        if shared.stop.load(Relaxed) {
            return Err(PushError::Closed);
        }
        ingest.queues[self.slot].push_back(value);
        if shared.policy.should_seal(ingest.buffered()) {
            if shared.seal_locked(&mut ingest, 0).is_err() {
                // The engine refused the admission (failed or closing);
                // the root cause surfaces through wait_idle()/shutdown().
                return Err(PushError::Closed);
            }
            shared.maybe_checkpoint_locked(&mut ingest);
        }
        Ok(())
    }

    /// Events currently buffered (unsealed) for this source.
    pub fn buffered(&self) -> usize {
        self.shared.ingest.lock().queues[self.slot].len()
    }

    /// The configured per-source ingest queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// Final state of a completed run.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Phases committed and completed (cumulative across restore: a
    /// resumed runtime counts from the restored phase onward).
    pub phases: u64,
    /// Full execution history (if recording was enabled). After a
    /// restore, covers the replayed tail plus the live continuation —
    /// phases after the restored snapshot.
    pub history: Option<ExecutionHistory>,
    /// The committed event-to-phase binning. After a restore, includes
    /// the rows recovered from the WAL, so the script always spans
    /// phase 1 to the end.
    pub script: PhaseScript,
    /// Engine counters.
    pub metrics: MetricsSnapshot,
}

/// A running, push-based correlation service.
///
/// Built by [`StreamRuntimeBuilder`]. Producers push events through
/// [`SourceHandle`]s; epochs seal according to the configured policy;
/// subscribers receive sink emissions in serial order as phases retire;
/// [`shutdown`](StreamRuntime::shutdown) drains everything and returns
/// the report.
pub struct StreamRuntime {
    shared: Arc<RuntimeShared>,
    delivery: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl StreamRuntime {
    /// Starts a builder.
    pub fn builder() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::new()
    }

    /// Restores a runtime from the durable store at `dir`, built over
    /// `builder`'s graph (which must match the one the store was
    /// written by). Shorthand for
    /// `builder.durable(dir).restore()`.
    pub fn restore(
        dir: impl Into<PathBuf>,
        builder: StreamRuntimeBuilder,
    ) -> Result<StreamRuntime, RuntimeError> {
        builder.durable(dir).restore()
    }

    /// The push handle for a live source node.
    pub fn handle(&self, node: NodeHandle) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.vertex == node.vertex())
                .ok_or_else(|| {
                    RuntimeError::Config(format!("{:?} is not a live source", node.vertex()))
                })?,
        )
    }

    /// The push handle for a live source by name.
    pub fn handle_by_name(&self, name: &str) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| RuntimeError::Config(format!("no live source named {name:?}")))?,
        )
    }

    fn handle_at(&self, slot: usize) -> Result<SourceHandle, RuntimeError> {
        Ok(SourceHandle {
            shared: Arc::clone(&self.shared),
            slot,
        })
    }

    /// Names of the live sources, in wiring order.
    pub fn live_source_names(&self) -> Vec<String> {
        self.shared.live.iter().map(|s| s.name.clone()).collect()
    }

    /// The durable store directory, if durability is enabled.
    pub fn store_dir(&self) -> Option<&Path> {
        self.shared.durable.as_ref().map(|cfg| cfg.dir.as_path())
    }

    /// Subscribes to sink emissions; `f` is called for every sink
    /// output, in serial order, as its phase retires. Emissions of
    /// phases that retired before this call are not replayed — to
    /// guarantee none are missed (ticking policies can retire phases
    /// immediately), register via
    /// [`StreamRuntimeBuilder::subscribe`] instead.
    pub fn subscribe(&self, f: impl FnMut(&SinkEmission) + Send + 'static) {
        self.shared.subs.lock().push(Box::new(f));
    }

    /// Seals the current epoch explicitly: all buffered events commit
    /// to phases (the longest per-source backlog determines the phase
    /// count). Returns the number of phases committed (0 if nothing was
    /// buffered). On a durable runtime this is also a snapshot point
    /// when [`snapshot_on_flush`](StreamRuntimeBuilder::snapshot_on_flush)
    /// is set, and surfaces any deferred periodic-snapshot failure.
    pub fn flush(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        let phases = self.shared.seal_locked(&mut ingest, 0)?;
        if self
            .shared
            .durable
            .as_ref()
            .is_some_and(|cfg| cfg.snapshot_on_flush)
        {
            self.shared.checkpoint_locked(&mut ingest)?;
        } else {
            self.shared.maybe_checkpoint_locked(&mut ingest);
        }
        self.shared.take_snapshot_error(&mut ingest)?;
        Ok(phases)
    }

    /// Like [`flush`](Self::flush) but commits at least one phase, even
    /// if no events are buffered — an *empty epoch*, which still polls
    /// scripted sources and advances time-driven operators.
    pub fn tick(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        let phases = self.shared.seal_locked(&mut ingest, 1)?;
        self.shared.maybe_checkpoint_locked(&mut ingest);
        self.shared.take_snapshot_error(&mut ingest)?;
        Ok(phases)
    }

    /// Takes a snapshot now: waits for every admitted phase to retire,
    /// captures operator state, writes it to the store and syncs the
    /// WAL. Returns the snapshot's phase. Errors on a non-durable
    /// runtime or when a module does not support snapshots.
    pub fn checkpoint(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        self.shared.take_snapshot_error(&mut ingest)?;
        self.shared.checkpoint_locked(&mut ingest)
    }

    /// Phases committed so far.
    pub fn admitted(&self) -> u64 {
        self.shared.engine.admitted()
    }

    /// Events committed to phases so far (including a restored WAL
    /// tail's replayed events).
    pub fn events_committed(&self) -> u64 {
        self.shared.events_committed.load(Relaxed)
    }

    /// A cheap, cloneable observability handle that outlives mutable
    /// borrows of the runtime: a [`SessionPool`](crate::SessionPool)
    /// keeps one per session to build its per-tenant metrics rows while
    /// the sessions themselves are owned by the caller.
    pub fn probe(&self) -> RuntimeProbe {
        RuntimeProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Phases fully completed so far.
    pub fn completed_through(&self) -> u64 {
        self.shared.engine.completed_through()
    }

    /// Blocks until every committed phase has completed.
    pub fn wait_idle(&self) -> Result<u64, RuntimeError> {
        Ok(self.shared.engine.wait_idle()?)
    }

    /// The committed script so far (clone; the run keeps extending it).
    pub fn script(&self) -> PhaseScript {
        PhaseScript {
            sources: self.live_source_names(),
            rows: self.shared.ingest.lock().rows.clone(),
        }
    }

    /// Engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.engine.metrics()
    }

    /// Seals any remaining events, waits for completion, delivers every
    /// outstanding subscription callback, stops all threads and returns
    /// the final report. On a durable runtime the WAL is synced to
    /// stable storage; no final snapshot is taken (restore replays the
    /// tail from the last periodic snapshot).
    ///
    /// Events pushed concurrently with shutdown that miss the final
    /// seal are dropped (producers should quiesce first).
    pub fn shutdown(mut self) -> Result<RuntimeReport, RuntimeError> {
        // 1. Stop the ticker so it cannot admit more phases below.
        self.shared.ticker_stop.store(true, Relaxed);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        // 2. Final seal of whatever is buffered, then make the log
        //    durable.
        let seal_result = {
            let mut ingest = self.shared.ingest.lock();
            let sealed = self.shared.seal_locked(&mut ingest, 0);
            if let Some(wal) = ingest.wal.as_mut() {
                let _ = wal.sync();
            }
            sealed
        };
        // 3. Quiesce and stop the engine (workers join here).
        let engine_result = self.shared.engine.shutdown();
        // 4. Release pushers and the delivery thread.
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.space.notify_all();
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
        let report = engine_result?;
        seal_result?;
        Ok(RuntimeReport {
            phases: report.phases,
            history: report.history,
            script: PhaseScript {
                sources: self.shared.live.iter().map(|s| s.name.clone()).collect(),
                rows: std::mem::take(&mut self.shared.ingest.lock().rows),
            },
            metrics: report.metrics,
        })
    }
}

/// Read-only observability handle for one runtime (see
/// [`StreamRuntime::probe`]). Holding a probe does not keep the
/// runtime's threads alive — only its counters readable.
#[derive(Clone)]
pub struct RuntimeProbe {
    shared: Arc<RuntimeShared>,
}

impl RuntimeProbe {
    /// Phases committed so far.
    pub fn admitted(&self) -> u64 {
        self.shared.engine.admitted()
    }

    /// Phases fully completed (retired) so far.
    pub fn completed_through(&self) -> u64 {
        self.shared.engine.completed_through()
    }

    /// Events committed to phases so far.
    pub fn events_committed(&self) -> u64 {
        self.shared.events_committed.load(Relaxed)
    }

    /// Events buffered in the ingest queues, not yet sealed.
    pub fn buffered(&self) -> usize {
        self.shared.ingest.lock().buffered()
    }

    /// Engine counters. For a pooled runtime, `injector_depth` is this
    /// tenant's admission-lane depth while steal/park/wake counters are
    /// pool-global.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.engine.metrics()
    }

    /// Takes a snapshot now, exactly like [`StreamRuntime::checkpoint`]
    /// — the handle a [`SessionPool`](crate::SessionPool) uses to
    /// schedule checkpoints across every durable tenant it hosts.
    /// Errors with [`RuntimeError::Closed`] once the runtime has shut
    /// down.
    pub fn checkpoint(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        self.shared.take_snapshot_error(&mut ingest)?;
        self.shared.checkpoint_locked(&mut ingest)
    }
}

impl Drop for StreamRuntime {
    fn drop(&mut self) {
        // Unclean drop (e.g. test unwind, or a simulated crash in the
        // durability tests): stop threads without sealing; LiveEngine's
        // own Drop stops the workers. The WAL needs no special
        // handling — every committed row was already written at seal
        // time, which is exactly what restore reads back.
        self.shared.ticker_stop.store(true, Relaxed);
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.space.notify_all();
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
    }
}
