//! The streaming runtime: live ingestion over the pipelined engine.
//!
//! ```text
//!  producers ──push──▶ SourceHandle queues (bounded, backpressured)
//!                         │ seal (flush / count / tick)
//!                         ▼
//!                  PhaseScript row + LiveFeed bins
//!                         │ admit
//!                         ▼
//!              LiveEngine (k workers, pipelined phases)
//!                         │ phases retire in order
//!                         ▼
//!              delivery thread ──▶ subscribers (serial order)
//! ```
//!
//! The runtime never touches the scheduling algorithm: it only decides
//! *when* the environment step runs (epoch sealing) and observes sink
//! emissions *after* their phase has retired. Serializability is
//! therefore inherited from the engine, and every run commits a
//! [`PhaseScript`] that replays the exact same history through the
//! sequential oracle.

use crate::error::{PushError, RuntimeError};
use crate::policy::{Backpressure, EpochPolicy};
use crate::script::PhaseScript;
use ec_core::{ExecutionHistory, LiveEngine, MetricsSnapshot};
use ec_events::{FeedWriter, Value};
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use ec_graph::VertexId;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered live source.
struct LiveSource {
    name: String,
    vertex: VertexId,
    writer: FeedWriter,
}

/// Ingest state: the bounded per-source queues and the committed
/// script. One mutex for all of it, so a seal is atomic with respect
/// to every push — the interleaving of pushes and flushes is always a
/// well-defined sequence of committed rows.
struct Ingest {
    queues: Vec<VecDeque<Value>>,
    rows: Vec<Vec<Option<Value>>>,
}

impl Ingest {
    fn buffered(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// A sink emission delivered to subscribers, in serial (phase, vertex)
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkEmission {
    /// The sink node's name (as given to the builder).
    pub name: String,
    /// The sink vertex.
    pub vertex: VertexId,
    /// The phase that produced the value.
    pub phase: u64,
    /// The emitted value.
    pub value: Value,
}

type Subscriber = Box<dyn FnMut(&SinkEmission) + Send>;

struct RuntimeShared {
    engine: LiveEngine,
    ingest: Mutex<Ingest>,
    /// Signalled when a seal drains the queues (or shutdown begins);
    /// waited on by blocked pushers.
    space: Condvar,
    subs: Mutex<Vec<Subscriber>>,
    /// No more pushes/seals accepted.
    stop: AtomicBool,
    /// Stops the interval ticker (set before the final flush so the
    /// ticker cannot race extra phases into a closing runtime).
    ticker_stop: AtomicBool,
    live: Vec<LiveSource>,
    /// Vertex names, indexed by `VertexId::index()`.
    names: Vec<String>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    /// Record committed rows into the [`PhaseScript`]. Off for
    /// long-running services, where the script would grow without
    /// bound.
    record_script: bool,
}

impl RuntimeShared {
    /// Seals the current epoch: commits `max(longest queue, min_phases)`
    /// phases, staging one bin per live source per phase. Caller holds
    /// the ingest lock.
    fn seal_locked(&self, ingest: &mut Ingest, min_phases: u64) -> Result<u64, RuntimeError> {
        let longest = ingest.queues.iter().map(VecDeque::len).max().unwrap_or(0) as u64;
        let phases = longest.max(min_phases);
        for committed in 0..phases {
            let row: Vec<Option<Value>> =
                ingest.queues.iter_mut().map(VecDeque::pop_front).collect();
            for (source, bin) in self.live.iter().zip(row.iter()) {
                source.writer.stage(bin.clone());
            }
            if self.record_script {
                ingest.rows.push(row);
            }
            // Admit may block on the engine's in-flight throttle; the
            // workers drain independently, so this self-resolves.
            if let Err(e) = self.engine.admit() {
                // Keep the script consistent with what actually ran: a
                // refused admission (engine failed or closing) must not
                // leave a committed row behind. The staged bins are
                // never polled — the engine admits no further phases.
                if self.record_script {
                    ingest.rows.pop();
                }
                if committed > 0 {
                    self.space.notify_all();
                }
                return Err(e.into());
            }
        }
        if phases > 0 {
            self.space.notify_all();
        }
        Ok(phases)
    }

    fn deliver(&self, records: Vec<ec_core::SinkRecord>) {
        if records.is_empty() {
            return;
        }
        let mut subs = self.subs.lock();
        for r in records {
            let emission = SinkEmission {
                name: self.names[r.vertex.index()].clone(),
                vertex: r.vertex,
                phase: r.phase.get(),
                value: r.value,
            };
            for sub in subs.iter_mut() {
                sub(&emission);
            }
        }
    }

    /// The delivery loop: waits for phases to retire and forwards their
    /// sink emissions to subscribers in serial order.
    fn delivery_loop(&self) {
        let mut last = 0u64;
        loop {
            let frontier = match self
                .engine
                .wait_progress_for(last, Duration::from_millis(50))
            {
                Ok(f) => f,
                Err(_) => {
                    // Engine failed: nothing further will retire (the
                    // error surfaces through shutdown()/wait_idle()),
                    // but phases that did retire still get delivered.
                    self.deliver(self.engine.drain_retired_sinks());
                    break;
                }
            };
            let progressed = frontier > last;
            if progressed {
                self.deliver(self.engine.drain_retired_sinks());
                last = frontier;
            }
            if self.stop.load(Relaxed) {
                // Shutdown path: everything admitted has completed by
                // now; one final drain empties the buffer.
                self.deliver(self.engine.drain_retired_sinks());
                break;
            }
            if !progressed {
                // No progress: either the 50 ms wait timed out (idle
                // stream) or the engine is quiescing for shutdown, in
                // which case wait_progress_for returns immediately —
                // pause briefly so that window doesn't busy-spin on the
                // scheduler lock while workers drain.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Builds a [`StreamRuntime`]: graph wiring plus runtime policy.
///
/// Wraps a [`CorrelatorBuilder`], adding live sources; operators and
/// scripted sources pass through to the correlator untouched.
pub struct StreamRuntimeBuilder {
    correlator: CorrelatorBuilder,
    live: Vec<LiveSource>,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    threads: usize,
    max_inflight: u64,
    record_history: bool,
    record_script: bool,
    subs: Vec<Subscriber>,
}

impl Default for StreamRuntimeBuilder {
    fn default() -> Self {
        StreamRuntimeBuilder::new()
    }
}

impl StreamRuntimeBuilder {
    /// New empty builder with defaults: manual epochs, blocking
    /// backpressure, 1024-event queues, 4 threads, engine-default
    /// in-flight bound, history recording on.
    pub fn new() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::from_correlator(CorrelatorBuilder::new(), Vec::new())
    }

    /// Wraps an already-started correlator. `feeds` lists its existing
    /// live sources (from [`CorrelatorBuilder::live_source`]) in wiring
    /// order; this is the path used by spec-driven construction.
    pub fn from_correlator(
        correlator: CorrelatorBuilder,
        feeds: Vec<(String, NodeHandle, FeedWriter)>,
    ) -> StreamRuntimeBuilder {
        StreamRuntimeBuilder {
            correlator,
            live: feeds
                .into_iter()
                .map(|(name, handle, writer)| LiveSource {
                    name,
                    vertex: handle.vertex(),
                    writer,
                })
                .collect(),
            policy: EpochPolicy::Manual,
            backpressure: Backpressure::Block,
            capacity: 1024,
            threads: 4,
            max_inflight: 64,
            record_history: true,
            record_script: true,
            subs: Vec::new(),
        }
    }

    /// Registers a subscriber **before** the runtime starts, so no
    /// emission can be missed — with a ticking epoch policy, phases can
    /// retire between `build()` and a later
    /// [`StreamRuntime::subscribe`] call.
    pub fn subscribe(mut self, f: impl FnMut(&SinkEmission) + Send + 'static) -> Self {
        self.subs.push(Box::new(f));
        self
    }

    /// Adds a live source; events are pushed through the runtime's
    /// [`SourceHandle`] for this node.
    pub fn live_source(&mut self, name: impl Into<String>) -> NodeHandle {
        let name = name.into();
        let (handle, writer) = self.correlator.live_source(name.clone());
        self.live.push(LiveSource {
            name,
            vertex: handle.vertex(),
            writer,
        });
        handle
    }

    /// Adds a scripted source (see
    /// [`CorrelatorBuilder::source`]) — useful for mixing live feeds
    /// with reference signals.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        generator: impl ec_events::EventSource + 'static,
    ) -> NodeHandle {
        self.correlator.source(name, generator)
    }

    /// Adds a computation node (see [`CorrelatorBuilder::add`]).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        module: impl ec_core::Module + 'static,
        inputs: &[NodeHandle],
    ) -> NodeHandle {
        self.correlator.add(name, module, inputs)
    }

    /// Direct access to the wrapped correlator for anything else.
    pub fn correlator_mut(&mut self) -> &mut CorrelatorBuilder {
        &mut self.correlator
    }

    /// Sets the epoch policy (default [`EpochPolicy::Manual`]).
    pub fn epoch_policy(mut self, policy: EpochPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the backpressure mode (default [`Backpressure::Block`]).
    pub fn backpressure(mut self, mode: Backpressure) -> Self {
        self.backpressure = mode;
        self
    }

    /// Sets the per-source ingest queue capacity (default 1024).
    pub fn ingest_capacity(mut self, events: usize) -> Self {
        self.capacity = events.max(1);
        self
    }

    /// Sets the engine worker count (default 4).
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Bounds started-but-incomplete phases (default 64).
    pub fn max_inflight(mut self, phases: u64) -> Self {
        self.max_inflight = phases.max(1);
        self
    }

    /// Records the full execution history (default on; turn off for
    /// long-running services and benchmarks).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Records the committed [`PhaseScript`] (default on). The script
    /// grows by one row per phase forever, so long-running services
    /// should turn it off alongside
    /// [`record_history`](Self::record_history); [`StreamRuntime::script`]
    /// and the final report's script are then empty.
    pub fn record_script(mut self, on: bool) -> Self {
        self.record_script = on;
        self
    }

    /// Builds and starts the runtime (workers and delivery thread spawn
    /// immediately; the interval ticker too, if configured).
    pub fn build(self) -> Result<StreamRuntime, RuntimeError> {
        if self.correlator.is_empty() {
            return Err(RuntimeError::Config("graph has no nodes".into()));
        }
        let names: Vec<String> = {
            let dag = self.correlator.dag();
            dag.vertices().map(|v| dag.name(v).to_string()).collect()
        };
        let engine = self
            .correlator
            .engine()
            .threads(self.threads)
            .max_inflight(self.max_inflight)
            .record_history(self.record_history)
            .build()?
            .into_live();
        let queue_count = self.live.len();
        let shared = Arc::new(RuntimeShared {
            engine,
            ingest: Mutex::new(Ingest {
                queues: vec![VecDeque::new(); queue_count],
                rows: Vec::new(),
            }),
            space: Condvar::new(),
            subs: Mutex::new(self.subs),
            stop: AtomicBool::new(false),
            ticker_stop: AtomicBool::new(false),
            live: self.live,
            names,
            policy: self.policy,
            backpressure: self.backpressure,
            capacity: self.capacity,
            record_script: self.record_script,
        });

        let delivery_shared = Arc::clone(&shared);
        let delivery = std::thread::Builder::new()
            .name("ec-runtime-delivery".into())
            .spawn(move || delivery_shared.delivery_loop())
            .expect("spawn delivery thread");

        let ticker = if let EpochPolicy::ByInterval(interval) = self.policy {
            let ticker_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("ec-runtime-ticker".into())
                    .spawn(move || {
                        // Sleep toward the next tick deadline in bounded
                        // chunks: long intervals don't busy-wake, and
                        // shutdown is noticed within ~20 ms.
                        let shutdown_check = Duration::from_millis(20);
                        let mut last_tick = Instant::now();
                        while !ticker_shared.ticker_stop.load(Relaxed) {
                            let remaining = interval.saturating_sub(last_tick.elapsed());
                            if !remaining.is_zero() {
                                std::thread::sleep(remaining.min(shutdown_check));
                                continue;
                            }
                            last_tick = Instant::now();
                            let mut ingest = ticker_shared.ingest.lock();
                            if ticker_shared.seal_locked(&mut ingest, 1).is_err() {
                                break; // engine failed/closed; surfaced elsewhere
                            }
                        }
                    })
                    .expect("spawn ticker thread"),
            )
        } else {
            None
        };

        Ok(StreamRuntime {
            shared,
            delivery: Some(delivery),
            ticker,
        })
    }
}

/// The push side of one live source. Cloneable and `Send`: hand one to
/// each producer thread.
#[derive(Clone)]
pub struct SourceHandle {
    shared: Arc<RuntimeShared>,
    slot: usize,
}

impl SourceHandle {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.shared.live[self.slot].name
    }

    /// The source's graph vertex.
    pub fn vertex(&self) -> VertexId {
        self.shared.live[self.slot].vertex
    }

    /// Enqueues one event.
    ///
    /// With [`Backpressure::Block`] a full queue blocks the caller
    /// until an epoch seal drains it; with [`Backpressure::Reject`] it
    /// returns [`PushError::Full`]. Under [`EpochPolicy::ByCount`] the
    /// push that reaches the threshold seals the epoch itself.
    pub fn push(&self, value: impl Into<Value>) -> Result<(), PushError> {
        let value = value.into();
        let shared = &*self.shared;
        let mut ingest = shared.ingest.lock();
        while ingest.queues[self.slot].len() >= shared.capacity {
            if shared.stop.load(Relaxed) {
                return Err(PushError::Closed);
            }
            // Under ByCount, a full queue forces the epoch: waiting
            // would deadlock whenever the count threshold cannot be
            // reached (larger than capacity, or other sources idle) —
            // nobody else is going to seal.
            if matches!(shared.policy, EpochPolicy::ByCount(_)) {
                if shared.seal_locked(&mut ingest, 0).is_err() {
                    return Err(PushError::Closed);
                }
                continue;
            }
            match shared.backpressure {
                Backpressure::Reject => return Err(PushError::Full),
                Backpressure::Block => {
                    // Bounded wait so shutdown can't strand us.
                    shared
                        .space
                        .wait_for(&mut ingest, Duration::from_millis(20));
                }
            }
        }
        if shared.stop.load(Relaxed) {
            return Err(PushError::Closed);
        }
        ingest.queues[self.slot].push_back(value);
        if shared.policy.should_seal(ingest.buffered())
            && shared.seal_locked(&mut ingest, 0).is_err()
        {
            // The engine refused the admission (failed or closing); the
            // root cause surfaces through wait_idle()/shutdown().
            return Err(PushError::Closed);
        }
        Ok(())
    }

    /// Events currently buffered (unsealed) for this source.
    pub fn buffered(&self) -> usize {
        self.shared.ingest.lock().queues[self.slot].len()
    }

    /// The configured per-source ingest queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// Final state of a completed run.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Phases committed and completed.
    pub phases: u64,
    /// Full execution history (if recording was enabled).
    pub history: Option<ExecutionHistory>,
    /// The committed event-to-phase binning.
    pub script: PhaseScript,
    /// Engine counters.
    pub metrics: MetricsSnapshot,
}

/// A running, push-based correlation service.
///
/// Built by [`StreamRuntimeBuilder`]. Producers push events through
/// [`SourceHandle`]s; epochs seal according to the configured policy;
/// subscribers receive sink emissions in serial order as phases retire;
/// [`shutdown`](StreamRuntime::shutdown) drains everything and returns
/// the report.
pub struct StreamRuntime {
    shared: Arc<RuntimeShared>,
    delivery: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl StreamRuntime {
    /// Starts a builder.
    pub fn builder() -> StreamRuntimeBuilder {
        StreamRuntimeBuilder::new()
    }

    /// The push handle for a live source node.
    pub fn handle(&self, node: NodeHandle) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.vertex == node.vertex())
                .ok_or_else(|| {
                    RuntimeError::Config(format!("{:?} is not a live source", node.vertex()))
                })?,
        )
    }

    /// The push handle for a live source by name.
    pub fn handle_by_name(&self, name: &str) -> Result<SourceHandle, RuntimeError> {
        self.handle_at(
            self.shared
                .live
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| RuntimeError::Config(format!("no live source named {name:?}")))?,
        )
    }

    fn handle_at(&self, slot: usize) -> Result<SourceHandle, RuntimeError> {
        Ok(SourceHandle {
            shared: Arc::clone(&self.shared),
            slot,
        })
    }

    /// Names of the live sources, in wiring order.
    pub fn live_source_names(&self) -> Vec<String> {
        self.shared.live.iter().map(|s| s.name.clone()).collect()
    }

    /// Subscribes to sink emissions; `f` is called for every sink
    /// output, in serial order, as its phase retires. Emissions of
    /// phases that retired before this call are not replayed — to
    /// guarantee none are missed (ticking policies can retire phases
    /// immediately), register via
    /// [`StreamRuntimeBuilder::subscribe`] instead.
    pub fn subscribe(&self, f: impl FnMut(&SinkEmission) + Send + 'static) {
        self.shared.subs.lock().push(Box::new(f));
    }

    /// Seals the current epoch explicitly: all buffered events commit
    /// to phases (the longest per-source backlog determines the phase
    /// count). Returns the number of phases committed (0 if nothing was
    /// buffered).
    pub fn flush(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        self.shared.seal_locked(&mut ingest, 0)
    }

    /// Like [`flush`](Self::flush) but commits at least one phase, even
    /// if no events are buffered — an *empty epoch*, which still polls
    /// scripted sources and advances time-driven operators.
    pub fn tick(&self) -> Result<u64, RuntimeError> {
        if self.shared.stop.load(Relaxed) {
            return Err(RuntimeError::Closed);
        }
        let mut ingest = self.shared.ingest.lock();
        self.shared.seal_locked(&mut ingest, 1)
    }

    /// Phases committed so far.
    pub fn admitted(&self) -> u64 {
        self.shared.engine.admitted()
    }

    /// Phases fully completed so far.
    pub fn completed_through(&self) -> u64 {
        self.shared.engine.completed_through()
    }

    /// Blocks until every committed phase has completed.
    pub fn wait_idle(&self) -> Result<u64, RuntimeError> {
        Ok(self.shared.engine.wait_idle()?)
    }

    /// The committed script so far (clone; the run keeps extending it).
    pub fn script(&self) -> PhaseScript {
        PhaseScript {
            sources: self.live_source_names(),
            rows: self.shared.ingest.lock().rows.clone(),
        }
    }

    /// Engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.engine.metrics()
    }

    /// Seals any remaining events, waits for completion, delivers every
    /// outstanding subscription callback, stops all threads and returns
    /// the final report.
    ///
    /// Events pushed concurrently with shutdown that miss the final
    /// seal are dropped (producers should quiesce first).
    pub fn shutdown(mut self) -> Result<RuntimeReport, RuntimeError> {
        // 1. Stop the ticker so it cannot admit more phases below.
        self.shared.ticker_stop.store(true, Relaxed);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        // 2. Final seal of whatever is buffered.
        let seal_result = {
            let mut ingest = self.shared.ingest.lock();
            self.shared.seal_locked(&mut ingest, 0)
        };
        // 3. Quiesce and stop the engine (workers join here).
        let engine_result = self.shared.engine.shutdown();
        // 4. Release pushers and the delivery thread.
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.space.notify_all();
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
        let report = engine_result?;
        seal_result?;
        Ok(RuntimeReport {
            phases: report.phases,
            history: report.history,
            script: PhaseScript {
                sources: self.shared.live.iter().map(|s| s.name.clone()).collect(),
                rows: std::mem::take(&mut self.shared.ingest.lock().rows),
            },
            metrics: report.metrics,
        })
    }
}

impl Drop for StreamRuntime {
    fn drop(&mut self) {
        // Unclean drop (e.g. test unwind): stop threads without
        // sealing; LiveEngine's own Drop stops the workers.
        self.shared.ticker_stop.store(true, Relaxed);
        self.shared.stop.store(true, Relaxed);
        self.shared.engine.wake_all();
        self.shared.space.notify_all();
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        if let Some(d) = self.delivery.take() {
            let _ = d.join();
        }
    }
}
