//! Runtime error types.

use ec_core::EngineError;
use std::fmt;

/// Errors surfaced by the streaming runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The underlying engine failed (module panic, invalid emission, …).
    Engine(EngineError),
    /// The runtime has been shut down.
    Closed,
    /// Invalid configuration or wiring.
    Config(String),
    /// The durable store failed (WAL append, snapshot write, recovery
    /// validation). Carries the rendered `ec_store::StoreError`.
    Store(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Engine(e) => write!(f, "engine error: {e}"),
            RuntimeError::Closed => write!(f, "runtime is shut down"),
            RuntimeError::Config(msg) => write!(f, "runtime configuration error: {msg}"),
            RuntimeError::Store(msg) => write!(f, "durable store error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<EngineError> for RuntimeError {
    fn from(e: EngineError) -> RuntimeError {
        RuntimeError::Engine(e)
    }
}

impl From<ec_store::StoreError> for RuntimeError {
    fn from(e: ec_store::StoreError) -> RuntimeError {
        RuntimeError::Store(e.to_string())
    }
}

/// Errors surfaced by [`SourceHandle::push`](crate::SourceHandle::push).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The source's ingest queue is full (only under
    /// [`Backpressure::Reject`](crate::Backpressure::Reject); with
    /// `Block` the push waits instead).
    Full,
    /// The runtime has been shut down.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => write!(f, "ingest queue full"),
            PushError::Closed => write!(f, "runtime is shut down"),
        }
    }
}

impl std::error::Error for PushError {}
