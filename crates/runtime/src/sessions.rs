//! Multi-tenant sessions: many independent [`StreamRuntime`]s sharing
//! one worker pool.
//!
//! A [`SessionPool`] owns one [`EnginePool`] (`ec-core`): a fixed set
//! of worker threads draining a sharded run queue whose admission side
//! is split into per-tenant lanes. Each session opened on the pool is a
//! complete, independent [`StreamRuntime`] — its own correlator graph,
//! epoch policy, subscribers, committed [`PhaseScript`](crate::PhaseScript)
//! and (optionally) its own durable store directory namespaced under
//! the pool's root — while execution is multiplexed over the shared
//! workers.
//!
//! ## Fairness
//!
//! Tenant fairness is a *routing policy*, not a scheduler rewrite:
//!
//! * a session's admissions land in its own injector lane; idle workers
//!   refill in **weighted round-robin** over lanes, so every rotation
//!   visits every backlogged tenant and a lane's per-visit batch is
//!   proportional to its [`weight`](StreamRuntimeBuilder::pool_weight);
//! * each session keeps its own **in-flight cap**
//!   ([`max_inflight`](StreamRuntimeBuilder::max_inflight)), bounding
//!   how many of its phases can occupy the shared pool at once.
//!
//! Together these guarantee *bounded interference*: a saturating tenant
//! has at most `max_inflight` phases' worth of tasks ahead of a trickle
//! tenant's admission, after which the round-robin rotation reaches the
//! trickle lane — the property `crates/runtime/tests/sessions.rs`
//! measures as phase-retirement latency under a saturating neighbour.
//!
//! ## Durability
//!
//! With [`SessionPoolBuilder::durable_root`], every session gets an
//! independent store at `root/<sanitized-name>` (see
//! [`ec_store::session_dir`]) opened with build-or-restore semantics:
//! killing the whole pool and reopening the same session names restores
//! every tenant at its exact next phase, independently — the
//! multi-tenant crash matrix in the test suite.
//!
//! ## Lifecycle
//!
//! [`Session`]s are owned by the caller and closed individually
//! ([`Session::close`] seals, drains and reports). Dropping a session
//! without closing is the simulated-crash path: its queued tasks are
//! discarded and, if durable, its WAL already holds every committed
//! row. Drop (or [`shutdown`](SessionPool::shutdown)) the pool *after*
//! the sessions; a session still attached when the pool stops fails
//! fast instead of hanging.

use crate::error::RuntimeError;
use crate::obs::{render_session, MetricsRegistry};
use crate::runtime::{RuntimeProbe, StreamRuntime, StreamRuntimeBuilder};
use ec_core::{EnginePool, MetricsSnapshot};
use ec_obs::{HealthReport, MetricsServer, Verdict};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Registry row for one open session.
struct SessionEntry {
    name: Arc<str>,
    probe: RuntimeProbe,
    opened: Instant,
    /// `events_committed` at open time (nonzero after a restore, which
    /// replays the WAL tail): the rate denominator starts here, so a
    /// restored tenant does not report its replayed backlog as live
    /// throughput.
    events_at_open: u64,
    /// The session's durable store directory, if any. Open refuses a
    /// new session whose directory collides with an open session's —
    /// distinct names can sanitize to the same path
    /// ([`ec_store::session_dir`]), and two live WAL writers on one
    /// store would corrupt it.
    store_dir: Option<PathBuf>,
}

type Registry = Mutex<Vec<SessionEntry>>;

/// Configures a [`SessionPool`].
pub struct SessionPoolBuilder {
    threads: usize,
    max_sessions: usize,
    durable_root: Option<PathBuf>,
}

impl SessionPoolBuilder {
    /// Number of shared worker threads (default 4).
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Maximum number of concurrently open sessions (default 16). Fixed
    /// at pool creation: each potential session owns an admission lane.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n.max(1);
        self
    }

    /// Makes every session durable by default: a session opened without
    /// its own [`durable`](StreamRuntimeBuilder::durable) directory
    /// stores its WAL and snapshots at `root/<sanitized-name>`
    /// ([`ec_store::session_dir`]) with build-or-restore semantics, so
    /// reopening a killed pool's sessions resumes each tenant at its
    /// exact next phase.
    pub fn durable_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.durable_root = Some(root.into());
        self
    }

    /// Builds the pool (workers spawn immediately and park until
    /// sessions open).
    pub fn build(self) -> SessionPool {
        SessionPool {
            registry: Arc::new(Mutex::new(Vec::new())),
            opening: Mutex::new(()),
            pool: EnginePool::new(self.threads, self.max_sessions),
            durable_root: self.durable_root,
            metrics_server: Mutex::new(None),
        }
    }
}

/// A shared worker pool hosting many independent tenant sessions.
///
/// See the [module docs](self) for the fairness and durability story.
///
/// ```
/// use ec_runtime::{SessionPool, StreamRuntime};
/// use ec_fusion::operators::threshold::Threshold;
///
/// let pool = SessionPool::builder().threads(2).max_sessions(4).build();
///
/// // Two tenants, each a full independent runtime on the shared pool.
/// let mut sessions = Vec::new();
/// for tenant in ["acme", "globex"] {
///     let mut b = StreamRuntime::builder();
///     let tx = b.live_source("tx");
///     b.add("alarm", Threshold::above(100.0), &[tx]);
///     sessions.push(pool.open(tenant, b).unwrap());
/// }
/// for (i, s) in sessions.iter().enumerate() {
///     s.handle_by_name("tx").unwrap().push(200.0 * (i as f64 + 1.0)).unwrap();
///     s.flush().unwrap();
/// }
/// for s in sessions {
///     let report = s.close().unwrap();
///     assert_eq!(report.phases, 1);
/// }
/// ```
pub struct SessionPool {
    registry: Arc<Registry>,
    /// Serializes [`open`](SessionPool::open) calls end to end, so the
    /// duplicate-name check and the registry insert are atomic — two
    /// racing opens of the same name can never both build (which,
    /// under a durable root, would mean two WAL writers on one store).
    /// Metrics and close paths use only `registry` and stay
    /// unblocked.
    opening: Mutex<()>,
    pool: EnginePool,
    durable_root: Option<PathBuf>,
    /// Live `/metrics` endpoint serving one row per open session (see
    /// [`serve_metrics`](SessionPool::serve_metrics)).
    metrics_server: Mutex<Option<MetricsServer>>,
}

impl SessionPool {
    /// Starts a builder.
    pub fn builder() -> SessionPoolBuilder {
        SessionPoolBuilder {
            threads: 4,
            max_sessions: 16,
            durable_root: None,
        }
    }

    /// Shorthand: a pool with `threads` workers and up to
    /// `max_sessions` sessions, no durable root.
    pub fn new(threads: usize, max_sessions: usize) -> SessionPool {
        SessionPool::builder()
            .threads(threads)
            .max_sessions(max_sessions)
            .build()
    }

    /// Number of shared worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Maximum number of concurrently open sessions.
    pub fn capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.registry.lock().len()
    }

    /// The durable root directory, if one was configured.
    pub fn durable_root(&self) -> Option<&std::path::Path> {
        self.durable_root.as_deref()
    }

    /// Opens a tenant session: builds (or, under a durable root,
    /// builds-or-restores) `builder`'s graph as a [`StreamRuntime`]
    /// running on this pool's shared workers.
    ///
    /// `builder` keeps full control of the graph, epoch policy,
    /// subscribers, per-tenant in-flight cap
    /// ([`max_inflight`](StreamRuntimeBuilder::max_inflight)) and
    /// admission [`pool_weight`](StreamRuntimeBuilder::pool_weight);
    /// its `threads` setting is ignored (the pool's worker count
    /// applies). Session names must be unique among open sessions.
    pub fn open(
        &self,
        name: impl Into<String>,
        builder: StreamRuntimeBuilder,
    ) -> Result<Session, RuntimeError> {
        // One open at a time: makes check-duplicate → build → insert
        // atomic against racing opens of the same name.
        let _opening = self.opening.lock();
        let name: Arc<str> = Arc::from(name.into());
        if self.registry.lock().iter().any(|e| e.name == name) {
            return Err(RuntimeError::Config(format!(
                "a session named {name:?} is already open"
            )));
        }
        let mut builder = builder.pool(&self.pool);
        if builder.durable_dir_ref().is_none() {
            if let Some(root) = &self.durable_root {
                builder = builder.durable(ec_store::session_dir(root, &name));
            }
        }
        let store_dir = builder.durable_dir_ref().cloned();
        // Distinct names can sanitize to the same store directory
        // ("a b" and "a_b" both map to root/a_b): refuse rather than
        // attach a second live WAL writer to an open session's store.
        if let Some(dir) = &store_dir {
            if let Some(holder) = self
                .registry
                .lock()
                .iter()
                .find(|e| e.store_dir.as_ref() == Some(dir))
            {
                return Err(RuntimeError::Config(format!(
                    "session {name:?} maps to store directory {} already held by \
                     open session {:?}",
                    dir.display(),
                    holder.name
                )));
            }
        }
        let rt = if store_dir.is_some() {
            builder.build_or_restore()?
        } else {
            builder.build()?
        };
        let probe = rt.probe();
        self.registry.lock().push(SessionEntry {
            name: Arc::clone(&name),
            events_at_open: probe.events_committed(),
            probe,
            opened: Instant::now(),
            store_dir,
        });
        Ok(Session {
            name,
            rt: Some(rt),
            registry: Arc::downgrade(&self.registry),
        })
    }

    /// One metrics row per open session, in opening order.
    pub fn metrics(&self) -> Vec<SessionMetrics> {
        metrics_rows(&self.registry)
    }

    /// Binds a live Prometheus `/metrics` endpoint (port 0 picks a free
    /// one) serving one `ec_session_*` row — plus the tenant's full
    /// `ec_*` engine snapshot under a `session` label — per open
    /// session, re-rendered on every scrape. A `/healthz` route next
    /// door aggregates every tenant's watchdog report under the worst
    /// verdict across the pool. Returns the bound address; the
    /// endpoint stops at [`shutdown`](Self::shutdown) or drop. Calling
    /// again replaces the previous endpoint.
    pub fn serve_metrics(&self, addr: &str) -> Result<std::net::SocketAddr, RuntimeError> {
        self.serve_metrics_with(addr, |_page| {})
    }

    /// [`serve_metrics`](Self::serve_metrics) with an extra provider
    /// appended to the `/metrics` page on every scrape — the wire
    /// front end ([`crate::serve`]) adds its per-connection series
    /// here so one scrape covers tenants and transport alike.
    pub fn serve_metrics_with(
        &self,
        addr: &str,
        extra: impl Fn(&mut ec_obs::PromText) + Send + Sync + 'static,
    ) -> Result<std::net::SocketAddr, RuntimeError> {
        self.serve_metrics_ext(addr, extra, Vec::new)
    }

    /// [`serve_metrics_with`](Self::serve_metrics_with) plus extra
    /// top-level `/healthz` fields rendered on every probe — the wire
    /// front end surfaces its draining state here so orchestrators see
    /// a drain in progress on the health plane, not just in logs.
    /// Field values are emitted verbatim (JSON literals: `true`,
    /// numbers, or pre-quoted strings).
    pub fn serve_metrics_ext(
        &self,
        addr: &str,
        extra: impl Fn(&mut ec_obs::PromText) + Send + Sync + 'static,
        health_fields: impl Fn() -> Vec<(String, String)> + Send + Sync + 'static,
    ) -> Result<std::net::SocketAddr, RuntimeError> {
        let registry = MetricsRegistry::new();
        let rows = Arc::clone(&self.registry);
        registry.register(move |page| {
            for row in metrics_rows(&rows) {
                render_session(page, &row);
            }
        });
        registry.register(extra);
        let health_rows = Arc::clone(&self.registry);
        let healthz: ec_obs::RenderFn =
            Arc::new(move || pool_health_json(&health_rows, &health_fields()));
        let server = registry
            .serve_with(addr, vec![("/healthz", ec_obs::CONTENT_TYPE_JSON, healthz)])
            .map_err(|e| RuntimeError::Config(format!("metrics endpoint {addr}: {e}")))?;
        let local = server.local_addr();
        *self.metrics_server.lock() = Some(server);
        Ok(local)
    }

    /// Every open session's watchdog report, in opening order. Each
    /// runtime's own delivery loop keeps its watchdog fed; this only
    /// reads the latest verdicts.
    pub fn health(&self) -> Vec<(String, HealthReport)> {
        self.registry
            .lock()
            .iter()
            .map(|e| (e.name.to_string(), e.probe.health()))
            .collect()
    }

    /// The bound `/metrics` address, if
    /// [`serve_metrics`](Self::serve_metrics) has been called.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server
            .lock()
            .as_ref()
            .map(MetricsServer::local_addr)
    }

    /// Total queued tasks across every tenant (racy; observability).
    pub fn queue_len(&self) -> usize {
        self.pool.queue_len()
    }

    /// Checkpoints every open session now (cross-tenant checkpoint
    /// scheduling): each durable tenant snapshots its operator state at
    /// its own retired phase boundary, independently — there is no
    /// cross-tenant cut to coordinate, because tenants share no state.
    /// Returns one `(name, result)` row per session, in opening order;
    /// non-durable sessions report their configuration error rather
    /// than stopping the sweep.
    pub fn checkpoint_all(&self) -> Vec<(String, Result<u64, RuntimeError>)> {
        let probes: Vec<(String, RuntimeProbe)> = self
            .registry
            .lock()
            .iter()
            .map(|e| (e.name.to_string(), e.probe.clone()))
            .collect();
        // Checkpoint outside the registry lock: a snapshot waits for
        // the tenant to go idle, which can take a while under load.
        probes
            .into_iter()
            .map(|(name, probe)| {
                let result = probe.checkpoint();
                (name, result)
            })
            .collect()
    }

    /// Stops the shared workers and joins them (idempotent; also runs
    /// on drop). Close the sessions first: a session still attached
    /// when the pool stops fails fast on its next admission instead of
    /// executing further phases.
    pub fn shutdown(&self) {
        if let Some(mut server) = self.metrics_server.lock().take() {
            server.stop();
        }
        self.pool.shutdown();
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Renders the pool's `/healthz` body: the worst verdict across every
/// open tenant, then each tenant's full report keyed by name, plus any
/// caller-provided top-level fields (values emitted verbatim).
fn pool_health_json(registry: &Registry, fields: &[(String, String)]) -> String {
    let reports: Vec<(String, HealthReport)> = registry
        .lock()
        .iter()
        .map(|e| (e.name.to_string(), e.probe.health()))
        .collect();
    let worst = reports
        .iter()
        .map(|(_, r)| r.verdict)
        .max()
        .unwrap_or(Verdict::Ok);
    let sessions: Vec<String> = reports
        .iter()
        .map(|(name, r)| {
            let name = name.replace('\\', "\\\\").replace('"', "\\\"");
            format!("{{\"name\":\"{name}\",\"report\":{}}}", r.to_json())
        })
        .collect();
    let extra: String = fields
        .iter()
        .map(|(k, v)| {
            let k = k.replace('\\', "\\\\").replace('"', "\\\"");
            format!(",\"{k}\":{v}")
        })
        .collect();
    format!(
        "{{\"verdict\":\"{}\"{extra},\"sessions\":[{}]}}",
        worst.name(),
        sessions.join(",")
    )
}

/// Builds the per-session metrics rows from the registry — shared by
/// [`SessionPool::metrics`] and the `/metrics` endpoint's render
/// closure, so the scraped rows and the API rows cannot drift.
fn metrics_rows(registry: &Registry) -> Vec<SessionMetrics> {
    registry
        .lock()
        .iter()
        .map(|e| {
            let engine = e.probe.metrics();
            let admitted = e.probe.admitted();
            let retired = e.probe.completed_through();
            let events = e.probe.events_committed();
            let live_events = events.saturating_sub(e.events_at_open);
            let elapsed = e.opened.elapsed().as_secs_f64();
            SessionMetrics {
                name: e.name.to_string(),
                lane_depth: engine.scheduler.injector_depth,
                inflight: admitted.saturating_sub(retired),
                buffered: e.probe.buffered() as u64,
                ingest_waits: engine.ingest.waits,
                phases_retired: retired,
                events_committed: events,
                events_per_sec: if elapsed > 0.0 {
                    live_events as f64 / elapsed
                } else {
                    0.0
                },
                engine,
            }
        })
        .collect()
}

/// Per-session observability row (see [`SessionPool::metrics`]).
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// Session name.
    pub name: String,
    /// Tasks queued in this tenant's admission lane, not yet picked up
    /// by a worker.
    pub lane_depth: u64,
    /// Phases admitted but not yet retired.
    pub inflight: u64,
    /// Events buffered in the ingest queues, not yet sealed.
    pub buffered: u64,
    /// Producer-side ingest contention so far: pushes that found their
    /// source's shard full and had to block, retry or force a seal — a
    /// tenant whose producers outrun its sealing shows up here before
    /// it shows up as latency.
    pub ingest_waits: u64,
    /// Phases fully completed.
    pub phases_retired: u64,
    /// Events committed to phases (cumulative: includes a restored WAL
    /// tail's replayed events).
    pub events_committed: u64,
    /// Average committed events per second since the session opened,
    /// counting only events committed live in this incarnation (a
    /// restored tenant's replayed backlog is excluded).
    pub events_per_sec: f64,
    /// Full engine counter snapshot (steal/park/wake counters are
    /// pool-global; `injector_depth` is this tenant's lane).
    pub engine: MetricsSnapshot,
}

impl SessionMetrics {
    /// Hand-rolled JSON object (the offline serde shim is a no-op):
    /// the per-tenant row plus the full engine snapshot under
    /// `"engine"`. Session names are escaped as JSON strings.
    pub fn to_json(&self) -> String {
        let name = self
            .name
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        format!(
            "{{\"name\":\"{name}\",\"lane_depth\":{},\"inflight\":{},\"buffered\":{},\
             \"ingest_waits\":{},\"phases_retired\":{},\"events_committed\":{},\
             \"events_per_sec\":{:.2},\"engine\":{}}}",
            self.lane_depth,
            self.inflight,
            self.buffered,
            self.ingest_waits,
            self.phases_retired,
            self.events_committed,
            self.events_per_sec,
            self.engine.to_json()
        )
    }
}

/// One open tenant session: a [`StreamRuntime`] owned by the caller,
/// running on a shared [`SessionPool`].
///
/// Dereferences to [`StreamRuntime`], so pushes, flushes,
/// subscriptions and checkpoints work exactly as on a standalone
/// runtime. [`close`](Session::close) shuts the session down cleanly;
/// dropping without closing simulates a crash (committed WAL rows
/// survive; queued work is discarded).
pub struct Session {
    name: Arc<str>,
    /// `Option` so [`close`](Session::close) can move the runtime out
    /// of a type that has `Drop`. Always `Some` while the session is
    /// alive.
    rt: Option<StreamRuntime>,
    registry: Weak<Registry>,
}

impl Session {
    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seals remaining events, drains every phase, detaches from the
    /// pool and returns the final report (see
    /// [`StreamRuntime::shutdown`]). The session's name is freed only
    /// *after* the runtime has fully quiesced, so a racing
    /// [`SessionPool::open`] of the same name can never see a
    /// half-closed session's durable store.
    pub fn close(mut self) -> Result<crate::runtime::RuntimeReport, RuntimeError> {
        let rt = self.rt.take().expect("session already closed");
        let result = rt.shutdown();
        self.deregister();
        result
    }

    fn deregister(&self) {
        if let Some(registry) = self.registry.upgrade() {
            registry.lock().retain(|e| e.name != self.name);
        }
    }
}

impl std::ops::Deref for Session {
    type Target = StreamRuntime;

    fn deref(&self) -> &StreamRuntime {
        self.rt.as_ref().expect("session already closed")
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // The simulated-crash path: tear the runtime down first —
        // threads stop, queued tasks are invalidated, the WAL writer
        // flushes its committed rows — and only then free the name, so
        // a racing `open` of the same name cannot touch the store
        // while this incarnation is still dying (same ordering as
        // `close`).
        drop(self.rt.take());
        self.deregister();
    }
}
