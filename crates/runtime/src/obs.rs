//! The live metrics plane: renders engine, ingest and per-session
//! counters as Prometheus text exposition behind the std-only
//! `/metrics` endpoint (`ec-obs`).
//!
//! The split of responsibilities: `ec-obs` owns the *format* (builder,
//! validator, TCP endpoint) and knows nothing about this engine;
//! this module owns the *vocabulary* — which `ec_*` series exist and
//! which [`MetricsSnapshot`] fields feed them. A [`MetricsRegistry`]
//! composes any number of providers (a standalone runtime registers
//! one; a session pool registers one per pool plus the per-tenant
//! rows) into one page, re-rendered on every scrape.

use crate::sessions::SessionMetrics;
use ec_core::MetricsSnapshot;
use ec_obs::{MetricsServer, PromText, RenderFn, Route, CONTENT_TYPE_PROM};
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

type Provider = Box<dyn Fn(&mut PromText) + Send + Sync>;

/// Composes metric providers into one `/metrics` page.
///
/// Providers run in registration order on every render, so scrapes
/// always see live numbers; the registry holds no cached values.
#[derive(Default)]
pub struct MetricsRegistry {
    providers: Mutex<Vec<Provider>>,
}

impl MetricsRegistry {
    /// An empty registry, shared between registrars and the server.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// Adds a provider; it is called on every render, after all
    /// previously registered providers.
    pub fn register(&self, provider: impl Fn(&mut PromText) + Send + Sync + 'static) {
        self.providers.lock().push(Box::new(provider));
    }

    /// Renders every provider into one exposition page.
    pub fn render(&self) -> String {
        let mut page = PromText::new();
        for provider in self.providers.lock().iter() {
            provider(&mut page);
        }
        page.render()
    }

    /// Binds `addr` (port 0 for ephemeral) and serves this registry's
    /// rendering at `GET /metrics` until the server is dropped.
    pub fn serve(self: &Arc<Self>, addr: &str) -> io::Result<MetricsServer> {
        self.serve_with(addr, Vec::new())
    }

    /// [`serve`](Self::serve) plus extra routes beside `/metrics`
    /// (e.g. a `/healthz` report).
    pub fn serve_with(
        self: &Arc<Self>,
        addr: &str,
        extra: Vec<Route>,
    ) -> io::Result<MetricsServer> {
        let registry = Arc::clone(self);
        let render: RenderFn = Arc::new(move || registry.render());
        let mut routes: Vec<Route> = vec![
            ("/metrics", CONTENT_TYPE_PROM, Arc::clone(&render)),
            ("/", CONTENT_TYPE_PROM, render),
        ];
        routes.extend(extra);
        MetricsServer::bind_routes(addr, routes)
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("providers", &self.providers.lock().len())
            .finish()
    }
}

/// Renders one runtime's [`MetricsSnapshot`] as the `ec_*` series:
/// engine counters, scheduler and ingest planes, and the four latency
/// summaries. `labels` is appended to every sample (a session pool
/// passes `session="name"`; a standalone runtime passes nothing).
pub fn render_snapshot(page: &mut PromText, labels: &[(&str, &str)], m: &MetricsSnapshot) {
    page.counter(
        "ec_executions_total",
        "Vertex-phase executions.",
        labels,
        m.executions,
    );
    page.counter(
        "ec_silent_executions_total",
        "Executions that emitted nothing.",
        labels,
        m.silent_executions,
    );
    page.counter(
        "ec_messages_total",
        "Messages sent along edges.",
        labels,
        m.messages_sent,
    );
    page.counter(
        "ec_sink_outputs_total",
        "Values delivered by sinks.",
        labels,
        m.sink_outputs,
    );
    page.counter(
        "ec_phases_started_total",
        "Phases admitted by the environment.",
        labels,
        m.phases_started,
    );
    page.counter(
        "ec_phases_completed_total",
        "Phases fully retired.",
        labels,
        m.phases_completed,
    );
    page.gauge(
        "ec_pipeline_depth_max",
        "Peak distinct phases executing at once.",
        labels,
        m.max_concurrent_phases as f64,
    );
    page.counter(
        "ec_steals_total",
        "Successful steals between worker shards.",
        labels,
        m.scheduler.steals,
    );
    page.counter(
        "ec_parks_total",
        "Workers parked after finding no work.",
        labels,
        m.scheduler.parks,
    );
    page.counter(
        "ec_wakes_total",
        "Targeted wakeups of parked workers.",
        labels,
        m.scheduler.wakes,
    );
    page.gauge(
        "ec_injector_depth",
        "Shared-injector depth (this tenant's lane when pooled).",
        labels,
        m.scheduler.injector_depth as f64,
    );
    for (w, depth) in m.scheduler.worker_queue_depths.iter().enumerate() {
        let worker = w.to_string();
        let mut with: Vec<(&str, &str)> = labels.to_vec();
        with.push(("worker", &worker));
        page.gauge(
            "ec_worker_queue_depth",
            "Per-worker run-queue depth.",
            &with,
            *depth as f64,
        );
    }
    for (s, depth) in m.ingest.depths.iter().enumerate() {
        let fallback = s.to_string();
        let source = m.ingest.sources.get(s).map_or(fallback.as_str(), |n| n);
        let mut with: Vec<(&str, &str)> = labels.to_vec();
        with.push(("source", source));
        page.gauge(
            "ec_ingest_depth",
            "Events buffered per source, not yet sealed.",
            &with,
            *depth as f64,
        );
        if let Some(waits) = m.ingest.source_waits.get(s) {
            page.counter(
                "ec_ingest_source_waits_total",
                "Full-buffer contention events per source.",
                &with,
                *waits,
            );
        }
    }
    page.counter(
        "ec_ingest_waits_total",
        "Pushes that found their source's buffer full.",
        labels,
        m.ingest.waits,
    );
    page.counter(
        "ec_seal_batches_total",
        "Epoch seals that committed at least one phase.",
        labels,
        m.ingest.seal_batches,
    );
    page.counter(
        "ec_seal_events_total",
        "Events drained by committing seals.",
        labels,
        m.ingest.seal_events,
    );
    page.latency_summary(
        "ec_phase_seconds",
        "Phase admission-to-retirement latency.",
        labels,
        &m.latency.phase,
    );
    page.latency_summary(
        "ec_exec_seconds",
        "Per-vertex module execution duration.",
        labels,
        &m.latency.exec,
    );
    page.latency_summary(
        "ec_wal_commit_seconds",
        "WAL group-commit duration.",
        labels,
        &m.latency.wal_commit,
    );
    page.latency_summary(
        "ec_ingest_wait_seconds",
        "Producer push-wait on a full ingest buffer.",
        labels,
        &m.latency.ingest_wait,
    );
    for path in &m.latency.e2e {
        let mut with: Vec<(&str, &str)> = labels.to_vec();
        with.push(("source", &path.source));
        with.push(("sink", &path.sink));
        page.latency_summary(
            "ec_e2e_seconds",
            "End-to-end ingest-to-delivery latency (sampled traces).",
            &with,
            &path.hist,
        );
    }
}

/// Renders the durable-store plane as `ec_store_*` series: WAL size
/// and segmentation, commit/retry counters, snapshot cadence (full vs
/// delta), compactions, and the degraded flag the runtime raises when
/// durability is suspended.
pub(crate) fn render_store(
    page: &mut PromText,
    labels: &[(&str, &str)],
    s: &crate::runtime::StoreStatsSnapshot,
) {
    page.counter(
        "ec_store_commits_total",
        "Successful WAL group commits.",
        labels,
        s.commits,
    );
    page.counter(
        "ec_store_retries_total",
        "Store operations retried after a transient failure.",
        labels,
        s.retries,
    );
    page.gauge(
        "ec_store_wal_bytes",
        "Live WAL bytes across all segments.",
        labels,
        s.wal_bytes as f64,
    );
    page.gauge(
        "ec_store_wal_segments",
        "Live WAL segment count.",
        labels,
        s.segments as f64,
    );
    let mut with: Vec<(&str, &str)> = labels.to_vec();
    with.push(("kind", "full"));
    page.counter(
        "ec_store_snapshots_total",
        "Snapshots written, by kind.",
        &with,
        s.snapshots_full,
    );
    let mut with: Vec<(&str, &str)> = labels.to_vec();
    with.push(("kind", "delta"));
    page.counter(
        "ec_store_snapshots_total",
        "Snapshots written, by kind.",
        &with,
        s.snapshots_delta,
    );
    page.counter(
        "ec_store_compactions_total",
        "WAL compactions that dropped at least one segment.",
        labels,
        s.compactions,
    );
    page.gauge(
        "ec_store_degraded",
        "1 once durability was suspended after persistent store failure.",
        labels,
        if s.degraded { 1.0 } else { 0.0 },
    );
}

/// Renders one tenant's [`SessionMetrics`] row as `ec_session_*`
/// series carrying a `session` label, followed by the tenant's full
/// engine snapshot (same `ec_*` families, same label).
pub fn render_session(page: &mut PromText, row: &SessionMetrics) {
    let labels = [("session", row.name.as_str())];
    page.gauge(
        "ec_session_lane_depth",
        "Tasks queued in this tenant's admission lane.",
        &labels,
        row.lane_depth as f64,
    );
    page.gauge(
        "ec_session_inflight",
        "Phases admitted but not yet retired.",
        &labels,
        row.inflight as f64,
    );
    page.gauge(
        "ec_session_buffered",
        "Events buffered in the tenant's ingest queues.",
        &labels,
        row.buffered as f64,
    );
    page.counter(
        "ec_session_phases_retired_total",
        "Phases fully completed by this tenant.",
        &labels,
        row.phases_retired,
    );
    page.counter(
        "ec_session_events_committed_total",
        "Events committed to phases by this tenant.",
        &labels,
        row.events_committed,
    );
    page.gauge(
        "ec_session_events_per_sec",
        "Committed events per second since the session opened.",
        &labels,
        row.events_per_sec,
    );
    page.latency_summary(
        "ec_session_e2e_seconds",
        "End-to-end ingest-to-delivery latency, all paths merged.",
        &labels,
        &row.engine.latency.e2e_merged(),
    );
    render_snapshot(page, &labels, &row.engine);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_obs::validate_exposition;

    #[test]
    fn registry_composes_providers_in_order() {
        let registry = MetricsRegistry::new();
        registry.register(|page| page.counter("ec_a_total", "A.", &[], 1));
        registry.register(|page| page.counter("ec_b_total", "B.", &[], 2));
        let page = registry.render();
        assert!(page.find("ec_a_total").unwrap() < page.find("ec_b_total").unwrap());
        assert_eq!(validate_exposition(&page), Ok(2));
    }

    #[test]
    fn snapshot_rendering_is_valid_exposition() {
        let mut m = MetricsSnapshot {
            executions: 10,
            phases_completed: 4,
            ..Default::default()
        };
        m.scheduler.worker_queue_depths = vec![1, 0];
        m.ingest.depths = vec![3];
        let h = ec_obs::LogHistogram::new();
        h.record(1_000);
        m.latency.exec = h.snapshot();
        let mut page = PromText::new();
        render_snapshot(&mut page, &[], &m);
        let page = page.render();
        let samples = validate_exposition(&page).expect("valid page");
        assert!(samples > 20, "only {samples} samples:\n{page}");
        assert!(page.contains("ec_executions_total 10"));
        assert!(page.contains("ec_worker_queue_depth{worker=\"1\"} 0"));
        assert!(page.contains("ec_exec_seconds_count 1"));
    }

    #[test]
    fn session_rows_share_families_across_tenants() {
        let row = |name: &str| SessionMetrics {
            name: name.to_string(),
            lane_depth: 0,
            inflight: 1,
            buffered: 2,
            ingest_waits: 0,
            phases_retired: 3,
            events_committed: 4,
            events_per_sec: 0.5,
            engine: MetricsSnapshot::default(),
        };
        let mut page = PromText::new();
        render_session(&mut page, &row("acme"));
        render_session(&mut page, &row("globex"));
        let page = page.render();
        validate_exposition(&page).expect("valid page");
        assert_eq!(page.matches("# TYPE ec_session_inflight").count(), 1);
        assert!(page.contains("ec_session_inflight{session=\"acme\"} 1"));
        assert!(page.contains("ec_session_inflight{session=\"globex\"} 1"));
    }
}
