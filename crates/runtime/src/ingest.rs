//! Sharded ingest buffers: the producer-facing front door.
//!
//! Every live source owns one [`SourceShard`] — a finely striped buffer
//! a producer locks *alone*: pushes to different sources never touch a
//! shared lock, and the epoch seal never blocks a push for longer than
//! one `Vec` pointer swap. The discipline mirrors the execution side's
//! `ShardedQueue` (PR 3): striped push, batch drain.
//!
//! The buffer *is* the future epoch column: producers append
//! `Some(value)` in arrival order, and [`drain`](IngestBuffers::drain)
//! swaps the whole vector out in O(1) per source, handing the seal
//! ready-made column storage (recycled through the
//! [`ColumnPool`](ec_events::ColumnPool)). Per-source FIFO order is the
//! shard lock's serialization order; the binning a seal commits is
//! whatever each swap observed — exactly the well-defined-commit
//! guarantee the old global mutex gave, without the global mutex.
//!
//! Sampled causal traces ride the same swap: a push chosen for tracing
//! leaves a [`BinStamp`] beside its bin, and the drain hands the stamp
//! vector out with the bins so the seal can thread ingest timestamps
//! through to delivery. Stamps are metadata — they never change what a
//! seal commits.
//!
//! Backpressure stays per source: a full shard blocks the pusher on the
//! shard's own condvar ([`Backpressure::Block`](crate::Backpressure))
//! or bounces the value back ([`Backpressure::Reject`]
//! (crate::Backpressure)); the seal's drain signals exactly the shards
//! it emptied. Contention is counted per shard so the health plane can
//! blame the specific source wedging its producers.

use ec_events::{BinStamp, ColumnPool, Value};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Duration;

/// A shard's accumulating epoch column plus the trace stamps riding it.
/// One mutex covers both so the drain's swap stays a single atomic cut.
#[derive(Default)]
struct ShardBuf {
    /// Producers append `Some(v)`; the seal swaps the vector out whole.
    bins: Vec<Option<Value>>,
    /// Sampled trace stamps for this buffer's bins (usually empty).
    stamps: Vec<BinStamp>,
}

/// One live source's striped ingest buffer.
struct SourceShard {
    buf: Mutex<ShardBuf>,
    /// Signalled when a drain empties this shard (or shutdown begins).
    space: Condvar,
    /// Cached depth, readable without the shard lock (observability).
    depth: AtomicUsize,
    /// Producer contention events against this shard: a push found it
    /// full and had to block, retry or force a seal.
    waits: AtomicU64,
}

/// All ingest shards plus the cross-shard counters.
pub(crate) struct IngestBuffers {
    shards: Vec<SourceShard>,
    /// Events buffered across all shards (maintained by push/drain;
    /// drives `EpochPolicy::ByCount`).
    total: AtomicUsize,
}

impl IngestBuffers {
    pub(crate) fn new(sources: usize) -> IngestBuffers {
        IngestBuffers {
            shards: (0..sources)
                .map(|_| SourceShard {
                    buf: Mutex::new(ShardBuf::default()),
                    space: Condvar::new(),
                    depth: AtomicUsize::new(0),
                    waits: AtomicU64::new(0),
                })
                .collect(),
            total: AtomicUsize::new(0),
        }
    }

    /// Appends `value` to source `slot`'s buffer if it is below
    /// `capacity`. A `Some(stamp)` marks the event for causal tracing:
    /// `stamp = (trace_id, ingest_nanos)`, recorded against the bin the
    /// value lands in. On success returns the total buffered across all
    /// shards *after* the push; on a full shard the value comes back to
    /// the caller (who decides: block, reject, or force a seal).
    pub(crate) fn try_push(
        &self,
        slot: usize,
        value: Value,
        capacity: usize,
        stamp: Option<(u64, u64)>,
    ) -> Result<usize, Value> {
        let shard = &self.shards[slot];
        let mut buf = shard.buf.lock();
        if buf.bins.len() >= capacity {
            return Err(value);
        }
        if let Some((trace_id, ingest_nanos)) = stamp {
            let bin = buf.bins.len() as u32;
            buf.stamps.push(BinStamp {
                bin,
                trace_id,
                ingest_nanos,
            });
        }
        buf.bins.push(Some(value));
        shard.depth.store(buf.bins.len(), Relaxed);
        // Count under the shard lock: a drain (which takes this lock)
        // can then never subtract an event before its increment landed,
        // so `total` cannot transiently underflow.
        let total = self.total.fetch_add(1, Relaxed) + 1;
        drop(buf);
        Ok(total)
    }

    /// Blocks until source `slot`'s shard has space, `timeout` elapses,
    /// or a drain signals the shard. Returns immediately if space is
    /// already available. The caller loops around [`try_push`]
    /// (Self::try_push) — a racing producer may have refilled the shard.
    pub(crate) fn wait_space(&self, slot: usize, capacity: usize, timeout: Duration) {
        let shard = &self.shards[slot];
        let mut buf = shard.buf.lock();
        if buf.bins.len() < capacity {
            return;
        }
        shard.space.wait_for(&mut buf, timeout);
    }

    /// Counts one producer contention event against source `slot`.
    pub(crate) fn count_wait(&self, slot: usize) {
        self.shards[slot].waits.fetch_add(1, Relaxed);
    }

    /// Swaps every shard's buffer out (O(1) per source), replacing each
    /// with an empty pooled vector, and wakes the pushers blocked on the
    /// drained shards. Returns the per-source columns-in-progress with
    /// their trace stamps, in wiring order; element `s` holds source
    /// `s`'s buffered events in FIFO order.
    ///
    /// All shard locks are held across the swaps, making the drain an
    /// **atomic cut** with respect to every push — exactly the
    /// commit-point guarantee the old global ingest mutex gave. Without
    /// it, a producer pushing to source A (accepted) and then source B
    /// while a drain walks the shards in between could see its *later*
    /// push commit to the *earlier* epoch. Locks are taken in slot
    /// order; producers only ever hold one, so there is no cycle, and
    /// the hold spans `sources` pointer swaps — nanoseconds.
    pub(crate) fn drain(&self, pool: &mut ColumnPool) -> Vec<(Vec<Option<Value>>, Vec<BinStamp>)> {
        let mut fresh: Vec<(Vec<Option<Value>>, Vec<BinStamp>)> = self
            .shards
            .iter()
            .map(|_| (pool.checkout(), Vec::new()))
            .collect();
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.buf.lock()).collect();
        for (buf, fresh) in guards.iter_mut().zip(fresh.iter_mut()) {
            std::mem::swap(&mut buf.bins, &mut fresh.0);
            std::mem::swap(&mut buf.stamps, &mut fresh.1);
        }
        let mut drained_total = 0;
        for (shard, (bins, _)) in self.shards.iter().zip(&fresh) {
            shard.depth.store(0, Relaxed);
            drained_total += bins.len();
        }
        self.total.fetch_sub(drained_total, Relaxed);
        drop(guards);
        for shard in &self.shards {
            shard.space.notify_all();
        }
        fresh
    }

    /// Wakes every blocked pusher (shutdown / poison: they observe the
    /// stop flag and bail out).
    pub(crate) fn notify_all(&self) {
        for shard in &self.shards {
            shard.space.notify_all();
        }
    }

    /// Events buffered for one source (racy; observability only).
    pub(crate) fn depth(&self, slot: usize) -> usize {
        self.shards[slot].depth.load(Relaxed)
    }

    /// Per-source depths (racy; observability only).
    pub(crate) fn depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.depth.load(Relaxed) as u64)
            .collect()
    }

    /// Events buffered across all sources (racy; observability only).
    pub(crate) fn total(&self) -> usize {
        self.total.load(Relaxed)
    }

    /// Producer contention events so far, across all sources.
    pub(crate) fn waits(&self) -> u64 {
        self.shards.iter().map(|s| s.waits.load(Relaxed)).sum()
    }

    /// Per-source producer contention counts (blame attribution).
    pub(crate) fn wait_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.waits.load(Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_preserves_fifo_per_source() {
        let buffers = IngestBuffers::new(2);
        let mut pool = ColumnPool::new();
        for i in 0..5i64 {
            buffers.try_push(0, Value::Int(i), 100, None).unwrap();
        }
        buffers.try_push(1, Value::Int(-1), 100, None).unwrap();
        assert_eq!(buffers.total(), 6);
        assert_eq!(buffers.depth(0), 5);
        assert_eq!(buffers.depths(), vec![5, 1]);

        let drained = buffers.drain(&mut pool);
        assert_eq!(buffers.total(), 0);
        assert_eq!(
            drained[0].0,
            (0..5).map(|i| Some(Value::Int(i))).collect::<Vec<_>>()
        );
        assert_eq!(drained[1].0, vec![Some(Value::Int(-1))]);
        assert!(drained[0].1.is_empty() && drained[1].1.is_empty());
    }

    #[test]
    fn stamps_follow_their_bins_through_the_drain() {
        let buffers = IngestBuffers::new(1);
        let mut pool = ColumnPool::new();
        buffers.try_push(0, Value::Int(10), 100, None).unwrap();
        buffers
            .try_push(0, Value::Int(11), 100, Some((42, 1_000)))
            .unwrap();
        buffers.try_push(0, Value::Int(12), 100, None).unwrap();
        let drained = buffers.drain(&mut pool);
        assert_eq!(drained[0].0.len(), 3);
        assert_eq!(
            drained[0].1,
            vec![BinStamp {
                bin: 1,
                trace_id: 42,
                ingest_nanos: 1_000,
            }]
        );
        // The next epoch starts clean.
        buffers.try_push(0, Value::Int(13), 100, None).unwrap();
        let next = buffers.drain(&mut pool);
        assert!(next[0].1.is_empty());
    }

    #[test]
    fn full_shard_bounces_the_value_back() {
        let buffers = IngestBuffers::new(1);
        buffers.try_push(0, Value::Int(1), 1, None).unwrap();
        let bounced = buffers.try_push(0, Value::Int(2), 1, None).unwrap_err();
        assert_eq!(bounced, Value::Int(2));
        // Wait with space available returns immediately.
        buffers.wait_space(0, 2, Duration::from_millis(1));
        // Contention is attributed to the shard that bounced.
        buffers.count_wait(0);
        assert_eq!(buffers.waits(), 1);
        assert_eq!(buffers.wait_counts(), vec![1]);
    }

    #[test]
    fn drain_wakes_blocked_pushers() {
        let buffers = std::sync::Arc::new(IngestBuffers::new(1));
        buffers.try_push(0, Value::Int(1), 1, None).unwrap();
        let waiter = {
            let buffers = std::sync::Arc::clone(&buffers);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                loop {
                    match buffers.try_push(0, Value::Int(2), 1, None) {
                        Ok(_) => return start.elapsed(),
                        Err(_) => buffers.wait_space(0, 1, Duration::from_secs(5)),
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(60));
        let mut pool = ColumnPool::new();
        let drained = buffers.drain(&mut pool);
        assert_eq!(drained[0].0.len(), 1);
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(40),
            "woke early: {waited:?}"
        );
        assert_eq!(buffers.total(), 1); // the retried push landed
    }
}
