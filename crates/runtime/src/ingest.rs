//! Sharded ingest buffers: the producer-facing front door.
//!
//! Every live source owns one [`SourceShard`] — a finely striped buffer
//! a producer locks *alone*: pushes to different sources never touch a
//! shared lock, and the epoch seal never blocks a push for longer than
//! one `Vec` pointer swap. The discipline mirrors the execution side's
//! `ShardedQueue` (PR 3): striped push, batch drain.
//!
//! The buffer *is* the future epoch column: producers append
//! `Some(value)` in arrival order, and [`drain`](IngestBuffers::drain)
//! swaps the whole vector out in O(1) per source, handing the seal
//! ready-made column storage (recycled through the
//! [`ColumnPool`](ec_events::ColumnPool)). Per-source FIFO order is the
//! shard lock's serialization order; the binning a seal commits is
//! whatever each swap observed — exactly the well-defined-commit
//! guarantee the old global mutex gave, without the global mutex.
//!
//! Backpressure stays per source: a full shard blocks the pusher on the
//! shard's own condvar ([`Backpressure::Block`](crate::Backpressure))
//! or bounces the value back ([`Backpressure::Reject`]
//! (crate::Backpressure)); the seal's drain signals exactly the shards
//! it emptied.

use ec_events::{ColumnPool, Value};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Duration;

/// One live source's striped ingest buffer.
struct SourceShard {
    /// The accumulating epoch column: producers append `Some(v)`; the
    /// seal swaps the vector out whole.
    bins: Mutex<Vec<Option<Value>>>,
    /// Signalled when a drain empties this shard (or shutdown begins).
    space: Condvar,
    /// Cached depth, readable without the shard lock (observability).
    depth: AtomicUsize,
}

/// All ingest shards plus the cross-shard counters.
pub(crate) struct IngestBuffers {
    shards: Vec<SourceShard>,
    /// Events buffered across all shards (maintained by push/drain;
    /// drives `EpochPolicy::ByCount`).
    total: AtomicUsize,
    /// Producer contention events: a push found its shard full and had
    /// to block, retry or force a seal.
    waits: AtomicU64,
}

impl IngestBuffers {
    pub(crate) fn new(sources: usize) -> IngestBuffers {
        IngestBuffers {
            shards: (0..sources)
                .map(|_| SourceShard {
                    bins: Mutex::new(Vec::new()),
                    space: Condvar::new(),
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            total: AtomicUsize::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// Appends `value` to source `slot`'s buffer if it is below
    /// `capacity`. On success returns the total buffered across all
    /// shards *after* the push; on a full shard the value comes back to
    /// the caller (who decides: block, reject, or force a seal).
    pub(crate) fn try_push(
        &self,
        slot: usize,
        value: Value,
        capacity: usize,
    ) -> Result<usize, Value> {
        let shard = &self.shards[slot];
        let mut bins = shard.bins.lock();
        if bins.len() >= capacity {
            return Err(value);
        }
        bins.push(Some(value));
        shard.depth.store(bins.len(), Relaxed);
        // Count under the shard lock: a drain (which takes this lock)
        // can then never subtract an event before its increment landed,
        // so `total` cannot transiently underflow.
        let total = self.total.fetch_add(1, Relaxed) + 1;
        drop(bins);
        Ok(total)
    }

    /// Blocks until source `slot`'s shard has space, `timeout` elapses,
    /// or a drain signals the shard. Returns immediately if space is
    /// already available. The caller loops around [`try_push`]
    /// (Self::try_push) — a racing producer may have refilled the shard.
    pub(crate) fn wait_space(&self, slot: usize, capacity: usize, timeout: Duration) {
        let shard = &self.shards[slot];
        let mut bins = shard.bins.lock();
        if bins.len() < capacity {
            return;
        }
        shard.space.wait_for(&mut bins, timeout);
    }

    /// Counts one producer contention event.
    pub(crate) fn count_wait(&self) {
        self.waits.fetch_add(1, Relaxed);
    }

    /// Swaps every shard's buffer out (O(1) per source), replacing each
    /// with an empty pooled vector, and wakes the pushers blocked on the
    /// drained shards. Returns the per-source columns-in-progress, in
    /// wiring order; element `s` holds source `s`'s buffered events in
    /// FIFO order.
    ///
    /// All shard locks are held across the swaps, making the drain an
    /// **atomic cut** with respect to every push — exactly the
    /// commit-point guarantee the old global ingest mutex gave. Without
    /// it, a producer pushing to source A (accepted) and then source B
    /// while a drain walks the shards in between could see its *later*
    /// push commit to the *earlier* epoch. Locks are taken in slot
    /// order; producers only ever hold one, so there is no cycle, and
    /// the hold spans `sources` pointer swaps — nanoseconds.
    pub(crate) fn drain(&self, pool: &mut ColumnPool) -> Vec<Vec<Option<Value>>> {
        let mut fresh: Vec<Vec<Option<Value>>> =
            self.shards.iter().map(|_| pool.checkout()).collect();
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.bins.lock()).collect();
        for (bins, fresh) in guards.iter_mut().zip(fresh.iter_mut()) {
            std::mem::swap(&mut **bins, fresh);
        }
        let mut drained_total = 0;
        for (shard, fresh) in self.shards.iter().zip(&fresh) {
            shard.depth.store(0, Relaxed);
            drained_total += fresh.len();
        }
        self.total.fetch_sub(drained_total, Relaxed);
        drop(guards);
        for shard in &self.shards {
            shard.space.notify_all();
        }
        fresh
    }

    /// Wakes every blocked pusher (shutdown / poison: they observe the
    /// stop flag and bail out).
    pub(crate) fn notify_all(&self) {
        for shard in &self.shards {
            shard.space.notify_all();
        }
    }

    /// Events buffered for one source (racy; observability only).
    pub(crate) fn depth(&self, slot: usize) -> usize {
        self.shards[slot].depth.load(Relaxed)
    }

    /// Per-source depths (racy; observability only).
    pub(crate) fn depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.depth.load(Relaxed) as u64)
            .collect()
    }

    /// Events buffered across all sources (racy; observability only).
    pub(crate) fn total(&self) -> usize {
        self.total.load(Relaxed)
    }

    /// Producer contention events so far.
    pub(crate) fn waits(&self) -> u64 {
        self.waits.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_preserves_fifo_per_source() {
        let buffers = IngestBuffers::new(2);
        let mut pool = ColumnPool::new();
        for i in 0..5i64 {
            buffers.try_push(0, Value::Int(i), 100).unwrap();
        }
        buffers.try_push(1, Value::Int(-1), 100).unwrap();
        assert_eq!(buffers.total(), 6);
        assert_eq!(buffers.depth(0), 5);
        assert_eq!(buffers.depths(), vec![5, 1]);

        let drained = buffers.drain(&mut pool);
        assert_eq!(buffers.total(), 0);
        assert_eq!(
            drained[0],
            (0..5).map(|i| Some(Value::Int(i))).collect::<Vec<_>>()
        );
        assert_eq!(drained[1], vec![Some(Value::Int(-1))]);
    }

    #[test]
    fn full_shard_bounces_the_value_back() {
        let buffers = IngestBuffers::new(1);
        buffers.try_push(0, Value::Int(1), 1).unwrap();
        let bounced = buffers.try_push(0, Value::Int(2), 1).unwrap_err();
        assert_eq!(bounced, Value::Int(2));
        // Wait with space available returns immediately.
        buffers.wait_space(0, 2, Duration::from_millis(1));
    }

    #[test]
    fn drain_wakes_blocked_pushers() {
        let buffers = std::sync::Arc::new(IngestBuffers::new(1));
        buffers.try_push(0, Value::Int(1), 1).unwrap();
        let waiter = {
            let buffers = std::sync::Arc::clone(&buffers);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                loop {
                    match buffers.try_push(0, Value::Int(2), 1) {
                        Ok(_) => return start.elapsed(),
                        Err(_) => buffers.wait_space(0, 1, Duration::from_secs(5)),
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(60));
        let mut pool = ColumnPool::new();
        let drained = buffers.drain(&mut pool);
        assert_eq!(drained[0].len(), 1);
        let waited = waiter.join().unwrap();
        assert!(
            waited >= Duration::from_millis(40),
            "woke early: {waited:?}"
        );
        assert_eq!(buffers.total(), 1); // the retried push landed
    }
}
