//! # `ec serve` — the TCP front end
//!
//! Nothing outside the process could reach the runtime before this
//! module: traffic entered via stdin or in-process callers only. A
//! [`WireServer`] puts a socket in front of a [`SessionPool`]: one
//! long-running listener serving many tenants, speaking the
//! length-prefixed, CRC-framed binary protocol of [`wire`].
//!
//! ## Connection model
//!
//! Every connection opens with the versioned preamble and a
//! [`Hello`](wire::Frame::Hello) that authenticates it to one tenant
//! (token + tenant name) as either a **producer** or a **subscriber**:
//!
//! * Producer connections push [`PushBatch`](wire::Frame::PushBatch)
//!   frames — wire-level batching amortizes syscalls — that land on
//!   the tenant's per-source striped ingest buffers in FIFO order.
//!   Each fully-buffered batch is acknowledged with a
//!   [`PushAck`](wire::Frame::PushAck); a producer that disconnects
//!   mid-epoch therefore commits a clean FIFO prefix of its
//!   acknowledged pushes (a torn frame is discarded whole, never
//!   half-applied). When a source's buffer fills under
//!   [`Backpressure::Reject`](crate::Backpressure::Reject) the server
//!   sends an explicit [`FlowControl`](wire::Frame::FlowControl)
//!   `Block` frame — not a silent TCP stall — keeps the pending event,
//!   retries it, and sends `Open` when it lands.
//!   [`Seal`](wire::Frame::Seal) is the remote
//!   [`flush`](crate::StreamRuntime::flush).
//! * Subscriber connections send
//!   [`SubscribeAlarms`](wire::Frame::SubscribeAlarms) once and then
//!   stream [`AlarmBatch`](wire::Frame::AlarmBatch) frames: retired
//!   sink emissions in serial (phase, vertex) order — exactly the
//!   sequential oracle's output order. Each subscriber owns a bounded
//!   buffer fed by the tenant's delivery loop; a reader too slow to
//!   drain it is disconnected (with an [`Error`](wire::Frame::Error)
//!   frame) rather than allowed to wedge retirement.
//!
//! Tenancy, fairness, durability, and observability are all the
//! session layer's: tenants keep their weighted lanes, per-tenant
//! durable stores, and `/metrics` + `/healthz` rows
//! ([`WireServerBuilder::metrics_addr`] binds the pool's endpoint with
//! the wire transport's per-connection series appended).

pub mod wire;

mod client;

pub use client::WireClient;
pub use wire::{FlowState, Frame, Role, WireAlarm, WireError};

use crate::error::PushError;
use crate::runtime::{RuntimeReport, SourceHandle, StreamRuntime};
use crate::sessions::{Session, SessionPool};
use crate::RuntimeError;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// How long a producer retry or subscriber drain sleeps between
/// checks; bounds shutdown latency.
const POLL: Duration = Duration::from_millis(1);

/// Counters of the wire transport, rendered onto the pool's `/metrics`
/// page as `ec_wire_*` series.
#[derive(Debug, Default)]
struct WireStats {
    connections_total: AtomicU64,
    producers_open: AtomicU64,
    subscribers_open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    events_in: AtomicU64,
    alarms_out: AtomicU64,
    flow_blocks: AtomicU64,
    refused: AtomicU64,
}

/// A point-in-time copy of the wire transport counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStatsSnapshot {
    /// Connections accepted since bind (any outcome).
    pub connections_total: u64,
    /// Producer connections currently authenticated.
    pub producers_open: u64,
    /// Subscriber connections currently authenticated.
    pub subscribers_open: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Events accepted into striped ingest buffers.
    pub events_in: u64,
    /// Alarms streamed to subscribers.
    pub alarms_out: u64,
    /// `FlowControl(Block)` frames sent (backpressure episodes).
    pub flow_blocks: u64,
    /// Hellos refused (bad token / unknown tenant / bad preamble).
    pub refused: u64,
}

impl WireStats {
    fn snapshot(&self) -> WireStatsSnapshot {
        WireStatsSnapshot {
            connections_total: self.connections_total.load(Relaxed),
            producers_open: self.producers_open.load(Relaxed),
            subscribers_open: self.subscribers_open.load(Relaxed),
            frames_in: self.frames_in.load(Relaxed),
            frames_out: self.frames_out.load(Relaxed),
            events_in: self.events_in.load(Relaxed),
            alarms_out: self.alarms_out.load(Relaxed),
            flow_blocks: self.flow_blocks.load(Relaxed),
            refused: self.refused.load(Relaxed),
        }
    }

    fn render(&self, page: &mut ec_obs::PromText) {
        let s = self.snapshot();
        page.counter(
            "ec_wire_connections_total",
            "Wire connections accepted since bind",
            &[],
            s.connections_total,
        );
        page.gauge(
            "ec_wire_connections_open",
            "Authenticated wire connections by role",
            &[("role", "producer")],
            s.producers_open as f64,
        );
        page.gauge(
            "ec_wire_connections_open",
            "Authenticated wire connections by role",
            &[("role", "subscriber")],
            s.subscribers_open as f64,
        );
        page.counter(
            "ec_wire_frames_total",
            "Wire frames by direction",
            &[("dir", "in")],
            s.frames_in,
        );
        page.counter(
            "ec_wire_frames_total",
            "Wire frames by direction",
            &[("dir", "out")],
            s.frames_out,
        );
        page.counter(
            "ec_wire_events_total",
            "Events accepted into striped ingest buffers over the wire",
            &[],
            s.events_in,
        );
        page.counter(
            "ec_wire_alarms_total",
            "Retired-phase alarms streamed to subscribers",
            &[],
            s.alarms_out,
        );
        page.counter(
            "ec_wire_flow_blocks_total",
            "FlowControl(Block) frames sent (backpressure episodes)",
            &[],
            s.flow_blocks,
        );
        page.counter(
            "ec_wire_refused_total",
            "Hellos refused (bad token, unknown tenant, bad preamble)",
            &[],
            s.refused,
        );
    }
}

/// Outcome of one subscriber drain attempt.
enum Drained {
    /// Alarms, oldest first (possibly after a short wait).
    Batch(Vec<WireAlarm>),
    /// Nothing arrived within the timeout.
    Empty,
    /// The slot overflowed: the reader was too slow.
    Overflowed,
}

/// Per-tenant fan-out from the runtime's serial delivery loop to any
/// number of bounded subscriber slots. `publish` runs on the delivery
/// thread and never blocks: a full slot is marked overflowed (its
/// connection is then dropped) instead of wedging retirement.
struct Hub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

#[derive(Default)]
struct HubInner {
    slots: Vec<Slot>,
    next: u64,
}

struct Slot {
    id: u64,
    cap: usize,
    queue: VecDeque<WireAlarm>,
    overflowed: bool,
}

impl Hub {
    fn new() -> Arc<Hub> {
        Arc::new(Hub {
            inner: Mutex::new(HubInner::default()),
            cv: Condvar::new(),
        })
    }

    fn publish(&self, alarm: &WireAlarm) {
        let mut inner = self.inner.lock();
        for slot in &mut inner.slots {
            if slot.overflowed {
                continue;
            }
            if slot.queue.len() >= slot.cap {
                slot.overflowed = true;
                slot.queue.clear();
            } else {
                slot.queue.push_back(alarm.clone());
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    fn register(&self, cap: usize) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next;
        inner.next += 1;
        inner.slots.push(Slot {
            id,
            cap: cap.max(1),
            queue: VecDeque::new(),
            overflowed: false,
        });
        id
    }

    fn unregister(&self, id: u64) {
        self.inner.lock().slots.retain(|s| s.id != id);
    }

    fn drain(&self, id: u64, max: usize, timeout: Duration) -> Drained {
        let mut inner = self.inner.lock();
        for waited in [false, true] {
            let Some(slot) = inner.slots.iter_mut().find(|s| s.id == id) else {
                return Drained::Empty;
            };
            if slot.overflowed {
                return Drained::Overflowed;
            }
            if !slot.queue.is_empty() {
                let n = slot.queue.len().min(max);
                return Drained::Batch(slot.queue.drain(..n).collect());
            }
            if waited {
                break;
            }
            self.cv.wait_for(&mut inner, timeout);
        }
        Drained::Empty
    }
}

/// One served tenant: its session plus the wiring the handlers need.
struct Tenant {
    name: String,
    session: Session,
    sources: Vec<String>,
    handles: Vec<SourceHandle>,
    hub: Arc<Hub>,
}

struct ServerCtx {
    tenants: HashMap<String, Arc<Tenant>>,
    /// Tenant names in opening order (shutdown closes in this order).
    order: Vec<String>,
    token: String,
    stop: AtomicBool,
    local_addr: SocketAddr,
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: WireStats,
    pool: SessionPool,
    subscriber_buffer: usize,
    alarm_batch: usize,
}

impl ServerCtx {
    /// Asks the accept loop to exit: set the flag, then poke the
    /// listener with a throwaway connection so `accept` returns.
    fn request_stop(&self) {
        self.stop.store(true, Relaxed);
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// Configuration for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireServerBuilder {
    token: String,
    metrics_addr: Option<String>,
    subscriber_buffer: usize,
    alarm_batch: usize,
}

impl Default for WireServerBuilder {
    fn default() -> WireServerBuilder {
        WireServerBuilder {
            token: String::new(),
            metrics_addr: None,
            subscriber_buffer: 1024,
            alarm_batch: 256,
        }
    }
}

impl WireServerBuilder {
    /// Requires every `Hello` to carry this token (default: open, any
    /// token accepted).
    pub fn token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Also binds the pool's `/metrics` + `/healthz` endpoint at
    /// `addr` (port 0 picks a free one), with the wire transport's
    /// `ec_wire_*` series appended to every scrape.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Alarms buffered per subscriber before it is declared too slow
    /// and disconnected (default 1024, minimum 1).
    pub fn subscriber_buffer(mut self, n: usize) -> Self {
        self.subscriber_buffer = n.max(1);
        self
    }

    /// Maximum alarms per `AlarmBatch` frame (default 256).
    pub fn alarm_batch(mut self, n: usize) -> Self {
        self.alarm_batch = n.max(1);
        self
    }

    /// Binds the wire listener at `addr` (port 0 picks a free one) and
    /// starts serving `sessions` — tenants already opened on `pool`.
    /// The server takes ownership of both; [`WireServer::shutdown`]
    /// closes them cleanly.
    pub fn bind(
        self,
        addr: &str,
        pool: SessionPool,
        sessions: Vec<Session>,
    ) -> Result<WireServer, RuntimeError> {
        if sessions.is_empty() {
            return Err(RuntimeError::Config(
                "a wire server needs at least one tenant session".into(),
            ));
        }
        let mut tenants = HashMap::new();
        let mut order = Vec::new();
        for session in sessions {
            let name = session.name().to_string();
            let sources = session.live_source_names();
            let handles = sources
                .iter()
                .map(|s| session.handle_by_name(s))
                .collect::<Result<Vec<_>, _>>()?;
            let hub = Hub::new();
            let pub_hub = Arc::clone(&hub);
            session.subscribe(move |e| {
                pub_hub.publish(&WireAlarm {
                    phase: e.phase,
                    sink: e.name.to_string(),
                    value: e.value.clone(),
                });
            });
            order.push(name.clone());
            tenants.insert(
                name.clone(),
                Arc::new(Tenant {
                    name,
                    session,
                    sources,
                    handles,
                    hub,
                }),
            );
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| RuntimeError::Config(format!("wire endpoint {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RuntimeError::Config(format!("wire endpoint {addr}: {e}")))?;
        let ctx = Arc::new(ServerCtx {
            tenants,
            order,
            token: self.token,
            stop: AtomicBool::new(false),
            local_addr,
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            stats: WireStats::default(),
            pool,
            subscriber_buffer: self.subscriber_buffer,
            alarm_batch: self.alarm_batch,
        });
        let metrics_addr = match &self.metrics_addr {
            Some(addr) => {
                let stats_ctx = Arc::clone(&ctx);
                Some(
                    ctx.pool
                        .serve_metrics_with(addr, move |page| stats_ctx.stats.render(page))?,
                )
            }
            None => None,
        };
        let accept_ctx = Arc::clone(&ctx);
        let listener_thread = std::thread::Builder::new()
            .name("ec-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx))
            .map_err(|e| RuntimeError::Config(format!("spawn accept loop: {e}")))?;
        Ok(WireServer {
            ctx: Some(ctx),
            listener_thread: Some(listener_thread),
            local_addr,
            metrics_addr,
        })
    }
}

/// A live TCP front end over a [`SessionPool`]. See the module docs
/// for the connection model.
///
/// Dropping the server without calling [`shutdown`](Self::shutdown)
/// stops the listener and *drops* the tenant sessions — the simulated
/// crash of [`Session`]'s drop semantics. Durable tenants restore on
/// the next bind.
pub struct WireServer {
    ctx: Option<Arc<ServerCtx>>,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

/// Read-only view of one served tenant; derefs to its
/// [`StreamRuntime`] for observation (`metrics`, `script`,
/// `wait_idle`, …).
pub struct ServedTenant {
    inner: Arc<Tenant>,
}

impl std::ops::Deref for ServedTenant {
    type Target = StreamRuntime;

    fn deref(&self) -> &StreamRuntime {
        &self.inner.session
    }
}

impl WireServer {
    /// A fresh configuration.
    pub fn builder() -> WireServerBuilder {
        WireServerBuilder::default()
    }

    /// The bound wire address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound `/metrics` + `/healthz` address, if configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Tenant names, in opening order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.ctx.as_ref().map_or_else(Vec::new, |c| c.order.clone())
    }

    /// Observation handle on one tenant's runtime.
    pub fn tenant(&self, name: &str) -> Option<ServedTenant> {
        let ctx = self.ctx.as_ref()?;
        ctx.tenants.get(name).map(|t| ServedTenant {
            inner: Arc::clone(t),
        })
    }

    /// Wire transport counters.
    pub fn stats(&self) -> WireStatsSnapshot {
        self.ctx
            .as_ref()
            .map(|c| c.stats.snapshot())
            .unwrap_or_default()
    }

    /// True once a shutdown was requested — by [`shutdown`](Self::shutdown)
    /// or by a client's [`Shutdown`](wire::Frame::Shutdown) frame. The
    /// owner should then call [`shutdown`](Self::shutdown).
    pub fn stop_requested(&self) -> bool {
        self.ctx.as_ref().is_some_and(|c| c.stop.load(Relaxed))
    }

    /// Stops accepting, disconnects every client, joins the handler
    /// threads, closes every tenant session cleanly (in opening
    /// order), and shuts the pool down. Returns one report per tenant.
    ///
    /// A tenant still held as a [`ServedTenant`] elsewhere cannot be
    /// closed cleanly; it is crash-dropped (durable tenants restore)
    /// and reported as an error row.
    pub fn shutdown(mut self) -> Vec<(String, Result<RuntimeReport, RuntimeError>)> {
        let ctx = match self.teardown() {
            Some(ctx) => ctx,
            None => return Vec::new(),
        };
        let mut ctx = match Arc::try_unwrap(ctx) {
            Ok(ctx) => ctx,
            Err(_) => return Vec::new(), // a leaked handle keeps everything alive
        };
        let mut reports = Vec::new();
        for name in std::mem::take(&mut ctx.order) {
            let Some(tenant) = ctx.tenants.remove(&name) else {
                continue;
            };
            match Arc::try_unwrap(tenant) {
                Ok(t) => reports.push((name, t.session.close())),
                Err(_held) => reports.push((
                    name.clone(),
                    Err(RuntimeError::Config(format!(
                        "tenant {name:?} still observed; crash-dropped instead of closed"
                    ))),
                )),
            }
        }
        ctx.pool.shutdown();
        reports
    }

    /// Stops the listener and connection threads and returns the ctx;
    /// shared by `shutdown` and `Drop`.
    fn teardown(&mut self) -> Option<Arc<ServerCtx>> {
        let ctx = self.ctx.take()?;
        ctx.request_stop();
        for conn in ctx.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        let handlers: Vec<_> = ctx.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        Some(ctx)
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if ctx.stop.load(Relaxed) {
                    return;
                }
                continue;
            }
        };
        if ctx.stop.load(Relaxed) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            ctx.conns.lock().push(clone);
        }
        let conn_ctx = Arc::clone(&ctx);
        let spawned = std::thread::Builder::new()
            .name("ec-wire-conn".into())
            .spawn(move || handle_conn(conn_ctx, stream));
        if let Ok(h) = spawned {
            ctx.handlers.lock().push(h);
        }
    }
}

/// Decrements an open-connection gauge on scope exit.
struct OpenGuard<'a>(&'a AtomicU64);

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

/// Sends one frame, counting it; false means the connection is gone.
fn send(ctx: &ServerCtx, w: &mut impl Write, frame: &Frame) -> bool {
    match wire::write_frame(w, frame) {
        Ok(()) => {
            ctx.stats.frames_out.fetch_add(1, Relaxed);
            true
        }
        Err(_) => false,
    }
}

fn refuse(ctx: &ServerCtx, w: &mut impl Write, reason: String) {
    ctx.stats.refused.fetch_add(1, Relaxed);
    send(ctx, w, &Frame::Error { reason });
}

fn handle_conn(ctx: Arc<ServerCtx>, stream: TcpStream) {
    ctx.stats.connections_total.fetch_add(1, Relaxed);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Preamble exchange: validate the client's, then send ours so the
    // client can parse the reply even when we refuse.
    let preamble = wire::read_preamble(&mut reader);
    if wire::write_preamble(&mut writer).is_err() || writer.flush().is_err() {
        return;
    }
    if let Err(e) = preamble {
        refuse(&ctx, &mut writer, e.to_string());
        return;
    }
    let hello = match wire::read_frame(&mut reader) {
        Ok(f) => f,
        Err(e) => {
            refuse(&ctx, &mut writer, format!("bad first frame: {e}"));
            return;
        }
    };
    ctx.stats.frames_in.fetch_add(1, Relaxed);
    let Frame::Hello {
        token,
        tenant,
        role,
    } = hello
    else {
        refuse(&ctx, &mut writer, "first frame must be Hello".into());
        return;
    };
    if !ctx.token.is_empty() && token != ctx.token {
        refuse(&ctx, &mut writer, "bad token".into());
        return;
    }
    let Some(t) = ctx.tenants.get(&tenant).map(Arc::clone) else {
        refuse(&ctx, &mut writer, format!("unknown tenant {tenant:?}"));
        return;
    };
    if !send(
        &ctx,
        &mut writer,
        &Frame::HelloOk {
            tenant: t.name.clone(),
            sources: t.sources.clone(),
        },
    ) {
        return;
    }
    match role {
        Role::Producer => {
            ctx.stats.producers_open.fetch_add(1, Relaxed);
            let _open = OpenGuard(&ctx.stats.producers_open);
            producer_loop(&ctx, &t, &mut reader, &mut writer);
        }
        Role::Subscriber => {
            ctx.stats.subscribers_open.fetch_add(1, Relaxed);
            let _open = OpenGuard(&ctx.stats.subscribers_open);
            subscriber_loop(&ctx, &t, &mut reader, &mut writer);
        }
    }
}

fn producer_loop(
    ctx: &ServerCtx,
    t: &Tenant,
    reader: &mut impl std::io::Read,
    writer: &mut impl Write,
) {
    loop {
        let frame = match wire::read_frame(reader) {
            Ok(f) => f,
            Err(e) => {
                // A torn/corrupt frame is discarded whole: everything
                // pushed so far stays (the acknowledged FIFO prefix),
                // nothing from the bad frame enters a buffer.
                if !e.is_disconnect() {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: e.to_string(),
                        },
                    );
                }
                return;
            }
        };
        ctx.stats.frames_in.fetch_add(1, Relaxed);
        match frame {
            Frame::PushBatch { seq, source, bins } => {
                let Some(handle) = t.handles.get(source as usize) else {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: format!(
                                "unknown source index {source} (tenant has {})",
                                t.handles.len()
                            ),
                        },
                    );
                    return;
                };
                let mut accepted = 0u32;
                for bin in bins {
                    let Some(v) = bin else { continue };
                    if !push_one(ctx, writer, handle, source, v) {
                        return;
                    }
                    accepted += 1;
                }
                ctx.stats.events_in.fetch_add(accepted as u64, Relaxed);
                if !send(ctx, writer, &Frame::PushAck { seq, accepted }) {
                    return;
                }
            }
            Frame::Seal => match t.session.flush() {
                Ok(phases) => {
                    if !send(ctx, writer, &Frame::SealOk { phases }) {
                        return;
                    }
                }
                Err(e) => {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: e.to_string(),
                        },
                    );
                    return;
                }
            },
            Frame::MetricsRequest => {
                let json = ctx
                    .pool
                    .metrics()
                    .iter()
                    .find(|r| r.name == t.name)
                    .map(|r| r.to_json())
                    .unwrap_or_else(|| "{}".into());
                if !send(ctx, writer, &Frame::MetricsReply { json }) {
                    return;
                }
            }
            Frame::Shutdown => {
                ctx.request_stop();
                send(ctx, writer, &Frame::ShutdownOk);
                return;
            }
            _ => {
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: "unexpected frame on a producer connection".into(),
                    },
                );
                return;
            }
        }
    }
}

/// Pushes one event, surfacing a full buffer as `FlowControl(Block)`
/// and retrying until it lands (then `FlowControl(Open)`). False means
/// the connection or tenant is gone.
fn push_one(
    ctx: &ServerCtx,
    writer: &mut impl Write,
    handle: &SourceHandle,
    source: u32,
    value: ec_events::Value,
) -> bool {
    let mut blocked = false;
    loop {
        match handle.push(value.clone()) {
            Ok(()) => {
                if blocked
                    && !send(
                        ctx,
                        writer,
                        &Frame::FlowControl {
                            source,
                            state: FlowState::Open,
                        },
                    )
                {
                    return false;
                }
                return true;
            }
            Err(PushError::Full) => {
                if !blocked {
                    blocked = true;
                    ctx.stats.flow_blocks.fetch_add(1, Relaxed);
                    if !send(
                        ctx,
                        writer,
                        &Frame::FlowControl {
                            source,
                            state: FlowState::Block,
                        },
                    ) {
                        return false;
                    }
                }
                if ctx.stop.load(Relaxed) {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: "server shutting down".into(),
                        },
                    );
                    return false;
                }
                std::thread::sleep(POLL);
            }
            Err(PushError::Closed) => {
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: "tenant closed".into(),
                    },
                );
                return false;
            }
        }
    }
}

fn subscriber_loop(
    ctx: &ServerCtx,
    t: &Tenant,
    reader: &mut impl std::io::Read,
    writer: &mut impl Write,
) {
    match wire::read_frame(reader) {
        Ok(Frame::SubscribeAlarms) => {
            ctx.stats.frames_in.fetch_add(1, Relaxed);
        }
        Ok(_) => {
            ctx.stats.frames_in.fetch_add(1, Relaxed);
            send(
                ctx,
                writer,
                &Frame::Error {
                    reason: "a subscriber must send SubscribeAlarms first".into(),
                },
            );
            return;
        }
        Err(_) => return,
    }
    let id = t.hub.register(ctx.subscriber_buffer);
    // Acknowledge only once the slot exists: after SubscribeOk, every
    // retired alarm is either delivered or this subscriber is
    // disconnected — no silent registration gap.
    if !send(ctx, writer, &Frame::SubscribeOk) {
        t.hub.unregister(id);
        return;
    }
    loop {
        if ctx.stop.load(Relaxed) {
            break;
        }
        match t.hub.drain(id, ctx.alarm_batch, Duration::from_millis(50)) {
            Drained::Batch(alarms) => {
                ctx.stats.alarms_out.fetch_add(alarms.len() as u64, Relaxed);
                if !send(ctx, writer, &Frame::AlarmBatch { alarms }) {
                    break;
                }
            }
            Drained::Empty => continue,
            Drained::Overflowed => {
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: format!(
                            "subscriber buffer overflowed ({} alarms): reader too slow",
                            ctx.subscriber_buffer
                        ),
                    },
                );
                break;
            }
        }
    }
    t.hub.unregister(id);
}
