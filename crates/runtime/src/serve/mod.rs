//! # `ec serve` — the TCP front end
//!
//! Nothing outside the process could reach the runtime before this
//! module: traffic entered via stdin or in-process callers only. A
//! [`WireServer`] puts a socket in front of a [`SessionPool`]: one
//! long-running listener serving many tenants, speaking the
//! length-prefixed, CRC-framed binary protocol of [`wire`]. Every
//! socket is reached through the injectable [`net`] transport plane
//! ([`NetIo`]) — production uses [`RealNet`], the chaos matrix routes
//! the same server and clients through a seeded [`FaultNet`].
//!
//! ## Connection model
//!
//! Every connection opens with the versioned preamble and a
//! [`Hello`](wire::Frame::Hello) (or, for resumable producers, a
//! [`HelloResume`](wire::Frame::HelloResume)) that authenticates it to
//! one tenant (token + tenant name) as either a **producer** or a
//! **subscriber**:
//!
//! * Producer connections push [`PushBatch`](wire::Frame::PushBatch)
//!   frames — wire-level batching amortizes syscalls — that land on
//!   the tenant's per-source striped ingest buffers in FIFO order.
//!   Each fully-buffered batch is acknowledged with a
//!   [`PushAck`](wire::Frame::PushAck); a producer that disconnects
//!   mid-epoch therefore commits a clean FIFO prefix of its
//!   acknowledged pushes (a torn frame is discarded whole, never
//!   half-applied). When a source's buffer fills under
//!   [`Backpressure::Reject`](crate::Backpressure::Reject) the server
//!   sends an explicit [`FlowControl`](wire::Frame::FlowControl)
//!   `Block` frame — not a silent TCP stall — keeps the pending event,
//!   retries it, and sends `Open` when it lands.
//!   [`Seal`](wire::Frame::Seal) is the remote
//!   [`flush`](crate::StreamRuntime::flush).
//! * Subscriber connections send
//!   [`SubscribeAlarms`](wire::Frame::SubscribeAlarms) once and then
//!   stream [`AlarmBatch`](wire::Frame::AlarmBatch) frames: retired
//!   sink emissions in serial (phase, vertex) order — exactly the
//!   sequential oracle's output order. Each subscriber owns a bounded
//!   buffer fed by the tenant's delivery loop; a reader too slow to
//!   drain it is disconnected (with an [`Error`](wire::Frame::Error)
//!   frame) rather than allowed to wedge retirement.
//!
//! ## Robustness
//!
//! * **Resumable sessions.** A producer that authenticates with
//!   `HelloResume` names a session id; the server keeps a bounded
//!   per-(session, source) window of recently acked batch sequence
//!   numbers. A reconnecting client replays its unacked suffix and
//!   already-applied batches are re-acked from the window instead of
//!   re-applied — every acked event commits exactly once, and
//!   concurrent connections on one source are safe (same-session
//!   batches serialize on the window lock).
//! * **Liveness.** Connections carry read/write deadlines. An idle
//!   producer is pinged every ping interval; a peer silent past the
//!   idle deadline is reaped — a half-open socket cannot wedge
//!   retirement. The server also pings while a producer is
//!   flow-blocked, so the client's own deadline sees a live peer.
//! * **Graceful drain.** [`WireServer::drain`] refuses new `Hello`s,
//!   lets in-flight frames finish, flushes every acked prefix, lets
//!   subscribers catch up, sends [`Goodbye`](wire::Frame::Goodbye)
//!   both ways, then shuts down.
//!
//! Tenancy, fairness, durability, and observability are all the
//! session layer's: tenants keep their weighted lanes, per-tenant
//! durable stores, and `/metrics` + `/healthz` rows
//! ([`WireServerBuilder::metrics_addr`] binds the pool's endpoint with
//! the wire transport's per-connection series appended and the drain
//! state surfaced on the health plane).

pub mod net;
pub mod wire;

mod client;

pub use client::{RetryPolicy, WireClient, WireClientBuilder};
pub use net::{real_net, FaultNet, NetConn, NetFault, NetFaultPlan, NetIo, NetListener, RealNet};
pub use wire::{FlowState, Frame, Role, WireAlarm, WireError};

use crate::error::PushError;
use crate::runtime::{RuntimeReport, SourceHandle, StreamRuntime};
use crate::sessions::{Session, SessionPool};
use crate::RuntimeError;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a producer retry or subscriber drain sleeps between
/// checks; bounds shutdown latency.
const POLL: Duration = Duration::from_millis(1);

/// Counters of the wire transport, rendered onto the pool's `/metrics`
/// page as `ec_wire_*` series.
#[derive(Debug, Default)]
struct WireStats {
    connections_total: AtomicU64,
    producers_open: AtomicU64,
    subscribers_open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    events_in: AtomicU64,
    alarms_out: AtomicU64,
    flow_blocks: AtomicU64,
    refused: AtomicU64,
    reconnects: AtomicU64,
    dedup_hits: AtomicU64,
    pings: AtomicU64,
    reaped: AtomicU64,
    clean_closes: AtomicU64,
    crash_closes: AtomicU64,
}

/// A point-in-time copy of the wire transport counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStatsSnapshot {
    /// Connections accepted since bind (any outcome).
    pub connections_total: u64,
    /// Producer connections currently authenticated.
    pub producers_open: u64,
    /// Subscriber connections currently authenticated.
    pub subscribers_open: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Events accepted into striped ingest buffers.
    pub events_in: u64,
    /// Alarms streamed to subscribers.
    pub alarms_out: u64,
    /// `FlowControl(Block)` frames sent (backpressure episodes).
    pub flow_blocks: u64,
    /// Hellos refused (bad token / unknown tenant / bad preamble /
    /// draining).
    pub refused: u64,
    /// `HelloResume`s that attached to an already-known session — each
    /// one is a producer reconnect.
    pub reconnects: u64,
    /// Batches re-acked from a session's resume window instead of
    /// re-applied (duplicate delivery absorbed).
    pub dedup_hits: u64,
    /// `Ping` frames sent to clients (idle probes and flow-blocked
    /// heartbeats).
    pub pings: u64,
    /// Connections reaped for blowing the idle deadline (half-open
    /// peers).
    pub reaped: u64,
    /// Connections that ended with a client `Goodbye` — deliberate
    /// closes.
    pub clean_closes: u64,
    /// Connections that ended in a broken socket — crashes, resets,
    /// vanished peers.
    pub crash_closes: u64,
}

impl WireStats {
    fn snapshot(&self) -> WireStatsSnapshot {
        WireStatsSnapshot {
            connections_total: self.connections_total.load(Relaxed),
            producers_open: self.producers_open.load(Relaxed),
            subscribers_open: self.subscribers_open.load(Relaxed),
            frames_in: self.frames_in.load(Relaxed),
            frames_out: self.frames_out.load(Relaxed),
            events_in: self.events_in.load(Relaxed),
            alarms_out: self.alarms_out.load(Relaxed),
            flow_blocks: self.flow_blocks.load(Relaxed),
            refused: self.refused.load(Relaxed),
            reconnects: self.reconnects.load(Relaxed),
            dedup_hits: self.dedup_hits.load(Relaxed),
            pings: self.pings.load(Relaxed),
            reaped: self.reaped.load(Relaxed),
            clean_closes: self.clean_closes.load(Relaxed),
            crash_closes: self.crash_closes.load(Relaxed),
        }
    }

    fn render(&self, page: &mut ec_obs::PromText, draining: bool) {
        let s = self.snapshot();
        page.counter(
            "ec_wire_connections_total",
            "Wire connections accepted since bind",
            &[],
            s.connections_total,
        );
        page.gauge(
            "ec_wire_connections_open",
            "Authenticated wire connections by role",
            &[("role", "producer")],
            s.producers_open as f64,
        );
        page.gauge(
            "ec_wire_connections_open",
            "Authenticated wire connections by role",
            &[("role", "subscriber")],
            s.subscribers_open as f64,
        );
        page.counter(
            "ec_wire_frames_total",
            "Wire frames by direction",
            &[("dir", "in")],
            s.frames_in,
        );
        page.counter(
            "ec_wire_frames_total",
            "Wire frames by direction",
            &[("dir", "out")],
            s.frames_out,
        );
        page.counter(
            "ec_wire_events_total",
            "Events accepted into striped ingest buffers over the wire",
            &[],
            s.events_in,
        );
        page.counter(
            "ec_wire_alarms_total",
            "Retired-phase alarms streamed to subscribers",
            &[],
            s.alarms_out,
        );
        page.counter(
            "ec_wire_flow_blocks_total",
            "FlowControl(Block) frames sent (backpressure episodes)",
            &[],
            s.flow_blocks,
        );
        page.counter(
            "ec_wire_refused_total",
            "Hellos refused (bad token, unknown tenant, bad preamble, draining)",
            &[],
            s.refused,
        );
        page.counter(
            "ec_wire_reconnects_total",
            "Producer reconnects that resumed a known session",
            &[],
            s.reconnects,
        );
        page.counter(
            "ec_wire_dedup_hits_total",
            "Replayed batches re-acked from a resume window instead of re-applied",
            &[],
            s.dedup_hits,
        );
        page.counter(
            "ec_wire_pings_total",
            "Ping frames sent to clients (idle probes and flow-blocked heartbeats)",
            &[],
            s.pings,
        );
        page.counter(
            "ec_wire_reaped_total",
            "Connections reaped for blowing the idle deadline",
            &[],
            s.reaped,
        );
        page.counter(
            "ec_wire_disconnects_total",
            "Connection ends by kind",
            &[("kind", "clean")],
            s.clean_closes,
        );
        page.counter(
            "ec_wire_disconnects_total",
            "Connection ends by kind",
            &[("kind", "crash")],
            s.crash_closes,
        );
        page.gauge(
            "ec_wire_draining",
            "1 while the server is draining (refusing new Hellos)",
            &[],
            if draining { 1.0 } else { 0.0 },
        );
    }
}

/// Outcome of one subscriber drain attempt.
enum Drained {
    /// Alarms, oldest first (possibly after a short wait).
    Batch(Vec<WireAlarm>),
    /// Nothing arrived within the timeout.
    Empty,
    /// The slot overflowed: the reader was too slow.
    Overflowed,
}

/// Per-tenant fan-out from the runtime's serial delivery loop to any
/// number of bounded subscriber slots. `publish` runs on the delivery
/// thread and never blocks: a full slot is marked overflowed (its
/// connection is then dropped) instead of wedging retirement.
struct Hub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

#[derive(Default)]
struct HubInner {
    slots: Vec<Slot>,
    next: u64,
}

struct Slot {
    id: u64,
    cap: usize,
    queue: VecDeque<WireAlarm>,
    overflowed: bool,
}

impl Hub {
    fn new() -> Arc<Hub> {
        Arc::new(Hub {
            inner: Mutex::new(HubInner::default()),
            cv: Condvar::new(),
        })
    }

    fn publish(&self, alarm: &WireAlarm) {
        let mut inner = self.inner.lock();
        for slot in &mut inner.slots {
            if slot.overflowed {
                continue;
            }
            if slot.queue.len() >= slot.cap {
                slot.overflowed = true;
                slot.queue.clear();
            } else {
                slot.queue.push_back(alarm.clone());
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    fn register(&self, cap: usize) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next;
        inner.next += 1;
        inner.slots.push(Slot {
            id,
            cap: cap.max(1),
            queue: VecDeque::new(),
            overflowed: false,
        });
        id
    }

    fn unregister(&self, id: u64) {
        self.inner.lock().slots.retain(|s| s.id != id);
    }

    fn drain(&self, id: u64, max: usize, timeout: Duration) -> Drained {
        let mut inner = self.inner.lock();
        for waited in [false, true] {
            let Some(slot) = inner.slots.iter_mut().find(|s| s.id == id) else {
                return Drained::Empty;
            };
            if slot.overflowed {
                return Drained::Overflowed;
            }
            if !slot.queue.is_empty() {
                let n = slot.queue.len().min(max);
                return Drained::Batch(slot.queue.drain(..n).collect());
            }
            if waited {
                break;
            }
            self.cv.wait_for(&mut inner, timeout);
        }
        Drained::Empty
    }
}

/// Dedup state of one resumable producer session: a bounded window of
/// recently acked `(seq, accepted)` pairs per source. The lock
/// serializes batch application across every connection claiming the
/// same session id — a concurrent duplicate blocks, then sees the
/// recorded entry and is re-acked.
#[derive(Default)]
struct ProducerSession {
    windows: Mutex<HashMap<u32, SourceWindow>>,
}

#[derive(Default)]
struct SourceWindow {
    /// Recently acked batches, oldest first, bounded by the server's
    /// resume window.
    recent: VecDeque<(u64, u32)>,
    /// Highest sequence number ever recorded — a replayed seq at or
    /// below it that fell out of the window is refused, never
    /// re-applied.
    max_seen: Option<u64>,
}

/// Per-tenant registry of producer sessions, LRU-bounded.
#[derive(Default)]
struct ResumeTable {
    sessions: HashMap<String, Arc<ProducerSession>>,
    order: VecDeque<String>,
}

/// One served tenant: its session plus the wiring the handlers need.
struct Tenant {
    name: String,
    session: Session,
    sources: Vec<String>,
    handles: Vec<SourceHandle>,
    hub: Arc<Hub>,
    resume: Mutex<ResumeTable>,
}

impl Tenant {
    /// Gets or creates the resume state for one producer session id
    /// (LRU-touched, bounded by `cap`); the bool reports whether it
    /// already existed — i.e. this Hello is a reconnect.
    fn resume_session(&self, id: &str, cap: usize) -> (Arc<ProducerSession>, bool) {
        let mut table = self.resume.lock();
        table.order.retain(|s| s != id);
        table.order.push_back(id.to_string());
        if let Some(sess) = table.sessions.get(id) {
            return (Arc::clone(sess), true);
        }
        let sess = Arc::new(ProducerSession::default());
        table.sessions.insert(id.to_string(), Arc::clone(&sess));
        while table.sessions.len() > cap.max(1) {
            match table.order.pop_front() {
                Some(old) => {
                    table.sessions.remove(&old);
                }
                None => break,
            }
        }
        (sess, false)
    }
}

struct ServerCtx {
    tenants: HashMap<String, Arc<Tenant>>,
    /// Tenant names in opening order (shutdown closes in this order).
    order: Vec<String>,
    token: String,
    stop: AtomicBool,
    /// Set by [`WireServer::drain`]: refuse new Hellos, wind down
    /// producer connections after their in-flight frame.
    draining: AtomicBool,
    /// Set once every acked prefix has been flushed and retirement has
    /// gone idle: subscribers may now say goodbye after their queue
    /// empties.
    drained: AtomicBool,
    local_addr: SocketAddr,
    conns: Mutex<Vec<Box<dyn NetConn>>>,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: WireStats,
    pool: SessionPool,
    subscriber_buffer: usize,
    alarm_batch: usize,
    ping_interval: Duration,
    idle_timeout: Duration,
    write_deadline: Duration,
    resume_window: usize,
    resume_sessions: usize,
    drain_grace: Duration,
}

impl ServerCtx {
    /// Asks the accept loop to exit: set the flag, then poke the
    /// listener with a throwaway connection so `accept` returns.
    fn request_stop(&self) {
        self.stop.store(true, Relaxed);
        let _ = std::net::TcpStream::connect(self.local_addr);
    }
}

/// Configuration for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireServerBuilder {
    token: String,
    metrics_addr: Option<String>,
    subscriber_buffer: usize,
    alarm_batch: usize,
    net: Arc<dyn NetIo>,
    ping_interval: Duration,
    idle_timeout: Duration,
    write_deadline: Duration,
    resume_window: usize,
    resume_sessions: usize,
    drain_grace: Duration,
}

impl Default for WireServerBuilder {
    fn default() -> WireServerBuilder {
        WireServerBuilder {
            token: String::new(),
            metrics_addr: None,
            subscriber_buffer: 1024,
            alarm_batch: 256,
            net: real_net(),
            ping_interval: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            write_deadline: Duration::from_secs(10),
            resume_window: 128,
            resume_sessions: 1024,
            drain_grace: Duration::from_secs(5),
        }
    }
}

impl WireServerBuilder {
    /// Requires every `Hello` to carry this token (default: open, any
    /// token accepted).
    pub fn token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Also binds the pool's `/metrics` + `/healthz` endpoint at
    /// `addr` (port 0 picks a free one), with the wire transport's
    /// `ec_wire_*` series appended to every scrape and the drain state
    /// surfaced on `/healthz`.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Alarms buffered per subscriber before it is declared too slow
    /// and disconnected (default 1024, minimum 1).
    pub fn subscriber_buffer(mut self, n: usize) -> Self {
        self.subscriber_buffer = n.max(1);
        self
    }

    /// Maximum alarms per `AlarmBatch` frame (default 256).
    pub fn alarm_batch(mut self, n: usize) -> Self {
        self.alarm_batch = n.max(1);
        self
    }

    /// Routes the listener and every accepted connection through this
    /// transport plane (default [`RealNet`]). The chaos matrix injects
    /// a [`FaultNet`] here.
    pub fn net(mut self, net: Arc<dyn NetIo>) -> Self {
        self.net = net;
        self
    }

    /// How often an idle (or flow-blocked) v2 peer is pinged; also the
    /// read-deadline granularity of the connection loops (default 5s).
    pub fn ping_interval(mut self, d: Duration) -> Self {
        self.ping_interval = d.max(Duration::from_millis(1));
        self
    }

    /// A connection silent for this long — no frames, no pong — is
    /// reaped as half-open (default 30s; keep it a few multiples of
    /// the ping interval).
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d.max(Duration::from_millis(1));
        self
    }

    /// Write deadline per connection: a peer whose receive buffer
    /// stays full this long (black-holed, wedged) fails the write and
    /// is disconnected instead of stalling its handler (default 10s).
    pub fn write_deadline(mut self, d: Duration) -> Self {
        self.write_deadline = d.max(Duration::from_millis(1));
        self
    }

    /// Acked batches remembered per (session, source) for replay dedup
    /// (default 128, minimum 1). A synchronous client has at most one
    /// batch in flight, so even the minimum suffices for it.
    pub fn resume_window(mut self, n: usize) -> Self {
        self.resume_window = n.max(1);
        self
    }

    /// Producer sessions remembered per tenant, LRU-evicted beyond
    /// this (default 1024).
    pub fn resume_sessions(mut self, n: usize) -> Self {
        self.resume_sessions = n.max(1);
        self
    }

    /// How long [`WireServer::drain`] waits for producers to finish
    /// their in-flight frames and for subscribers to catch up before
    /// forcing the shutdown (default 5s).
    pub fn drain_grace(mut self, d: Duration) -> Self {
        self.drain_grace = d;
        self
    }

    /// Binds the wire listener at `addr` (port 0 picks a free one) and
    /// starts serving `sessions` — tenants already opened on `pool`.
    /// The server takes ownership of both; [`WireServer::shutdown`]
    /// closes them cleanly.
    pub fn bind(
        self,
        addr: &str,
        pool: SessionPool,
        sessions: Vec<Session>,
    ) -> Result<WireServer, RuntimeError> {
        if sessions.is_empty() {
            return Err(RuntimeError::Config(
                "a wire server needs at least one tenant session".into(),
            ));
        }
        let mut tenants = HashMap::new();
        let mut order = Vec::new();
        for session in sessions {
            let name = session.name().to_string();
            let sources = session.live_source_names();
            let handles = sources
                .iter()
                .map(|s| session.handle_by_name(s))
                .collect::<Result<Vec<_>, _>>()?;
            let hub = Hub::new();
            let pub_hub = Arc::clone(&hub);
            session.subscribe(move |e| {
                pub_hub.publish(&WireAlarm {
                    phase: e.phase,
                    sink: e.name.to_string(),
                    value: e.value.clone(),
                });
            });
            order.push(name.clone());
            tenants.insert(
                name.clone(),
                Arc::new(Tenant {
                    name,
                    session,
                    sources,
                    handles,
                    hub,
                    resume: Mutex::new(ResumeTable::default()),
                }),
            );
        }
        let listener = self
            .net
            .bind(addr)
            .map_err(|e| RuntimeError::Config(format!("wire endpoint {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RuntimeError::Config(format!("wire endpoint {addr}: {e}")))?;
        let ctx = Arc::new(ServerCtx {
            tenants,
            order,
            token: self.token,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            local_addr,
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            stats: WireStats::default(),
            pool,
            subscriber_buffer: self.subscriber_buffer,
            alarm_batch: self.alarm_batch,
            ping_interval: self.ping_interval,
            idle_timeout: self.idle_timeout,
            write_deadline: self.write_deadline,
            resume_window: self.resume_window,
            resume_sessions: self.resume_sessions,
            drain_grace: self.drain_grace,
        });
        let metrics_addr = match &self.metrics_addr {
            Some(addr) => {
                // Weak references: the registry closures live inside
                // the pool the ctx owns, so strong captures would keep
                // the ctx alive forever and break shutdown's unwrap.
                let stats_ctx = Arc::downgrade(&ctx);
                let health_ctx = Arc::downgrade(&ctx);
                Some(ctx.pool.serve_metrics_ext(
                    addr,
                    move |page| {
                        if let Some(ctx) = stats_ctx.upgrade() {
                            ctx.stats.render(page, ctx.draining.load(Relaxed));
                        }
                    },
                    move || {
                        let draining = health_ctx
                            .upgrade()
                            .is_some_and(|ctx| ctx.draining.load(Relaxed));
                        vec![("draining".to_string(), draining.to_string())]
                    },
                )?)
            }
            None => None,
        };
        let accept_ctx = Arc::clone(&ctx);
        let listener_thread = std::thread::Builder::new()
            .name("ec-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx))
            .map_err(|e| RuntimeError::Config(format!("spawn accept loop: {e}")))?;
        Ok(WireServer {
            ctx: Some(ctx),
            listener_thread: Some(listener_thread),
            local_addr,
            metrics_addr,
        })
    }
}

/// A live TCP front end over a [`SessionPool`]. See the module docs
/// for the connection model.
///
/// Dropping the server without calling [`shutdown`](Self::shutdown)
/// stops the listener and *drops* the tenant sessions — the simulated
/// crash of [`Session`]'s drop semantics. Durable tenants restore on
/// the next bind.
pub struct WireServer {
    ctx: Option<Arc<ServerCtx>>,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

/// Read-only view of one served tenant; derefs to its
/// [`StreamRuntime`] for observation (`metrics`, `script`,
/// `wait_idle`, …).
pub struct ServedTenant {
    inner: Arc<Tenant>,
}

impl std::ops::Deref for ServedTenant {
    type Target = StreamRuntime;

    fn deref(&self) -> &StreamRuntime {
        &self.inner.session
    }
}

impl WireServer {
    /// A fresh configuration.
    pub fn builder() -> WireServerBuilder {
        WireServerBuilder::default()
    }

    /// The bound wire address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound `/metrics` + `/healthz` address, if configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Tenant names, in opening order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.ctx.as_ref().map_or_else(Vec::new, |c| c.order.clone())
    }

    /// Observation handle on one tenant's runtime.
    pub fn tenant(&self, name: &str) -> Option<ServedTenant> {
        let ctx = self.ctx.as_ref()?;
        ctx.tenants.get(name).map(|t| ServedTenant {
            inner: Arc::clone(t),
        })
    }

    /// Wire transport counters.
    pub fn stats(&self) -> WireStatsSnapshot {
        self.ctx
            .as_ref()
            .map(|c| c.stats.snapshot())
            .unwrap_or_default()
    }

    /// True once a shutdown was requested — by [`shutdown`](Self::shutdown)
    /// or by a client's [`Shutdown`](wire::Frame::Shutdown) frame. The
    /// owner should then call [`shutdown`](Self::shutdown) (or
    /// [`drain`](Self::drain)).
    pub fn stop_requested(&self) -> bool {
        self.ctx.as_ref().is_some_and(|c| c.stop.load(Relaxed))
    }

    /// True while a [`drain`](Self::drain) is in progress: new Hellos
    /// are refused and connections are winding down.
    pub fn draining(&self) -> bool {
        self.ctx.as_ref().is_some_and(|c| c.draining.load(Relaxed))
    }

    /// Gracefully winds the server down, then shuts it down:
    ///
    /// 1. refuse new `Hello`s (with an explicit "draining" error);
    /// 2. let every producer finish its in-flight frame, then send it
    ///    [`Goodbye`](wire::Frame::Goodbye) — flushing tenants
    ///    throughout so a flow-blocked push can land;
    /// 3. flush every tenant's acked prefix and wait for retirement to
    ///    go idle;
    /// 4. let subscribers drain their remaining alarms, then send them
    ///    `Goodbye`;
    /// 5. run the normal [`shutdown`](Self::shutdown).
    ///
    /// Each waiting step is bounded by
    /// [`drain_grace`](WireServerBuilder::drain_grace); a wedged peer
    /// delays the drain at most that long.
    pub fn drain(self) -> Vec<(String, Result<RuntimeReport, RuntimeError>)> {
        if let Some(ctx) = self.ctx.as_ref() {
            ctx.draining.store(true, Relaxed);
            let deadline = Instant::now() + ctx.drain_grace;
            while ctx.stats.producers_open.load(Relaxed) > 0 && Instant::now() < deadline {
                // Flushing unblocks any producer stuck in a full
                // buffer so its in-flight batch can complete and be
                // recorded before the goodbye.
                for t in ctx.tenants.values() {
                    let _ = t.session.flush();
                }
                std::thread::sleep(POLL);
            }
            for t in ctx.tenants.values() {
                let _ = t.session.flush();
                let _ = t.session.wait_idle();
            }
            // `wait_idle` covers retirement; the delivery thread
            // forwards the final sink emissions to the hub up to one
            // ~50ms wakeup later. Let that settle before declaring the
            // alarm stream complete, or the goodbye could beat the
            // last batch.
            std::thread::sleep(Duration::from_millis(150));
            ctx.drained.store(true, Relaxed);
            // The producer wait above may have consumed the whole
            // grace period on a wedged peer; subscribers get their own.
            let deadline = Instant::now() + ctx.drain_grace;
            while ctx.stats.subscribers_open.load(Relaxed) > 0 && Instant::now() < deadline {
                std::thread::sleep(POLL);
            }
        }
        self.shutdown()
    }

    /// Stops accepting, disconnects every client, joins the handler
    /// threads, closes every tenant session cleanly (in opening
    /// order), and shuts the pool down. Returns one report per tenant.
    ///
    /// A tenant still held as a [`ServedTenant`] elsewhere cannot be
    /// closed cleanly; it is crash-dropped (durable tenants restore)
    /// and reported as an error row.
    pub fn shutdown(mut self) -> Vec<(String, Result<RuntimeReport, RuntimeError>)> {
        let ctx = match self.teardown() {
            Some(ctx) => ctx,
            None => return Vec::new(),
        };
        let mut ctx = match Arc::try_unwrap(ctx) {
            Ok(ctx) => ctx,
            Err(_) => return Vec::new(), // a leaked handle keeps everything alive
        };
        let mut reports = Vec::new();
        for name in std::mem::take(&mut ctx.order) {
            let Some(tenant) = ctx.tenants.remove(&name) else {
                continue;
            };
            match Arc::try_unwrap(tenant) {
                Ok(t) => reports.push((name, t.session.close())),
                Err(_held) => reports.push((
                    name.clone(),
                    Err(RuntimeError::Config(format!(
                        "tenant {name:?} still observed; crash-dropped instead of closed"
                    ))),
                )),
            }
        }
        ctx.pool.shutdown();
        reports
    }

    /// Stops the listener and connection threads and returns the ctx;
    /// shared by `shutdown` and `Drop`.
    fn teardown(&mut self) -> Option<Arc<ServerCtx>> {
        let ctx = self.ctx.take()?;
        ctx.request_stop();
        for conn in ctx.conns.lock().drain(..) {
            let _ = conn.shutdown_both();
        }
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        let handlers: Vec<_> = ctx.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        Some(ctx)
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

fn accept_loop(listener: Box<dyn NetListener>, ctx: Arc<ServerCtx>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if ctx.stop.load(Relaxed) {
                    return;
                }
                continue;
            }
        };
        if ctx.stop.load(Relaxed) {
            return;
        }
        if let Ok(clone) = conn.try_clone_conn() {
            ctx.conns.lock().push(clone);
        }
        let conn_ctx = Arc::clone(&ctx);
        let spawned = std::thread::Builder::new()
            .name("ec-wire-conn".into())
            .spawn(move || handle_conn(conn_ctx, conn));
        if let Ok(h) = spawned {
            ctx.handlers.lock().push(h);
        }
    }
}

/// Decrements an open-connection gauge on scope exit.
struct OpenGuard<'a>(&'a AtomicU64);

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

/// Sends one frame, counting it; false means the connection is gone.
fn send(ctx: &ServerCtx, w: &mut impl Write, frame: &Frame) -> bool {
    match wire::write_frame(w, frame) {
        Ok(()) => {
            ctx.stats.frames_out.fetch_add(1, Relaxed);
            true
        }
        Err(_) => false,
    }
}

fn refuse(ctx: &ServerCtx, w: &mut impl Write, reason: String) {
    ctx.stats.refused.fetch_add(1, Relaxed);
    send(ctx, w, &Frame::Error { reason });
}

/// Drops a connection the server can no longer trust (corrupt framing,
/// missed liveness deadline) without refusing anything: v2 peers get a
/// best-effort [`Frame::Abort`] telling them a resume is safe, v1
/// peers (which predate `Abort`) get the legacy `Error`.
fn abort(ctx: &ServerCtx, w: &mut impl Write, peer_version: u32, reason: String) {
    if peer_version >= 2 {
        send(ctx, w, &Frame::Abort { reason });
    } else {
        send(ctx, w, &Frame::Error { reason });
    }
}

fn handle_conn(ctx: Arc<ServerCtx>, mut reader: Box<dyn NetConn>) {
    ctx.stats.connections_total.fetch_add(1, Relaxed);
    let Ok(mut writer) = reader.try_clone_conn() else {
        return;
    };
    // Deadlines from the first byte: a peer that never completes its
    // handshake is timed out instead of parking this thread forever.
    let _ = reader.set_read_timeout(Some(ctx.idle_timeout));
    let _ = writer.set_write_timeout(Some(ctx.write_deadline));
    // Preamble exchange: validate the client's, then send ours so the
    // client can parse the reply even when we refuse.
    let preamble = wire::read_preamble(&mut reader);
    if wire::write_preamble(&mut writer).is_err() || writer.flush().is_err() {
        return;
    }
    let peer_version = match preamble {
        Ok(v) => v,
        Err(e) => {
            refuse(&ctx, &mut writer, e.to_string());
            return;
        }
    };
    let hello = match wire::read_frame(&mut reader) {
        Ok(f) => f,
        Err(e) => {
            refuse(&ctx, &mut writer, format!("bad first frame: {e}"));
            return;
        }
    };
    ctx.stats.frames_in.fetch_add(1, Relaxed);
    let (token, tenant, role, session_id) = match hello {
        Frame::Hello {
            token,
            tenant,
            role,
        } => (token, tenant, role, None),
        Frame::HelloResume {
            token,
            tenant,
            session,
        } => (token, tenant, Role::Producer, Some(session)),
        _ => {
            refuse(&ctx, &mut writer, "first frame must be Hello".into());
            return;
        }
    };
    if ctx.draining.load(Relaxed) {
        refuse(
            &ctx,
            &mut writer,
            "server draining: not accepting new sessions".into(),
        );
        return;
    }
    if !ctx.token.is_empty() && token != ctx.token {
        refuse(&ctx, &mut writer, "bad token".into());
        return;
    }
    let Some(t) = ctx.tenants.get(&tenant).map(Arc::clone) else {
        refuse(&ctx, &mut writer, format!("unknown tenant {tenant:?}"));
        return;
    };
    let session = session_id.map(|id| {
        let (sess, existed) = t.resume_session(&id, ctx.resume_sessions);
        if existed {
            ctx.stats.reconnects.fetch_add(1, Relaxed);
        }
        sess
    });
    if !send(
        &ctx,
        &mut writer,
        &Frame::HelloOk {
            tenant: t.name.clone(),
            sources: t.sources.clone(),
        },
    ) {
        return;
    }
    // Steady-state read deadline: one ping interval per tick.
    let _ = reader.set_read_timeout(Some(ctx.ping_interval));
    match role {
        Role::Producer => {
            ctx.stats.producers_open.fetch_add(1, Relaxed);
            let _open = OpenGuard(&ctx.stats.producers_open);
            producer_loop(&ctx, &t, &mut reader, &mut writer, peer_version, session);
        }
        Role::Subscriber => {
            ctx.stats.subscribers_open.fetch_add(1, Relaxed);
            let _open = OpenGuard(&ctx.stats.subscribers_open);
            subscriber_loop(&ctx, &t, &mut reader, &mut writer, peer_version);
        }
    }
}

fn producer_loop(
    ctx: &ServerCtx,
    t: &Tenant,
    reader: &mut Box<dyn NetConn>,
    writer: &mut Box<dyn NetConn>,
    peer_version: u32,
    session: Option<Arc<ProducerSession>>,
) {
    let mut fr = wire::FrameReader::new();
    let mut last_frame = Instant::now();
    let mut ping_nonce = 0u64;
    loop {
        if ctx.stop.load(Relaxed) {
            send(
                ctx,
                writer,
                &Frame::Error {
                    reason: "server shutting down".into(),
                },
            );
            return;
        }
        if ctx.draining.load(Relaxed) && !fr.mid_frame() {
            if peer_version >= 2 {
                send(
                    ctx,
                    writer,
                    &Frame::Goodbye {
                        reason: "server draining".into(),
                    },
                );
            }
            return;
        }
        let frame = match fr.read_from(reader) {
            Ok(Some(f)) => f,
            Ok(None) => {
                // Idle tick: the read deadline (one ping interval)
                // expired with no complete frame.
                if last_frame.elapsed() >= ctx.idle_timeout {
                    ctx.stats.reaped.fetch_add(1, Relaxed);
                    abort(
                        ctx,
                        writer,
                        peer_version,
                        "idle deadline exceeded: reaping half-open producer".into(),
                    );
                    return;
                }
                if peer_version >= 2 {
                    ping_nonce += 1;
                    ctx.stats.pings.fetch_add(1, Relaxed);
                    if !send(ctx, writer, &Frame::Ping { nonce: ping_nonce }) {
                        ctx.stats.crash_closes.fetch_add(1, Relaxed);
                        return;
                    }
                }
                continue;
            }
            Err(e) => {
                // A torn/corrupt frame is discarded whole: everything
                // pushed so far stays (the acknowledged FIFO prefix),
                // nothing from the bad frame enters a buffer. The
                // stream itself is untrusted from here, so this is an
                // abort, not a refusal — a resuming client redials and
                // replays, and dedup keeps the commit exactly-once.
                ctx.stats.crash_closes.fetch_add(1, Relaxed);
                if !e.is_disconnect() {
                    abort(ctx, writer, peer_version, e.to_string());
                }
                return;
            }
        };
        last_frame = Instant::now();
        ctx.stats.frames_in.fetch_add(1, Relaxed);
        match frame {
            Frame::PushBatch { seq, source, bins } => {
                let Some(handle) = t.handles.get(source as usize) else {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: format!(
                                "unknown source index {source} (tenant has {})",
                                t.handles.len()
                            ),
                        },
                    );
                    return;
                };
                let mut conn_ok = true;
                let accepted = match &session {
                    Some(sess) => {
                        // The window lock serializes same-session
                        // batches across concurrent connections and is
                        // held through application, so a duplicate
                        // blocks and then dedups.
                        let mut windows = sess.windows.lock();
                        let win = windows.entry(source).or_default();
                        if let Some(&(_, accepted)) =
                            win.recent.iter().rev().find(|(s, _)| *s == seq)
                        {
                            ctx.stats.dedup_hits.fetch_add(1, Relaxed);
                            drop(windows);
                            if !send(ctx, writer, &Frame::PushAck { seq, accepted }) {
                                ctx.stats.crash_closes.fetch_add(1, Relaxed);
                                return;
                            }
                            continue;
                        }
                        if win.max_seen.is_some_and(|hi| seq <= hi) {
                            // Acked long ago and evicted — refusing is
                            // the only answer that cannot double-apply.
                            send(
                                ctx,
                                writer,
                                &Frame::Error {
                                    reason: format!(
                                        "batch seq {seq} is behind the session's resume window"
                                    ),
                                },
                            );
                            return;
                        }
                        let Some(accepted) = apply_batch(
                            ctx,
                            writer,
                            &mut conn_ok,
                            handle,
                            source,
                            bins,
                            peer_version,
                        ) else {
                            // Terminal (tenant closed / stopping): the
                            // partial batch stays unrecorded — a replay
                            // meets the same terminal refusal, never a
                            // double-apply.
                            return;
                        };
                        let win = windows.entry(source).or_default();
                        win.max_seen = Some(win.max_seen.map_or(seq, |hi| hi.max(seq)));
                        win.recent.push_back((seq, accepted));
                        while win.recent.len() > ctx.resume_window {
                            win.recent.pop_front();
                        }
                        accepted
                    }
                    None => {
                        let Some(accepted) = apply_batch(
                            ctx,
                            writer,
                            &mut conn_ok,
                            handle,
                            source,
                            bins,
                            peer_version,
                        ) else {
                            return;
                        };
                        accepted
                    }
                };
                ctx.stats.events_in.fetch_add(accepted as u64, Relaxed);
                if !conn_ok || !send(ctx, writer, &Frame::PushAck { seq, accepted }) {
                    ctx.stats.crash_closes.fetch_add(1, Relaxed);
                    return;
                }
            }
            Frame::Seal => match t.session.flush() {
                Ok(phases) => {
                    if !send(ctx, writer, &Frame::SealOk { phases }) {
                        ctx.stats.crash_closes.fetch_add(1, Relaxed);
                        return;
                    }
                }
                Err(e) => {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: e.to_string(),
                        },
                    );
                    return;
                }
            },
            Frame::MetricsRequest => {
                let json = ctx
                    .pool
                    .metrics()
                    .iter()
                    .find(|r| r.name == t.name)
                    .map(|r| r.to_json())
                    .unwrap_or_else(|| "{}".into());
                if !send(ctx, writer, &Frame::MetricsReply { json }) {
                    ctx.stats.crash_closes.fetch_add(1, Relaxed);
                    return;
                }
            }
            Frame::Shutdown => {
                ctx.request_stop();
                send(ctx, writer, &Frame::ShutdownOk);
                return;
            }
            Frame::Ping { nonce } => {
                if !send(ctx, writer, &Frame::Pong { nonce }) {
                    ctx.stats.crash_closes.fetch_add(1, Relaxed);
                    return;
                }
            }
            Frame::Pong { .. } => {
                // Liveness answer; receiving any frame already reset
                // the idle clock.
            }
            Frame::Goodbye { .. } => {
                ctx.stats.clean_closes.fetch_add(1, Relaxed);
                return;
            }
            _ => {
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: "unexpected frame on a producer connection".into(),
                    },
                );
                return;
            }
        }
    }
}

/// Applies a whole batch. Returns `Some(accepted)` once every bin has
/// entered the source's buffer — even if the client connection died
/// along the way (`conn_ok` flips false) — so that a recorded resume
/// entry always describes a fully-applied batch and a replay can be
/// re-acked safely. Returns `None` only on a terminal condition
/// (tenant closed, server stopping): then the partial batch must not
/// be recorded, and a replay meets the same terminal refusal.
fn apply_batch(
    ctx: &ServerCtx,
    writer: &mut impl Write,
    conn_ok: &mut bool,
    handle: &SourceHandle,
    source: u32,
    bins: Vec<Option<ec_events::Value>>,
    peer_version: u32,
) -> Option<u32> {
    let mut accepted = 0u32;
    for bin in bins {
        let Some(v) = bin else { continue };
        if !push_one(ctx, writer, conn_ok, handle, source, v, peer_version) {
            return None;
        }
        accepted += 1;
    }
    Some(accepted)
}

/// Pushes one event, surfacing a full buffer as `FlowControl(Block)`
/// and retrying until it lands (then `FlowControl(Open)`), pinging the
/// peer while blocked so its deadline sees a live server. A dead
/// client connection flips `conn_ok` but does not stop the push —
/// batch application must run to completion (see [`apply_batch`]).
/// False means a terminal condition: tenant closed or server stopping.
fn push_one(
    ctx: &ServerCtx,
    writer: &mut impl Write,
    conn_ok: &mut bool,
    handle: &SourceHandle,
    source: u32,
    value: ec_events::Value,
    peer_version: u32,
) -> bool {
    let mut blocked = false;
    let mut last_ping = Instant::now();
    loop {
        match handle.push(value.clone()) {
            Ok(()) => {
                if blocked
                    && *conn_ok
                    && !send(
                        ctx,
                        writer,
                        &Frame::FlowControl {
                            source,
                            state: FlowState::Open,
                        },
                    )
                {
                    *conn_ok = false;
                }
                return true;
            }
            Err(PushError::Full) => {
                if !blocked {
                    blocked = true;
                    ctx.stats.flow_blocks.fetch_add(1, Relaxed);
                    if *conn_ok
                        && !send(
                            ctx,
                            writer,
                            &Frame::FlowControl {
                                source,
                                state: FlowState::Block,
                            },
                        )
                    {
                        *conn_ok = false;
                    }
                }
                if ctx.stop.load(Relaxed) {
                    if *conn_ok {
                        send(
                            ctx,
                            writer,
                            &Frame::Error {
                                reason: "server shutting down".into(),
                            },
                        );
                    }
                    return false;
                }
                if *conn_ok && peer_version >= 2 && last_ping.elapsed() >= ctx.ping_interval {
                    last_ping = Instant::now();
                    ctx.stats.pings.fetch_add(1, Relaxed);
                    if !send(ctx, writer, &Frame::Ping { nonce: 0 }) {
                        *conn_ok = false;
                    }
                }
                std::thread::sleep(POLL);
            }
            Err(PushError::Closed) => {
                if *conn_ok {
                    send(
                        ctx,
                        writer,
                        &Frame::Error {
                            reason: "tenant closed".into(),
                        },
                    );
                }
                return false;
            }
        }
    }
}

fn subscriber_loop(
    ctx: &ServerCtx,
    t: &Tenant,
    reader: &mut Box<dyn NetConn>,
    writer: &mut Box<dyn NetConn>,
    peer_version: u32,
) {
    let mut fr = wire::FrameReader::new();
    let started = Instant::now();
    loop {
        match fr.read_from(reader) {
            Ok(Some(Frame::SubscribeAlarms)) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                break;
            }
            Ok(Some(Frame::Goodbye { .. })) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                ctx.stats.clean_closes.fetch_add(1, Relaxed);
                return;
            }
            Ok(Some(_)) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: "a subscriber must send SubscribeAlarms first".into(),
                    },
                );
                return;
            }
            Ok(None) => {
                if started.elapsed() >= ctx.idle_timeout {
                    ctx.stats.reaped.fetch_add(1, Relaxed);
                    abort(
                        ctx,
                        writer,
                        peer_version,
                        "idle deadline exceeded: reaping half-open subscriber".into(),
                    );
                    return;
                }
            }
            Err(e) => {
                ctx.stats.crash_closes.fetch_add(1, Relaxed);
                if !e.is_disconnect() {
                    abort(ctx, writer, peer_version, e.to_string());
                }
                return;
            }
        }
    }
    let id = t.hub.register(ctx.subscriber_buffer);
    // Acknowledge only once the slot exists: after SubscribeOk, every
    // retired alarm is either delivered or this subscriber is
    // disconnected — no silent registration gap.
    if !send(ctx, writer, &Frame::SubscribeOk) {
        t.hub.unregister(id);
        return;
    }
    // Short read deadline from here on: the loop interleaves hub
    // drains with polls for client frames (Ping, Goodbye, close).
    let _ = reader.set_read_timeout(Some(POLL));
    let mut last_out = Instant::now();
    let mut ping_nonce = 0u64;
    loop {
        if ctx.stop.load(Relaxed) {
            break;
        }
        match fr.read_from(reader) {
            Ok(Some(Frame::Ping { nonce })) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                if !send(ctx, writer, &Frame::Pong { nonce }) {
                    ctx.stats.crash_closes.fetch_add(1, Relaxed);
                    break;
                }
            }
            Ok(Some(Frame::Pong { .. })) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
            }
            Ok(Some(Frame::Goodbye { .. })) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                ctx.stats.clean_closes.fetch_add(1, Relaxed);
                t.hub.unregister(id);
                return;
            }
            Ok(Some(_)) => {
                ctx.stats.frames_in.fetch_add(1, Relaxed);
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: "unexpected frame on a subscriber connection".into(),
                    },
                );
                break;
            }
            Ok(None) => {}
            Err(e) => {
                ctx.stats.crash_closes.fetch_add(1, Relaxed);
                if !e.is_disconnect() {
                    abort(ctx, writer, peer_version, e.to_string());
                }
                break;
            }
        }
        match t.hub.drain(id, ctx.alarm_batch, Duration::from_millis(50)) {
            Drained::Batch(alarms) => {
                last_out = Instant::now();
                ctx.stats.alarms_out.fetch_add(alarms.len() as u64, Relaxed);
                if !send(ctx, writer, &Frame::AlarmBatch { alarms }) {
                    ctx.stats.crash_closes.fetch_add(1, Relaxed);
                    break;
                }
            }
            Drained::Empty => {
                if ctx.drained.load(Relaxed) {
                    // Every acked prefix is flushed and retired, and
                    // this slot is empty: the stream is complete.
                    if peer_version >= 2 {
                        send(
                            ctx,
                            writer,
                            &Frame::Goodbye {
                                reason: "server draining: alarm stream complete".into(),
                            },
                        );
                    }
                    break;
                }
                if peer_version >= 2 && last_out.elapsed() >= ctx.ping_interval {
                    last_out = Instant::now();
                    ping_nonce += 1;
                    ctx.stats.pings.fetch_add(1, Relaxed);
                    if !send(ctx, writer, &Frame::Ping { nonce: ping_nonce }) {
                        ctx.stats.crash_closes.fetch_add(1, Relaxed);
                        break;
                    }
                }
            }
            Drained::Overflowed => {
                send(
                    ctx,
                    writer,
                    &Frame::Error {
                        reason: format!(
                            "subscriber buffer overflowed ({} alarms): reader too slow",
                            ctx.subscriber_buffer
                        ),
                    },
                );
                break;
            }
        }
    }
    t.hub.unregister(id);
}
