//! The `ec serve` wire format: length-prefixed, CRC-framed binary
//! frames over TCP.
//!
//! The framing discipline is the WAL's (`ec-store`): every frame is
//!
//! ```text
//! [u32 payload_len (LE)] [payload bytes] [u32 crc32(payload) (LE)]
//! ```
//!
//! and the payload is a one-byte frame tag followed by a body encoded
//! with the same [`StateWriter`]/[`StateReader`] codec the snapshot
//! and WAL layers use — fixed-width LE scalars, length-prefixed
//! strings, tagged [`Value`]s, and the phase-column bin encoding
//! ([`StateWriter::put_bin`]) for producer batches, so a `PushBatch`
//! body is literally a miniature [`PhaseColumn`](ec_events::PhaseColumn)
//! slice.
//!
//! Each connection opens with an 8-byte preamble — magic
//! [`WIRE_MAGIC`] then [`WIRE_VERSION`], both u32 LE, sent by each
//! side — so a stray HTTP client or an old peer is refused before any
//! frame is parsed.
//!
//! Every decode path returns a typed [`WireError`]; corrupt input
//! (truncation, bit flips, oversized lengths, unknown tags, trailing
//! bytes) must never panic and never misparse. `tests/wire_props.rs`
//! holds the property suite and the pinned `wire_v1.bin` byte fixture.

use ec_events::{SnapshotError, StateReader, StateWriter, Value};
use std::io::{Read, Write};

/// Connection preamble magic: `"ECWP"` as a little-endian u32.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"ECWP");

/// Protocol version spoken by this build. Version 2 added the liveness
/// and resume frames (`Ping`/`Pong`/`HelloResume`/`Goodbye`) without
/// changing any version-1 encoding, so version-1 peers are still
/// accepted ([`MIN_WIRE_VERSION`]) — they just never receive the new
/// frames. Bumping past a peer's version invalidates its fixture on
/// purpose: the old format must keep decoding or the bump must be
/// deliberate.
pub const WIRE_VERSION: u32 = 2;

/// Oldest peer version still accepted. Every frame tag that existed at
/// this version encodes identically today — `wire_v1.bin` pins that.
pub const MIN_WIRE_VERSION: u32 = 1;

/// Hard ceiling on a single frame's payload, applied on both encode
/// and decode. A corrupt length prefix must not convince the peer to
/// allocate gigabytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// What a connection authenticates as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Pushes event batches into the tenant's live sources.
    Producer,
    /// Streams retired-phase alarms out of the tenant.
    Subscriber,
}

/// Producer-facing backpressure state of one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// The source accepts pushes again.
    Open,
    /// The source's striped buffer is full: stop sending until an
    /// `Open` arrives. The server keeps the pending event and retries
    /// it, so nothing acknowledged is ever dropped.
    Block,
}

/// One retired-phase sink emission, as streamed to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAlarm {
    /// 1-based phase the sink emitted in (serial order).
    pub phase: u64,
    /// Sink vertex name.
    pub sink: String,
    /// The emitted value.
    pub value: Value,
}

/// Every frame of the protocol.
///
/// | tag | frame | direction | body |
/// |-----|-------|-----------|------|
/// | 1 | `Hello` | client → server | token, tenant, role |
/// | 2 | `HelloOk` | server → client | tenant, source names |
/// | 3 | `Error` | server → client | reason (then close) |
/// | 4 | `PushBatch` | producer → server | seq, source index, bins |
/// | 5 | `PushAck` | server → producer | seq, events accepted |
/// | 6 | `Seal` | producer → server | — |
/// | 7 | `SealOk` | server → producer | phases committed |
/// | 8 | `FlowControl` | server → producer | source index, state |
/// | 9 | `SubscribeAlarms` | subscriber → server | — |
/// | 10 | `AlarmBatch` | server → subscriber | alarms in serial order |
/// | 15 | `SubscribeOk` | server → subscriber | — |
/// | 11 | `MetricsRequest` | client → server | — |
/// | 12 | `MetricsReply` | server → client | tenant metrics JSON |
/// | 13 | `Shutdown` | client → server | — |
/// | 14 | `ShutdownOk` | server → client | — |
/// | 16 | `Ping` | either | nonce (v2+) |
/// | 17 | `Pong` | either | echoed nonce (v2+) |
/// | 18 | `HelloResume` | client → server | token, tenant, session id (v2+) |
/// | 19 | `Goodbye` | either | reason, then clean close (v2+) |
/// | 20 | `Abort` | server → client | reason, then close; retry safe (v2+) |
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Authenticate this connection to one tenant.
    Hello {
        /// Shared secret; must match the server's token (empty when
        /// the server runs open).
        token: String,
        /// Tenant (session) name to attach to.
        tenant: String,
        /// Producer or subscriber.
        role: Role,
    },
    /// Hello accepted: the tenant's live sources in wiring order.
    /// `PushBatch.source` indexes this list.
    HelloOk {
        /// Echoed tenant name.
        tenant: String,
        /// Live source names in wiring order.
        sources: Vec<String>,
    },
    /// The request was refused or the connection is being dropped;
    /// `reason` is the diagnostic. The server closes after sending.
    Error {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// A batch of events for one source, in FIFO order. Bins use the
    /// phase-column encoding; `None` bins are allowed and skipped
    /// (they let a replayed column ship unmodified).
    PushBatch {
        /// Producer-assigned sequence number, echoed in the ack.
        seq: u64,
        /// Index into the `HelloOk` source list.
        source: u32,
        /// The events (phase-column bin encoding).
        bins: Vec<Option<Value>>,
    },
    /// Batch `seq` is fully buffered server-side: `accepted` events
    /// entered the source's striped buffer (acknowledged pushes
    /// survive a subsequent producer disconnect).
    PushAck {
        /// Echoed sequence number.
        seq: u64,
        /// Events accepted from the batch.
        accepted: u32,
    },
    /// Seal the tenant's current epoch (same commit point as
    /// [`StreamRuntime::flush`](crate::StreamRuntime::flush)).
    Seal,
    /// Seal done: `phases` phases committed by this seal.
    SealOk {
        /// Phases committed (0 if nothing was buffered).
        phases: u64,
    },
    /// Explicit backpressure for one source — sent instead of letting
    /// the TCP window stall silently.
    FlowControl {
        /// Index into the `HelloOk` source list.
        source: u32,
        /// Block or open.
        state: FlowState,
    },
    /// Start streaming retired-phase alarms on this connection.
    SubscribeAlarms,
    /// Subscription registered: every alarm retired from here on will
    /// be delivered (or the subscriber disconnected). Sent before the
    /// first `AlarmBatch` so a subscriber can sequence itself against
    /// producers without racing registration.
    SubscribeOk,
    /// Retired sink emissions, in serial (phase, vertex) order.
    AlarmBatch {
        /// The emissions.
        alarms: Vec<WireAlarm>,
    },
    /// Ask for the tenant's metrics row.
    MetricsRequest,
    /// The tenant's `SessionMetrics` as JSON.
    MetricsReply {
        /// JSON document (same shape as `SessionMetrics::to_json`).
        json: String,
    },
    /// Ask the whole server to shut down cleanly.
    Shutdown,
    /// Shutdown acknowledged; the server stops accepting and closes.
    ShutdownOk,
    /// Liveness probe (v2+). Either side may send one at any time; the
    /// peer answers with a [`Pong`](Frame::Pong) echoing the nonce. The
    /// server pings idle and flow-blocked producers so a half-open peer
    /// is detected by deadline instead of wedging forever.
    Ping {
        /// Opaque probe id, echoed back in the `Pong`.
        nonce: u64,
    },
    /// Answer to a [`Ping`](Frame::Ping) (v2+).
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
    /// Authenticate a producer connection to a resumable session
    /// (v2+). The server keeps a bounded per-(session, source) window
    /// of recently acked batch sequence numbers: a reconnecting client
    /// that replays its unacked suffix under the same session id gets
    /// already-applied batches re-acked instead of re-applied, so
    /// every acked event commits exactly once — which also makes
    /// multiple concurrent connections per source safe.
    HelloResume {
        /// Shared secret, as in [`Hello`](Frame::Hello).
        token: String,
        /// Tenant (session) name to attach to.
        tenant: String,
        /// Client-chosen session id; batch dedup is keyed by it.
        session: String,
    },
    /// Clean close (v2+). A client sends it before hanging up so the
    /// server can tell a deliberate close from a crashed peer; the
    /// server sends it to connections it is draining. No reply — the
    /// stream ends here.
    Goodbye {
        /// Why the sender is going away.
        reason: String,
    },
    /// Connection-level failure (v2+): the server can no longer trust
    /// this stream (corrupt framing, liveness deadline missed) and is
    /// closing it, but nothing was *refused* — a client with a
    /// resumable session should redial and replay. Contrast with
    /// [`Error`](Frame::Error), which is a terminal application
    /// refusal (bad token, unknown tenant, outside the resume window)
    /// that a retry would only repeat.
    Abort {
        /// Why the connection is being dropped.
        reason: String,
    },
}

/// Typed decode/transport failure. Corrupt bytes land here — never in
/// a panic.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes EOF mid-frame).
    Io(std::io::Error),
    /// The preamble's magic was not [`WIRE_MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    Version(u32),
    /// Frame payload checksum mismatch.
    Crc {
        /// CRC the frame carried.
        expected: u32,
        /// CRC of the bytes received.
        found: u32,
    },
    /// A length prefix larger than [`MAX_FRAME`].
    Oversized(u32),
    /// An unknown frame tag.
    UnknownFrame(u8),
    /// The payload failed to decode (truncated body, bad value tag,
    /// trailing bytes).
    Malformed(String),
    /// The peer refused the request (carries the `Error` frame's
    /// reason).
    Refused(String),
    /// The peer sent a well-formed frame that is invalid in the
    /// current protocol state.
    Unexpected(&'static str),
    /// The peer ended the stream deliberately with a
    /// [`Goodbye`](Frame::Goodbye) (carries its reason) — a clean
    /// close, not a failure.
    Closed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad wire magic {m:#010x}"),
            WireError::Version(v) => {
                write!(f, "unsupported wire version {v} (speaking {WIRE_VERSION})")
            }
            WireError::Crc { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: carried {expected:#010x}, computed {found:#010x}"
                )
            }
            WireError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte ceiling")
            }
            WireError::UnknownFrame(t) => write!(f, "unknown frame tag {t}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Refused(r) => write!(f, "refused by peer: {r}"),
            WireError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
            WireError::Closed(reason) => write!(f, "peer said goodbye: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<SnapshotError> for WireError {
    fn from(e: SnapshotError) -> WireError {
        WireError::Malformed(e.to_string())
    }
}

impl WireError {
    /// True when the failure is a closed/broken connection rather than
    /// corrupt data — the "peer went away" case handlers treat as a
    /// normal disconnect.
    pub fn is_disconnect(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            )
        )
    }

    /// True when the failure is a read/write deadline expiring rather
    /// than corrupt data or a dead socket — the idle tick the liveness
    /// layer acts on.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_OK: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_PUSH_BATCH: u8 = 4;
const TAG_PUSH_ACK: u8 = 5;
const TAG_SEAL: u8 = 6;
const TAG_SEAL_OK: u8 = 7;
const TAG_FLOW_CONTROL: u8 = 8;
const TAG_SUBSCRIBE: u8 = 9;
const TAG_ALARM_BATCH: u8 = 10;
const TAG_METRICS_REQ: u8 = 11;
const TAG_METRICS_REPLY: u8 = 12;
const TAG_SHUTDOWN: u8 = 13;
const TAG_SHUTDOWN_OK: u8 = 14;
const TAG_SUBSCRIBE_OK: u8 = 15;
const TAG_PING: u8 = 16;
const TAG_PONG: u8 = 17;
const TAG_HELLO_RESUME: u8 = 18;
const TAG_GOODBYE: u8 = 19;
const TAG_ABORT: u8 = 20;

/// Encodes one frame's payload (tag + body), without the length/CRC
/// envelope.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut w = StateWriter::new();
    match frame {
        Frame::Hello {
            token,
            tenant,
            role,
        } => {
            w.put_u8(TAG_HELLO);
            w.put_str(token);
            w.put_str(tenant);
            w.put_u8(match role {
                Role::Producer => 0,
                Role::Subscriber => 1,
            });
        }
        Frame::HelloOk { tenant, sources } => {
            w.put_u8(TAG_HELLO_OK);
            w.put_str(tenant);
            w.put_u32(sources.len() as u32);
            for s in sources {
                w.put_str(s);
            }
        }
        Frame::Error { reason } => {
            w.put_u8(TAG_ERROR);
            w.put_str(reason);
        }
        Frame::PushBatch { seq, source, bins } => {
            w.put_u8(TAG_PUSH_BATCH);
            w.put_u64(*seq);
            w.put_u32(*source);
            w.put_u32(bins.len() as u32);
            for bin in bins {
                w.put_bin(bin.as_ref());
            }
        }
        Frame::PushAck { seq, accepted } => {
            w.put_u8(TAG_PUSH_ACK);
            w.put_u64(*seq);
            w.put_u32(*accepted);
        }
        Frame::Seal => w.put_u8(TAG_SEAL),
        Frame::SealOk { phases } => {
            w.put_u8(TAG_SEAL_OK);
            w.put_u64(*phases);
        }
        Frame::FlowControl { source, state } => {
            w.put_u8(TAG_FLOW_CONTROL);
            w.put_u32(*source);
            w.put_u8(match state {
                FlowState::Open => 0,
                FlowState::Block => 1,
            });
        }
        Frame::SubscribeAlarms => w.put_u8(TAG_SUBSCRIBE),
        Frame::SubscribeOk => w.put_u8(TAG_SUBSCRIBE_OK),
        Frame::AlarmBatch { alarms } => {
            w.put_u8(TAG_ALARM_BATCH);
            w.put_u32(alarms.len() as u32);
            for a in alarms {
                w.put_u64(a.phase);
                w.put_str(&a.sink);
                w.put_value(&a.value);
            }
        }
        Frame::MetricsRequest => w.put_u8(TAG_METRICS_REQ),
        Frame::MetricsReply { json } => {
            w.put_u8(TAG_METRICS_REPLY);
            w.put_str(json);
        }
        Frame::Shutdown => w.put_u8(TAG_SHUTDOWN),
        Frame::ShutdownOk => w.put_u8(TAG_SHUTDOWN_OK),
        Frame::Ping { nonce } => {
            w.put_u8(TAG_PING);
            w.put_u64(*nonce);
        }
        Frame::Pong { nonce } => {
            w.put_u8(TAG_PONG);
            w.put_u64(*nonce);
        }
        Frame::HelloResume {
            token,
            tenant,
            session,
        } => {
            w.put_u8(TAG_HELLO_RESUME);
            w.put_str(token);
            w.put_str(tenant);
            w.put_str(session);
        }
        Frame::Goodbye { reason } => {
            w.put_u8(TAG_GOODBYE);
            w.put_str(reason);
        }
        Frame::Abort { reason } => {
            w.put_u8(TAG_ABORT);
            w.put_str(reason);
        }
    }
    w.into_bytes()
}

/// Decodes one frame payload (as produced by [`encode`]). Trailing
/// bytes are an error: a frame is exactly its body, nothing more.
pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = StateReader::new(payload);
    let tag = r.get_u8()?;
    let frame = match tag {
        TAG_HELLO => {
            let token = r.get_str()?;
            let tenant = r.get_str()?;
            let role = match r.get_u8()? {
                0 => Role::Producer,
                1 => Role::Subscriber,
                other => {
                    return Err(WireError::Malformed(format!("unknown role tag {other}")));
                }
            };
            Frame::Hello {
                token,
                tenant,
                role,
            }
        }
        TAG_HELLO_OK => {
            let tenant = r.get_str()?;
            let n = checked_count(r.get_u32()?, payload.len())?;
            let mut sources = Vec::with_capacity(n);
            for _ in 0..n {
                sources.push(r.get_str()?);
            }
            Frame::HelloOk { tenant, sources }
        }
        TAG_ERROR => Frame::Error {
            reason: r.get_str()?,
        },
        TAG_PUSH_BATCH => {
            let seq = r.get_u64()?;
            let source = r.get_u32()?;
            let n = checked_count(r.get_u32()?, payload.len())?;
            let mut bins = Vec::with_capacity(n);
            for _ in 0..n {
                bins.push(r.get_opt_value()?);
            }
            Frame::PushBatch { seq, source, bins }
        }
        TAG_PUSH_ACK => Frame::PushAck {
            seq: r.get_u64()?,
            accepted: r.get_u32()?,
        },
        TAG_SEAL => Frame::Seal,
        TAG_SEAL_OK => Frame::SealOk {
            phases: r.get_u64()?,
        },
        TAG_FLOW_CONTROL => {
            let source = r.get_u32()?;
            let state = match r.get_u8()? {
                0 => FlowState::Open,
                1 => FlowState::Block,
                other => {
                    return Err(WireError::Malformed(format!("unknown flow state {other}")));
                }
            };
            Frame::FlowControl { source, state }
        }
        TAG_SUBSCRIBE => Frame::SubscribeAlarms,
        TAG_SUBSCRIBE_OK => Frame::SubscribeOk,
        TAG_ALARM_BATCH => {
            let n = checked_count(r.get_u32()?, payload.len())?;
            let mut alarms = Vec::with_capacity(n);
            for _ in 0..n {
                alarms.push(WireAlarm {
                    phase: r.get_u64()?,
                    sink: r.get_str()?,
                    value: r.get_value()?,
                });
            }
            Frame::AlarmBatch { alarms }
        }
        TAG_METRICS_REQ => Frame::MetricsRequest,
        TAG_METRICS_REPLY => Frame::MetricsReply { json: r.get_str()? },
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_SHUTDOWN_OK => Frame::ShutdownOk,
        TAG_PING => Frame::Ping {
            nonce: r.get_u64()?,
        },
        TAG_PONG => Frame::Pong {
            nonce: r.get_u64()?,
        },
        TAG_HELLO_RESUME => Frame::HelloResume {
            token: r.get_str()?,
            tenant: r.get_str()?,
            session: r.get_str()?,
        },
        TAG_GOODBYE => Frame::Goodbye {
            reason: r.get_str()?,
        },
        TAG_ABORT => Frame::Abort {
            reason: r.get_str()?,
        },
        other => return Err(WireError::UnknownFrame(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Rejects element counts that could not possibly fit in the payload —
/// a flipped count byte must not trigger a giant allocation before the
/// per-element reads fail.
fn checked_count(n: u32, payload_len: usize) -> Result<usize, WireError> {
    // Every encoded element costs at least one byte.
    if n as usize > payload_len {
        return Err(WireError::Malformed(format!(
            "element count {n} exceeds payload size {payload_len}"
        )));
    }
    Ok(n as usize)
}

/// Writes the 8-byte connection preamble (magic + [`WIRE_VERSION`]) as
/// a single write, so an injected duplication or tear operates on the
/// whole preamble rather than splitting the magic from the version.
pub fn write_preamble(w: &mut impl Write) -> Result<(), WireError> {
    write_preamble_version(w, WIRE_VERSION)
}

/// Writes a preamble claiming a specific (still-supported) `version` —
/// how the byte-pinned v1 fixture stays writable after a bump.
pub fn write_preamble_version(w: &mut impl Write, version: u32) -> Result<(), WireError> {
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::Version(version));
    }
    let mut buf = [0u8; 8];
    buf[..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    buf[4..].copy_from_slice(&version.to_le_bytes());
    w.write_all(&buf)?;
    Ok(())
}

/// Reads and validates the peer's preamble; returns the version the
/// peer speaks (any of [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`]). The
/// caller must not send frames newer than that version.
pub fn read_preamble(r: &mut impl Read) -> Result<u32, WireError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    let magic = u32::from_le_bytes(buf);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    r.read_exact(&mut buf)?;
    let version = u32::from_le_bytes(buf);
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::Version(version));
    }
    Ok(version)
}

/// Writes one frame (length + payload + CRC) and flushes. The whole
/// envelope goes down in a single write, so a transport that tears or
/// duplicates a write operates on frame boundaries — a duplicated
/// frame is two decodable copies, a torn one is a discarded prefix.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let payload = encode(frame);
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(WireError::Oversized(payload.len() as u32));
    }
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&ec_store::crc32(&payload).to_le_bytes());
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// An incremental frame reader that survives read deadlines.
///
/// A bare [`read_frame`] over a socket with a read timeout desyncs the
/// stream: a timeout firing after `read_exact` consumed half a length
/// prefix loses those bytes. `FrameReader` accumulates partial bytes
/// across calls instead — [`read_from`](Self::read_from) returns
/// `Ok(None)` on a deadline tick and resumes exactly where it left
/// off, which is what lets the server run idle deadlines and
/// heartbeats on the same connection it is parsing.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes the current envelope needs in `buf`: 4 until the length
    /// prefix is complete, then `8 + payload_len`.
    want: usize,
}

impl FrameReader {
    /// A reader with no partial state.
    pub fn new() -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            want: 4,
        }
    }

    /// True while bytes of an incomplete frame are pending — a peer
    /// that goes silent here is mid-frame, not idle.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads until one complete frame is available (`Ok(Some)`), the
    /// read deadline expires (`Ok(None)`; partial progress is kept for
    /// the next call), or the stream fails. EOF — even on a frame
    /// boundary — is `WireError::Io(UnexpectedEof)`, the normal
    /// disconnect the caller classifies with
    /// [`WireError::is_disconnect`].
    pub fn read_from(&mut self, r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        loop {
            if self.want == 4 && self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
                if len > MAX_FRAME {
                    self.reset();
                    return Err(WireError::Oversized(len));
                }
                self.want = 8 + len as usize;
            }
            if self.want > 4 && self.buf.len() >= self.want {
                let payload_end = self.want - 4;
                let expected =
                    u32::from_le_bytes(self.buf[payload_end..self.want].try_into().unwrap());
                let found = ec_store::crc32(&self.buf[4..payload_end]);
                if expected != found {
                    self.reset();
                    return Err(WireError::Crc { expected, found });
                }
                let frame = decode(&self.buf[4..payload_end]);
                // Keep any bytes of the next frame already buffered.
                self.buf.drain(..self.want);
                self.want = 4;
                match frame {
                    Ok(f) => return Ok(Some(f)),
                    Err(e) => {
                        self.reset();
                        return Err(e);
                    }
                }
            }
            let mut chunk = [0u8; 8192];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed",
                    )));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.want = 4;
    }
}

/// Reads one frame, validating length, CRC, and payload.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    let len = u32::from_le_bytes(buf);
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    r.read_exact(&mut buf)?;
    let expected = u32::from_le_bytes(buf);
    let found = ec_store::crc32(&payload);
    if expected != found {
        return Err(WireError::Crc { expected, found });
    }
    decode(&payload)
}
