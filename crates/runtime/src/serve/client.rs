//! A blocking client for the `ec serve` wire protocol — the loadgen
//! (`ec-bench`), the `ec push` CLI, the examples, and the test battery
//! all speak through this one implementation.

use super::wire::{self, FlowState, Frame, Role, WireAlarm, WireError};
use ec_events::Value;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One authenticated wire connection (producer or subscriber).
///
/// The protocol is synchronous per connection: a producer sends a
/// frame and reads until its reply arrives, treating interleaved
/// [`FlowControl`](Frame::FlowControl) frames as backpressure
/// bookkeeping (counted in [`blocks_seen`](Self::blocks_seen)) rather
/// than replies. Wire-level batching
/// ([`push_batch`](Self::push_batch)) amortizes the round trip over
/// many events.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    tenant: String,
    sources: Vec<String>,
    next_seq: u64,
    blocks_seen: u64,
}

impl WireClient {
    /// Connects, exchanges preambles, and authenticates to `tenant` as
    /// `role`. A refusal (bad token, unknown tenant, version skew)
    /// surfaces as [`WireError::Refused`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        token: &str,
        tenant: &str,
        role: Role,
    ) -> Result<WireClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        wire::write_preamble(&mut writer)?;
        writer.flush().map_err(WireError::Io)?;
        wire::write_frame(
            &mut writer,
            &Frame::Hello {
                token: token.into(),
                tenant: tenant.into(),
                role,
            },
        )?;
        wire::read_preamble(&mut reader)?;
        match wire::read_frame(&mut reader)? {
            Frame::HelloOk { tenant, sources } => Ok(WireClient {
                reader,
                writer,
                tenant,
                sources,
                next_seq: 0,
                blocks_seen: 0,
            }),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected HelloOk or Error")),
        }
    }

    /// The tenant this connection serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tenant's live sources in wiring order —
    /// [`push_batch`](Self::push_batch)'s `source` indexes this list.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// Index of a source by name.
    pub fn source_index(&self, name: &str) -> Option<u32> {
        self.sources
            .iter()
            .position(|s| s == name)
            .map(|i| i as u32)
    }

    /// `FlowControl(Block)` frames observed so far — each one is a
    /// backpressure episode the server surfaced explicitly.
    pub fn blocks_seen(&self) -> u64 {
        self.blocks_seen
    }

    /// Pushes a batch of events for one source and waits for the ack.
    /// Returns the number of events the server accepted into the
    /// source's striped buffer.
    pub fn push_batch(&mut self, source: u32, values: &[Value]) -> Result<u32, WireError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bins = values.iter().cloned().map(Some).collect();
        wire::write_frame(&mut self.writer, &Frame::PushBatch { seq, source, bins })?;
        loop {
            match self.read_counted()? {
                Frame::PushAck { seq: got, accepted } => {
                    if got != seq {
                        return Err(WireError::Unexpected("ack for a different batch"));
                    }
                    return Ok(accepted);
                }
                Frame::FlowControl { state, .. } => {
                    if state == FlowState::Block {
                        self.blocks_seen += 1;
                    }
                }
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected PushAck")),
            }
        }
    }

    /// Seals the tenant's current epoch; returns the phases committed.
    pub fn seal(&mut self) -> Result<u64, WireError> {
        wire::write_frame(&mut self.writer, &Frame::Seal)?;
        loop {
            match self.read_counted()? {
                Frame::SealOk { phases } => return Ok(phases),
                Frame::FlowControl { state, .. } => {
                    if state == FlowState::Block {
                        self.blocks_seen += 1;
                    }
                }
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected SealOk")),
            }
        }
    }

    /// Fetches the tenant's metrics row as JSON.
    pub fn metrics_json(&mut self) -> Result<String, WireError> {
        wire::write_frame(&mut self.writer, &Frame::MetricsRequest)?;
        match self.read_counted()? {
            Frame::MetricsReply { json } => Ok(json),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected MetricsReply")),
        }
    }

    /// Asks the server to shut down; resolves once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.writer, &Frame::Shutdown)?;
        match self.read_counted()? {
            Frame::ShutdownOk => Ok(()),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected ShutdownOk")),
        }
    }

    /// Starts the alarm stream on a subscriber connection; follow with
    /// [`next_alarms`](Self::next_alarms). Resolves once the server has
    /// registered the subscription, so any phase retired after this
    /// returns is guaranteed to be delivered (or the connection
    /// dropped) — no registration race against producers.
    pub fn subscribe(&mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.writer, &Frame::SubscribeAlarms)?;
        match self.read_counted()? {
            Frame::SubscribeOk => Ok(()),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected SubscribeOk")),
        }
    }

    /// Blocks for the next batch of retired-phase alarms, in serial
    /// order. A server-side disconnect (e.g. this reader was too slow)
    /// surfaces as [`WireError::Refused`] or a disconnect I/O error.
    pub fn next_alarms(&mut self) -> Result<Vec<WireAlarm>, WireError> {
        match self.read_counted()? {
            Frame::AlarmBatch { alarms } => Ok(alarms),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected AlarmBatch")),
        }
    }

    fn read_counted(&mut self) -> Result<Frame, WireError> {
        wire::read_frame(&mut self.reader)
    }
}
