//! A blocking client for the `ec serve` wire protocol — the loadgen
//! (`ec-bench`), the `ec push` CLI, the examples, and the test battery
//! all speak through this one implementation.
//!
//! ## Robustness
//!
//! A client built with a [`RetryPolicy`] survives the network: a
//! dropped, reset, or black-holed connection is redialed with bounded
//! exponential backoff + jitter, the session is resumed via
//! [`HelloResume`](Frame::HelloResume), and the in-flight frame is
//! replayed. The server's per-session dedup window re-acks batches
//! that were applied before the link died, so **every acked event
//! commits exactly once** — a retried `push_batch` can never
//! double-apply. Operations carry a deadline
//! ([`WireClientBuilder::op_deadline`]) so a black-holed peer fails
//! fast instead of wedging the caller; server `Ping`s received while
//! waiting are answered and reset the deadline.

use super::net::{real_net, NetConn, NetIo};
use super::wire::{self, FlowState, Frame, Role, WireAlarm, WireError};
use ec_events::Value;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read-deadline granularity of a retrying client: how often a blocked
/// read wakes to check its op deadline.
const RETRY_TICK: Duration = Duration::from_millis(50);

/// Bounded exponential backoff with jitter for reconnects.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Dial attempts per reconnect episode (including the first);
    /// default 8.
    pub max_attempts: u32,
    /// First backoff step; attempt `n` waits `base * 2^(n-1)`, capped
    /// (attempt 0 redials immediately). Default 25ms.
    pub base: Duration,
    /// Backoff ceiling; default 1s.
    pub cap: Duration,
    /// Seeds the jitter (0.5×–1.5× of the capped step) and the
    /// auto-generated session id — deterministic for tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0x5EED_CAFE,
        }
    }
}

/// splitmix64 step — the same generator `FaultPlan`/`NetFaultPlan`
/// use, good enough for backoff jitter.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn backoff(policy: &RetryPolicy, attempt: u32, rng: &mut u64) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let exp = policy.base.saturating_mul(1u32 << (attempt - 1).min(16));
    let jitter = 0.5 + (splitmix(rng) % 1024) as f64 / 1024.0;
    exp.min(policy.cap).mul_f64(jitter)
}

/// A process-unique producer session id: pid + counter + timestamp so
/// a restarted process never collides with its predecessor's window.
fn auto_session(seed: u64) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Relaxed);
    let t = std::time::SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    format!("sess-{}-{}-{:x}", std::process::id(), n, t ^ seed)
}

fn deadline_error() -> WireError {
    WireError::Io(io::Error::new(
        io::ErrorKind::TimedOut,
        "op deadline exceeded",
    ))
}

/// Connects one socket and completes the handshake. Returns the
/// connection, the server's wire version, and the confirmed tenant +
/// source list.
#[allow(clippy::type_complexity)]
fn dial_once(
    net: &dyn NetIo,
    addr: &str,
    token: &str,
    tenant: &str,
    role: Role,
    session: Option<&str>,
    timeout: Option<Duration>,
) -> Result<(Box<dyn NetConn>, u32, String, Vec<String>), WireError> {
    let mut conn = net.connect(addr)?;
    let _ = conn.set_read_timeout(timeout);
    let _ = conn.set_write_timeout(timeout);
    // One combined write: preamble + hello leave in a single syscall,
    // so an injected mid-write reset tears them as one unit.
    let mut opening = Vec::new();
    wire::write_preamble(&mut opening)?;
    let hello = match session {
        Some(id) => Frame::HelloResume {
            token: token.into(),
            tenant: tenant.into(),
            session: id.into(),
        },
        None => Frame::Hello {
            token: token.into(),
            tenant: tenant.into(),
            role,
        },
    };
    wire::write_frame(&mut opening, &hello)?;
    conn.write_all(&opening).map_err(WireError::Io)?;
    conn.flush().map_err(WireError::Io)?;
    let server_version = wire::read_preamble(&mut conn)?;
    match wire::read_frame(&mut conn)? {
        Frame::HelloOk { tenant, sources } => Ok((conn, server_version, tenant, sources)),
        Frame::Error { reason } => Err(WireError::Refused(reason)),
        Frame::Abort { reason } => Err(abort_error(reason)),
        _ => Err(WireError::Unexpected("expected HelloOk or Error")),
    }
}

/// A server [`Frame::Abort`] as the disconnect it represents: the
/// stream is gone, nothing was refused, retrying with a resumable
/// session is safe. `ConnectionAborted` keeps it inside
/// [`WireError::is_disconnect`], so every retry path treats it like a
/// dropped socket.
fn abort_error(reason: String) -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionAborted,
        format!("server aborted the connection: {reason}"),
    ))
}

/// Configuration for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct WireClientBuilder {
    token: String,
    session: Option<String>,
    retry: Option<RetryPolicy>,
    net: Arc<dyn NetIo>,
    op_deadline: Duration,
}

impl Default for WireClientBuilder {
    fn default() -> WireClientBuilder {
        WireClientBuilder {
            token: String::new(),
            session: None,
            retry: None,
            net: real_net(),
            op_deadline: Duration::from_secs(10),
        }
    }
}

impl WireClientBuilder {
    /// Authentication token sent in the Hello.
    pub fn token(mut self, token: impl Into<String>) -> Self {
        self.token = token.into();
        self
    }

    /// Names the producer session explicitly (otherwise a retrying
    /// producer auto-generates a unique id). Two clients sharing a
    /// session id share one dedup window — safe, by design.
    pub fn session(mut self, id: impl Into<String>) -> Self {
        self.session = Some(id.into());
        self
    }

    /// Enables reconnect-with-resume under this policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Routes the connection through this transport plane (default
    /// [`super::RealNet`]); the chaos matrix injects a
    /// [`super::FaultNet`] here.
    pub fn net(mut self, net: Arc<dyn NetIo>) -> Self {
        self.net = net;
        self
    }

    /// Per-operation deadline when retrying (default 10s): an
    /// operation with no live reply — frames from the server, pings
    /// included, reset it — fails over to a reconnect.
    pub fn op_deadline(mut self, d: Duration) -> Self {
        self.op_deadline = d.max(Duration::from_millis(1));
        self
    }

    /// Connects, exchanges preambles, and authenticates to `tenant` as
    /// `role`. A refusal (bad token, unknown tenant, version skew,
    /// draining) surfaces as [`WireError::Refused`] and is never
    /// retried.
    pub fn connect(
        self,
        addr: impl ToString,
        tenant: &str,
        role: Role,
    ) -> Result<WireClient, WireError> {
        let addr = addr.to_string();
        let session = match (&self.retry, role, self.session) {
            // A retrying producer without a session could double-apply
            // a replayed batch; always give it one.
            (Some(p), Role::Producer, None) => Some(auto_session(p.seed)),
            (_, _, session) => session,
        };
        let mut rng = self.retry.as_ref().map_or(0, |p| p.seed);
        let handshake_timeout = self.retry.as_ref().map(|_| self.op_deadline);
        let mut attempt = 0;
        let (conn, server_version, tenant_ok, sources) = loop {
            match dial_once(
                self.net.as_ref(),
                &addr,
                &self.token,
                tenant,
                role,
                session.as_deref(),
                handshake_timeout,
            ) {
                Ok(dialed) => break dialed,
                Err(e @ (WireError::Refused(_) | WireError::Closed(_))) => return Err(e),
                Err(e) => {
                    let Some(policy) = &self.retry else {
                        return Err(e);
                    };
                    attempt += 1;
                    if attempt >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(backoff(policy, attempt, &mut rng));
                }
            }
        };
        let mut client = WireClient {
            net: self.net,
            conn,
            fr: wire::FrameReader::new(),
            addr,
            token: self.token,
            tenant_req: tenant.to_string(),
            role,
            session,
            retry: self.retry,
            op_deadline: self.op_deadline,
            rng,
            server_version,
            tenant: tenant_ok,
            sources,
            next_seq: 0,
            blocks_seen: 0,
            reconnects: 0,
            subscribed: false,
            closed: false,
        };
        client.steady_state_timeouts();
        Ok(client)
    }
}

/// One authenticated wire connection (producer or subscriber).
///
/// The protocol is synchronous per connection: a producer sends a
/// frame and reads until its reply arrives, treating interleaved
/// [`FlowControl`](Frame::FlowControl) frames as backpressure
/// bookkeeping (counted in [`blocks_seen`](Self::blocks_seen)) rather
/// than replies. Wire-level batching
/// ([`push_batch`](Self::push_batch)) amortizes the round trip over
/// many events. Server [`Ping`](Frame::Ping)s are answered
/// transparently inside every read. See the module docs for the
/// reconnect/resume behavior of a client built
/// [`with_retry`](Self::with_retry).
pub struct WireClient {
    net: Arc<dyn NetIo>,
    conn: Box<dyn NetConn>,
    fr: wire::FrameReader,
    addr: String,
    token: String,
    /// Tenant name as requested (redials resend this one).
    tenant_req: String,
    role: Role,
    session: Option<String>,
    retry: Option<RetryPolicy>,
    op_deadline: Duration,
    rng: u64,
    server_version: u32,
    tenant: String,
    sources: Vec<String>,
    next_seq: u64,
    blocks_seen: u64,
    reconnects: u64,
    subscribed: bool,
    closed: bool,
}

impl WireClient {
    /// A fresh configuration.
    pub fn builder() -> WireClientBuilder {
        WireClientBuilder::default()
    }

    /// Connects, exchanges preambles, and authenticates to `tenant` as
    /// `role`. A refusal (bad token, unknown tenant, version skew)
    /// surfaces as [`WireError::Refused`].
    pub fn connect(
        addr: impl ToString,
        token: &str,
        tenant: &str,
        role: Role,
    ) -> Result<WireClient, WireError> {
        WireClient::builder()
            .token(token)
            .connect(addr, tenant, role)
    }

    /// Connects with reconnect-with-resume enabled: dropped links are
    /// redialed under `policy`, the producer session is resumed, and
    /// the in-flight frame replayed — acked events commit exactly
    /// once.
    pub fn with_retry(
        addr: impl ToString,
        token: &str,
        tenant: &str,
        role: Role,
        policy: RetryPolicy,
    ) -> Result<WireClient, WireError> {
        WireClient::builder()
            .token(token)
            .retry(policy)
            .connect(addr, tenant, role)
    }

    /// The tenant this connection serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tenant's live sources in wiring order —
    /// [`push_batch`](Self::push_batch)'s `source` indexes this list.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// Index of a source by name.
    pub fn source_index(&self, name: &str) -> Option<u32> {
        self.sources
            .iter()
            .position(|s| s == name)
            .map(|i| i as u32)
    }

    /// `FlowControl(Block)` frames observed so far — each one is a
    /// backpressure episode the server surfaced explicitly.
    pub fn blocks_seen(&self) -> u64 {
        self.blocks_seen
    }

    /// The producer session id, if this client carries one.
    pub fn session(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// Successful reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The server's negotiated wire version.
    pub fn server_version(&self) -> u32 {
        self.server_version
    }

    /// Pushes a batch of events for one source and waits for the ack.
    /// Returns the number of events the server accepted into the
    /// source's striped buffer. With retry enabled, a dropped link is
    /// redialed and the batch replayed; the server's session window
    /// guarantees it is applied exactly once either way.
    pub fn push_batch(&mut self, source: u32, values: &[Value]) -> Result<u32, WireError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bins = values.iter().cloned().map(Some).collect();
        let frame = Frame::PushBatch { seq, source, bins };
        self.send_op(&frame)?;
        loop {
            match self.reply_or_replay(&frame)? {
                Frame::PushAck { seq: got, accepted } => {
                    if got == seq {
                        return Ok(accepted);
                    }
                    if got > seq {
                        return Err(WireError::Unexpected("ack for a future batch"));
                    }
                    // got < seq: a stale ack from a duplicated
                    // delivery of an earlier frame; skip it.
                }
                Frame::FlowControl { state, .. } => {
                    if state == FlowState::Block {
                        self.blocks_seen += 1;
                    }
                }
                Frame::SealOk { .. } => {
                    // Stale seal ack (duplicated delivery); skip.
                }
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected PushAck")),
            }
        }
    }

    /// Seals the tenant's current epoch; returns the phases committed.
    pub fn seal(&mut self) -> Result<u64, WireError> {
        let frame = Frame::Seal;
        self.send_op(&frame)?;
        loop {
            match self.reply_or_replay(&frame)? {
                Frame::SealOk { phases } => return Ok(phases),
                Frame::FlowControl { state, .. } => {
                    if state == FlowState::Block {
                        self.blocks_seen += 1;
                    }
                }
                Frame::PushAck { .. } => {
                    // Stale push ack (duplicated delivery); skip.
                }
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected SealOk")),
            }
        }
    }

    /// Fetches the tenant's metrics row as JSON.
    pub fn metrics_json(&mut self) -> Result<String, WireError> {
        wire::write_frame(&mut self.conn, &Frame::MetricsRequest)?;
        match self.next_reply()? {
            Frame::MetricsReply { json } => Ok(json),
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected MetricsReply")),
        }
    }

    /// Asks the server to shut down; resolves once acknowledged. Never
    /// retried — redialing a stopping server is pointless.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.conn, &Frame::Shutdown)?;
        loop {
            match self.next_reply()? {
                Frame::ShutdownOk => {
                    self.closed = true;
                    return Ok(());
                }
                Frame::FlowControl { .. } | Frame::PushAck { .. } => {}
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected ShutdownOk")),
            }
        }
    }

    /// Starts the alarm stream on a subscriber connection; follow with
    /// [`next_alarms`](Self::next_alarms). Resolves once the server has
    /// registered the subscription, so any phase retired after this
    /// returns is guaranteed to be delivered (or the connection
    /// dropped) — no registration race against producers.
    pub fn subscribe(&mut self) -> Result<(), WireError> {
        wire::write_frame(&mut self.conn, &Frame::SubscribeAlarms)?;
        match self.next_reply()? {
            Frame::SubscribeOk => {
                self.subscribed = true;
                Ok(())
            }
            Frame::Error { reason } => Err(WireError::Refused(reason)),
            _ => Err(WireError::Unexpected("expected SubscribeOk")),
        }
    }

    /// Blocks for the next batch of retired-phase alarms, in serial
    /// order. A server-side disconnect (e.g. this reader was too slow)
    /// surfaces as [`WireError::Refused`] or a disconnect I/O error; a
    /// drain-complete server says goodbye, surfaced as
    /// [`WireError::Closed`].
    pub fn next_alarms(&mut self) -> Result<Vec<WireAlarm>, WireError> {
        loop {
            let reply = match self.next_reply() {
                Ok(f) => f,
                Err(e) if self.can_retry(&e) => {
                    self.reconnect_and_replay(None)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match reply {
                Frame::AlarmBatch { alarms } => return Ok(alarms),
                Frame::Error { reason } => return Err(WireError::Refused(reason)),
                _ => return Err(WireError::Unexpected("expected AlarmBatch")),
            }
        }
    }

    /// Steady-state socket deadlines: a retrying client ticks its
    /// reads so op deadlines are enforced; a plain client blocks
    /// forever, as before.
    fn steady_state_timeouts(&mut self) {
        if self.retry.is_some() {
            let _ = self
                .conn
                .set_read_timeout(Some(RETRY_TICK.min(self.op_deadline)));
            let _ = self.conn.set_write_timeout(Some(self.op_deadline));
        } else {
            let _ = self.conn.set_read_timeout(None);
            let _ = self.conn.set_write_timeout(None);
        }
    }

    /// Whether an error is worth a reconnect: transport trouble is,
    /// an explicit server refusal or goodbye is not.
    fn can_retry(&self, e: &WireError) -> bool {
        self.retry.is_some() && !matches!(e, WireError::Refused(_) | WireError::Closed(_))
    }

    /// Reads the next application frame, answering `Ping`s and
    /// swallowing `Pong`s transparently. Under retry, enforces the op
    /// deadline — any frame from the server (pings included) resets
    /// it, so a flow-blocked-but-alive server never trips it.
    fn next_reply(&mut self) -> Result<Frame, WireError> {
        let mut last_sign_of_life = Instant::now();
        loop {
            match self.fr.read_from(&mut self.conn) {
                Ok(Some(frame)) => {
                    last_sign_of_life = Instant::now();
                    match frame {
                        Frame::Ping { nonce } => {
                            wire::write_frame(&mut self.conn, &Frame::Pong { nonce })?;
                        }
                        Frame::Pong { .. } => {}
                        Frame::Goodbye { reason } => {
                            self.closed = true;
                            return Err(WireError::Closed(reason));
                        }
                        // The server dropped a stream it could no
                        // longer trust; nothing was refused. Surface
                        // it as the disconnect it is, so a retrying
                        // client redials and resumes.
                        Frame::Abort { reason } => return Err(abort_error(reason)),
                        other => return Ok(other),
                    }
                }
                Ok(None) => {
                    if self.retry.is_some() && last_sign_of_life.elapsed() >= self.op_deadline {
                        return Err(deadline_error());
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes one operation frame, failing over to a reconnect (which
    /// replays nothing — the caller's loop rewrites) when retryable.
    fn send_op(&mut self, frame: &Frame) -> Result<(), WireError> {
        loop {
            match wire::write_frame(&mut self.conn, frame) {
                Ok(()) => return Ok(()),
                Err(e) if self.can_retry(&e) => self.reconnect_and_replay(None)?,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads the reply to `inflight`, failing over to reconnect +
    /// replay when retryable.
    fn reply_or_replay(&mut self, inflight: &Frame) -> Result<Frame, WireError> {
        loop {
            match self.next_reply() {
                Ok(f) => return Ok(f),
                Err(e) if self.can_retry(&e) => self.reconnect_and_replay(Some(inflight))?,
                Err(e) => return Err(e),
            }
        }
    }

    /// Redials under the retry policy, resumes the session, restores a
    /// subscription if one was active, and replays the in-flight
    /// frame. Refusals and goodbyes abort immediately; transport
    /// errors burn an attempt and back off.
    fn reconnect_and_replay(&mut self, inflight: Option<&Frame>) -> Result<(), WireError> {
        let Some(policy) = self.retry.clone() else {
            return Err(WireError::Unexpected("reconnect without a retry policy"));
        };
        let mut last = deadline_error();
        for attempt in 0..policy.max_attempts.max(1) {
            let wait = backoff(&policy, attempt, &mut self.rng);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            let dialed = dial_once(
                self.net.as_ref(),
                &self.addr,
                &self.token,
                &self.tenant_req,
                self.role,
                self.session.as_deref(),
                Some(self.op_deadline),
            );
            let (conn, version, tenant, sources) = match dialed {
                Ok(d) => d,
                Err(e @ (WireError::Refused(_) | WireError::Closed(_))) => return Err(e),
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            self.conn = conn;
            self.fr = wire::FrameReader::new();
            self.server_version = version;
            self.tenant = tenant;
            self.sources = sources;
            self.steady_state_timeouts();
            if self.subscribed {
                if wire::write_frame(&mut self.conn, &Frame::SubscribeAlarms).is_err() {
                    last = deadline_error();
                    continue;
                }
                match self.await_subscribe_ok() {
                    Ok(()) => {}
                    Err(e @ (WireError::Refused(_) | WireError::Closed(_))) => return Err(e),
                    Err(e) => {
                        last = e;
                        continue;
                    }
                }
            }
            if let Some(frame) = inflight {
                if let Err(e) = wire::write_frame(&mut self.conn, frame) {
                    last = e;
                    continue;
                }
            }
            self.reconnects += 1;
            return Ok(());
        }
        Err(last)
    }

    /// Waits for `SubscribeOk` on a fresh connection, answering pings,
    /// bounded by the op deadline.
    fn await_subscribe_ok(&mut self) -> Result<(), WireError> {
        let started = Instant::now();
        loop {
            match self.fr.read_from(&mut self.conn) {
                Ok(Some(Frame::SubscribeOk)) => return Ok(()),
                Ok(Some(Frame::Ping { nonce })) => {
                    wire::write_frame(&mut self.conn, &Frame::Pong { nonce })?;
                }
                Ok(Some(Frame::Pong { .. })) => {}
                Ok(Some(Frame::Error { reason })) => return Err(WireError::Refused(reason)),
                Ok(Some(Frame::Abort { reason })) => return Err(abort_error(reason)),
                Ok(Some(Frame::Goodbye { reason })) => {
                    self.closed = true;
                    return Err(WireError::Closed(reason));
                }
                Ok(Some(_)) => return Err(WireError::Unexpected("expected SubscribeOk")),
                Ok(None) => {
                    if started.elapsed() >= self.op_deadline {
                        return Err(deadline_error());
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for WireClient {
    /// Says goodbye before closing so the server counts a clean close,
    /// not a crash. v1 servers don't know the frame; they just see the
    /// FIN.
    fn drop(&mut self) {
        if !self.closed {
            if self.server_version >= 2 {
                let _ = wire::write_frame(
                    &mut self.conn,
                    &Frame::Goodbye {
                        reason: "client closing".into(),
                    },
                );
            }
            let _ = self.conn.shutdown_both();
        }
    }
}
