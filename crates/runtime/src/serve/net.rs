//! The wire plane's injectable transport.
//!
//! Every socket the serve layer touches — the listener, accepted
//! connections, client dials — goes through [`NetIo`]/[`NetConn`],
//! mirroring the store's `StoreIo` plane. Production traffic uses
//! [`RealNet`] (std TCP with per-connection read/write deadlines); the
//! chaos matrix wraps it in [`FaultNet`], which injects network
//! misbehaviour from a deterministic [`NetFaultPlan`]: added latency,
//! connection resets that tear a write mid-frame, sticky black-holes
//! (writes vanish, reads stall — the half-open peer), duplicated
//! delivery of a whole write, and *kill-at-Nth-op* — at that operation
//! every connection open at the time dies, exactly as a network blip
//! would kill them, while connections dialed afterwards are clean.
//! Re-running the same plan replays the same failure, so every
//! reconnect/resume path is a reproducible test case.

use parking_lot::Mutex;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// One bidirectional byte stream (a connection). `Read`/`Write` carry
/// the data; the extra methods are the socket controls the wire plane
/// needs: deadlines, a second handle for the reader/writer split, and
/// a hard close.
pub trait NetConn: Read + Write + Send {
    /// Sets the read deadline: reads block at most this long, then
    /// fail with `WouldBlock`/`TimedOut`. `None` blocks forever.
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// Sets the write deadline (a black-holed peer's full send buffer
    /// surfaces as `TimedOut` instead of a silent stall).
    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// A second handle to the same connection (shared fault state).
    fn try_clone_conn(&self) -> io::Result<Box<dyn NetConn>>;
    /// Shuts both directions down; concurrent reads unblock with EOF.
    fn shutdown_both(&self) -> io::Result<()>;
}

/// A bound listener producing [`NetConn`]s.
pub trait NetListener: Send {
    /// Blocks for the next inbound connection.
    fn accept(&self) -> io::Result<Box<dyn NetConn>>;
    /// The bound address.
    fn local_addr(&self) -> io::Result<SocketAddr>;
}

/// The transport operations the wire plane performs. Implementations
/// are shared (`Arc<dyn NetIo>`): server and clients under test route
/// through one plane so a plan's operation count covers both sides.
pub trait NetIo: Send + Sync + fmt::Debug {
    /// Binds a listener at `addr` (port 0 picks a free one).
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>>;
    /// Dials `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>>;
}

/// The production [`NetIo`]: std TCP with `TCP_NODELAY`, no failures
/// beyond the operating system's own.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealNet;

/// A shared handle to the production transport.
pub fn real_net() -> Arc<dyn NetIo> {
    Arc::new(RealNet)
}

struct RealConn {
    stream: TcpStream,
}

impl Read for RealConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for RealConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl NetConn for RealConn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(t)
    }

    fn try_clone_conn(&self) -> io::Result<Box<dyn NetConn>> {
        Ok(Box::new(RealConn {
            stream: self.stream.try_clone()?,
        }))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Both)
    }
}

struct RealListener {
    listener: TcpListener,
}

impl NetListener for RealListener {
    fn accept(&self) -> io::Result<Box<dyn NetConn>> {
        let (stream, _) = self.listener.accept()?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(RealConn { stream }))
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

impl NetIo for RealNet {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        Ok(Box::new(RealListener {
            listener: TcpListener::bind(addr)?,
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Box::new(RealConn { stream }))
    }
}

/// One injectable network misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The operation succeeds after sleeping this many milliseconds.
    Delay(u64),
    /// A write delivers roughly half its buffer, then the connection
    /// dies with `ConnectionReset` — the torn mid-frame send. On a
    /// read or connect, a plain reset. The connection stays dead.
    Reset,
    /// The connection goes half-open, stickily: writes report success
    /// but vanish, reads see silence until the read deadline. The peer
    /// cannot tell — exactly the wedge the liveness layer must reap.
    BlackHole,
    /// A write is delivered twice in full. Because frames go down in
    /// single writes, the peer sees a duplicated, decodable frame —
    /// the at-least-once delivery resume dedup must absorb.
    Duplicate,
}

/// A deterministic schedule of injected network faults, keyed by the
/// global operation index ([`FaultNet`] counts every connect, read and
/// write across all its connections).
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    faults: Vec<(u64, NetFault)>,
    kill_at: Option<u64>,
}

impl NetFaultPlan {
    /// An empty plan: the wrapper only counts operations.
    pub fn new() -> NetFaultPlan {
        NetFaultPlan::default()
    }

    /// Injects `fault` at operation index `op` (0-based).
    pub fn fail_at(mut self, op: u64, fault: NetFault) -> NetFaultPlan {
        self.faults.push((op, fault));
        self
    }

    /// Kills the network at operation `op`: every connection open when
    /// that operation is reached fails from then on, as if a blip
    /// reset them all. Connections dialed afterwards are clean — the
    /// reconnect path under test.
    pub fn kill_at(mut self, op: u64) -> NetFaultPlan {
        self.kill_at = Some(op);
        self
    }

    /// A pseudorandom plan derived from `seed`: each operation below
    /// `horizon` has a 1-in-6 chance of a fault (resets and duplicated
    /// deliveries most common, short delays next, black-holes rare —
    /// they each cost a full deadline), and half of all seeds kill the
    /// live connections at a random point. Same seed, same plan.
    pub fn seeded(seed: u64, horizon: u64) -> NetFaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = NetFaultPlan::new();
        for op in 0..horizon {
            if next() % 6 == 0 {
                let fault = match next() % 8 {
                    0..=2 => NetFault::Reset,
                    3..=4 => NetFault::Duplicate,
                    5..=6 => NetFault::Delay(1 + next() % 4),
                    _ => NetFault::BlackHole,
                };
                plan.faults.push((op, fault));
            }
        }
        if next() % 2 == 0 && horizon > 0 {
            plan.kill_at = Some(next() % horizon);
        }
        plan
    }

    /// The configured kill point, if any.
    pub fn kill_point(&self) -> Option<u64> {
        self.kill_at
    }

    fn fault_for(&self, op: u64) -> Option<NetFault> {
        self.faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }
}

#[derive(Debug)]
struct NetFaultCore {
    inner: Arc<dyn NetIo>,
    ops: AtomicU64,
    plan: NetFaultPlan,
    /// Bumped once when the kill point is reached; connections carry
    /// the generation they were dialed under and die when it is stale.
    generation: AtomicU64,
}

impl NetFaultCore {
    fn reset_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }

    /// Takes the next operation ticket for a connection dialed under
    /// `conn_gen`: `Err` if that connection is dead (killed network),
    /// `Ok(Some(fault))` if this op faults, `Ok(None)` for a clean op.
    fn ticket(&self, conn_gen: u64) -> io::Result<Option<NetFault>> {
        let op = self.ops.fetch_add(1, Relaxed);
        if self.plan.kill_at.is_some_and(|at| op >= at) {
            self.generation.store(1, Relaxed);
        }
        if conn_gen < self.generation.load(Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("injected network kill (op {op})"),
            ));
        }
        Ok(self.plan.fault_for(op))
    }
}

/// A [`NetIo`] that injects failures from a [`NetFaultPlan`]. Cloning
/// yields handles to the same plan and operation counter; connections
/// accepted from its listeners are wrapped too, so either side of the
/// wire (or both) can run under the plan.
#[derive(Debug, Clone)]
pub struct FaultNet {
    core: Arc<NetFaultCore>,
}

impl FaultNet {
    /// Wraps the production transport with `plan`.
    pub fn new(plan: NetFaultPlan) -> FaultNet {
        FaultNet::wrapping(real_net(), plan)
    }

    /// Wraps an arbitrary inner transport with `plan`.
    pub fn wrapping(inner: Arc<dyn NetIo>, plan: NetFaultPlan) -> FaultNet {
        FaultNet {
            core: Arc::new(NetFaultCore {
                inner,
                ops: AtomicU64::new(0),
                plan,
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// This handle as the trait object the wire plane takes.
    pub fn handle(&self) -> Arc<dyn NetIo> {
        Arc::new(self.clone())
    }

    /// Transport operations attempted so far (faulted ones included).
    pub fn ops(&self) -> u64 {
        self.core.ops.load(Relaxed)
    }

    /// Whether the kill point has been reached.
    pub fn killed(&self) -> bool {
        self.core.generation.load(Relaxed) > 0
    }
}

/// Fault state shared by every clone of one connection — the reader
/// and writer halves of a black-holed socket must both be black-holed.
struct ConnShared {
    poisoned: AtomicBool,
    black_holed: AtomicBool,
    read_timeout: Mutex<Option<Duration>>,
    generation: u64,
}

struct FaultConn {
    inner: Box<dyn NetConn>,
    core: Arc<NetFaultCore>,
    shared: Arc<ConnShared>,
}

impl FaultConn {
    fn poison(&self) {
        self.shared.poisoned.store(true, Relaxed);
        let _ = self.inner.shutdown_both();
    }

    /// Emulates the silence of a half-open peer: honor the configured
    /// read deadline, then time out. With no deadline set, stall
    /// briefly and time out anyway — a test harness must never hang.
    fn black_hole_read(&self) -> io::Error {
        let wait = (*self.shared.read_timeout.lock()).unwrap_or(Duration::from_millis(100));
        std::thread::sleep(wait);
        io::Error::new(io::ErrorKind::TimedOut, "injected black-hole: peer silent")
    }
}

impl Read for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.shared.poisoned.load(Relaxed) {
            return Err(NetFaultCore::reset_error());
        }
        if self.shared.black_holed.load(Relaxed) {
            return Err(self.black_hole_read());
        }
        match self.core.ticket(self.shared.generation) {
            Err(e) => {
                self.poison();
                Err(e)
            }
            Ok(None) | Ok(Some(NetFault::Duplicate)) => self.inner.read(buf),
            Ok(Some(NetFault::Delay(ms))) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.read(buf)
            }
            Ok(Some(NetFault::Reset)) => {
                self.poison();
                Err(NetFaultCore::reset_error())
            }
            Ok(Some(NetFault::BlackHole)) => {
                self.shared.black_holed.store(true, Relaxed);
                Err(self.black_hole_read())
            }
        }
    }
}

impl Write for FaultConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.shared.poisoned.load(Relaxed) {
            return Err(NetFaultCore::reset_error());
        }
        if self.shared.black_holed.load(Relaxed) {
            return Ok(buf.len()); // vanishes
        }
        match self.core.ticket(self.shared.generation) {
            Err(e) => {
                self.poison();
                Err(e)
            }
            Ok(None) => self.inner.write(buf),
            Ok(Some(NetFault::Delay(ms))) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write(buf)
            }
            Ok(Some(NetFault::Duplicate)) => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            Ok(Some(NetFault::Reset)) => {
                // The torn mid-frame send: a prefix reaches the peer,
                // then the connection dies.
                let keep = buf.len() / 2;
                if keep > 0 {
                    let _ = self.inner.write_all(&buf[..keep]);
                    let _ = self.inner.flush();
                }
                self.poison();
                Err(NetFaultCore::reset_error())
            }
            Ok(Some(NetFault::BlackHole)) => {
                self.shared.black_holed.store(true, Relaxed);
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.shared.poisoned.load(Relaxed) {
            return Err(NetFaultCore::reset_error());
        }
        if self.shared.black_holed.load(Relaxed) {
            return Ok(());
        }
        self.inner.flush()
    }
}

impl NetConn for FaultConn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        *self.shared.read_timeout.lock() = t;
        self.inner.set_read_timeout(t)
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(t)
    }

    fn try_clone_conn(&self) -> io::Result<Box<dyn NetConn>> {
        Ok(Box::new(FaultConn {
            inner: self.inner.try_clone_conn()?,
            core: Arc::clone(&self.core),
            shared: Arc::clone(&self.shared),
        }))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.inner.shutdown_both()
    }
}

struct FaultListener {
    inner: Box<dyn NetListener>,
    core: Arc<NetFaultCore>,
}

impl NetListener for FaultListener {
    fn accept(&self) -> io::Result<Box<dyn NetConn>> {
        // Accept itself is not ticketed: faults live on the dial and
        // the data path, where a real network misbehaves.
        let inner = self.inner.accept()?;
        Ok(Box::new(FaultConn {
            inner,
            core: Arc::clone(&self.core),
            shared: Arc::new(ConnShared {
                poisoned: AtomicBool::new(false),
                black_holed: AtomicBool::new(false),
                read_timeout: Mutex::new(None),
                generation: self.core.generation.load(Relaxed),
            }),
        }))
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl NetIo for FaultNet {
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        Ok(Box::new(FaultListener {
            inner: self.core.inner.bind(addr)?,
            core: Arc::clone(&self.core),
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn NetConn>> {
        let generation = self.core.generation.load(Relaxed);
        let fault = self.core.ticket(generation)?;
        let black_holed = match fault {
            Some(NetFault::Reset) => return Err(NetFaultCore::reset_error()),
            Some(NetFault::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
            Some(NetFault::BlackHole) => true,
            Some(NetFault::Duplicate) | None => false,
        };
        let inner = self.core.inner.connect(addr)?;
        Ok(Box::new(FaultConn {
            inner,
            core: Arc::clone(&self.core),
            shared: Arc::new(ConnShared {
                poisoned: AtomicBool::new(false),
                black_holed: AtomicBool::new(black_holed),
                read_timeout: Mutex::new(None),
                generation,
            }),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes on up to `conns` connections, then exits.
    fn echo_server(conns: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            for _ in 0..conns {
                let Ok((mut conn, _)) = listener.accept() else {
                    break;
                };
                workers.push(std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        (addr, handle)
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = NetFaultPlan::seeded(42, 200);
        let b = NetFaultPlan::seeded(42, 200);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.kill_at, b.kill_at);
        let c = NetFaultPlan::seeded(43, 200);
        assert!(a.faults != c.faults || a.kill_at != c.kill_at);
    }

    #[test]
    fn reset_tears_a_write_and_poisons_the_connection() {
        let (addr, server) = echo_server(1);
        let net = FaultNet::new(NetFaultPlan::new().fail_at(1, NetFault::Reset));
        let mut conn = net.connect(&addr.to_string()).unwrap(); // op 0
        let err = conn.write(b"0123456789").unwrap_err(); // op 1: torn
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = conn.write(b"more").unwrap_err(); // dead for good
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        server.join().unwrap();
    }

    #[test]
    fn duplicate_delivers_a_write_twice() {
        let (addr, server) = echo_server(1);
        let net = FaultNet::new(NetFaultPlan::new().fail_at(1, NetFault::Duplicate));
        let mut conn = net.connect(&addr.to_string()).unwrap(); // op 0
        conn.write_all(b"ab").unwrap(); // op 1: doubled
        conn.flush().unwrap();
        let mut got = [0u8; 4];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abab");
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn black_hole_swallows_writes_and_times_out_reads() {
        let (addr, server) = echo_server(1);
        let net = FaultNet::new(NetFaultPlan::new().fail_at(1, NetFault::BlackHole));
        let mut conn = net.connect(&addr.to_string()).unwrap(); // op 0
        conn.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        conn.write_all(b"gone").unwrap(); // op 1: vanishes, reports ok
        let err = conn.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Sticky: later writes vanish too, without consuming tickets.
        conn.write_all(b"also gone").unwrap();
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn kill_fails_live_connections_but_not_new_ones() {
        let (addr, server) = echo_server(2);
        let net = FaultNet::new(NetFaultPlan::new().kill_at(2));
        let mut old = net.connect(&addr.to_string()).unwrap(); // op 0
        old.write_all(b"a").unwrap(); // op 1
        let err = old.write(b"b").unwrap_err(); // op 2: network blip
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(net.killed());
        // A fresh dial lands in the new generation and works.
        let mut fresh = net.connect(&addr.to_string()).unwrap();
        fresh.write_all(b"cd").unwrap();
        let mut got = [0u8; 2];
        fresh.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"cd");
        drop((old, fresh));
        server.join().unwrap();
    }
}
