//! Epoch and backpressure policies.

use std::time::Duration;

/// When arriving events are sealed into phases.
///
/// The paper's model (§2) treats "all events arriving at the same
/// instant" as one phase. A live runtime has to *choose* those
/// instants; the policy is that choice. Whatever the policy, sealing is
/// the commit point: once sealed, a binning is immutable and recorded
/// in the run's [`PhaseScript`](crate::PhaseScript).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochPolicy {
    /// Seal only on explicit [`flush`](crate::StreamRuntime::flush) /
    /// [`tick`](crate::StreamRuntime::tick) calls.
    Manual,
    /// Seal automatically whenever this many events are buffered across
    /// all live sources (and on explicit flushes).
    ByCount(usize),
    /// A background ticker seals at this interval — the paper's
    /// environment process that "sleeps for some amount of time"
    /// between phases (Listing 2). Quiet intervals seal an *empty*
    /// phase, so time-driven operators keep advancing.
    ByInterval(Duration),
}

/// What a push into a full ingest queue does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// The pushing thread blocks until an epoch seal drains the queue
    /// (or the runtime shuts down). Lossless; propagates pressure to
    /// producers.
    #[default]
    Block,
    /// The push fails with [`PushError::Full`](crate::PushError::Full).
    /// Lossy but never blocks; producers decide what to drop.
    Reject,
}

impl EpochPolicy {
    /// True if `buffered` events warrant an automatic seal.
    pub(crate) fn should_seal(&self, buffered: usize) -> bool {
        match self {
            EpochPolicy::ByCount(n) => buffered >= *n,
            EpochPolicy::Manual | EpochPolicy::ByInterval(_) => false,
        }
    }
}
