//! # ec-runtime — the online streaming runtime
//!
//! The batch engine (`ec-core`) requires every source to be scripted in
//! advance. This crate is the missing online half: a long-running,
//! push-based service wrapping the same pipelined, serializable engine.
//!
//! * [`StreamRuntime`] — owns a correlator graph and the live engine;
//!   runs until shut down.
//! * [`SourceHandle`] — bounded, backpressured ingestion for one live
//!   source ([`Backpressure::Block`] or [`Backpressure::Reject`]).
//! * [`EpochPolicy`] — how arriving events are binned into phases:
//!   explicit [`flush`](StreamRuntime::flush), event count, or a
//!   wall-clock ticker (empty epochs keep time-driven operators
//!   advancing through quiet periods).
//! * subscriptions — sink emissions are delivered to callbacks in
//!   **serial order** as phases retire, so an online observer sees
//!   exactly the sequential oracle's output order.
//! * [`PhaseScript`] — the committed event-to-phase binning; replaying
//!   it through the [`Sequential`](ec_core::Sequential) oracle must
//!   (and, per the test suite, does) reproduce the live run's
//!   [`ExecutionHistory`](ec_core::ExecutionHistory) exactly. That is
//!   the paper's serializability requirement extended to live
//!   ingestion.
//! * durability — [`StreamRuntimeBuilder::durable`] commits every
//!   sealed row to an `ec-store` write-ahead log before admission and
//!   snapshots operator state at retired phase boundaries
//!   ([`snapshot_every`](StreamRuntimeBuilder::snapshot_every),
//!   [`StreamRuntime::checkpoint`]);
//!   [`restore`](StreamRuntimeBuilder::restore) resumes a killed
//!   runtime at the exact next phase, extending serializability across
//!   process restarts (see `tests/durability.rs`).
//! * multi-tenancy — a [`SessionPool`] hosts many independent
//!   runtimes (tenant sessions) on one shared worker pool with
//!   weighted-round-robin admission, per-tenant in-flight caps,
//!   per-tenant metrics rows and per-tenant durable store directories
//!   (see [`sessions`] and `tests/sessions.rs`).
//!
//! ## Quick example
//!
//! ```
//! use ec_runtime::{StreamRuntime, EpochPolicy};
//! use ec_fusion::operators::threshold::Threshold;
//!
//! let mut b = StreamRuntime::builder().threads(2);
//! let tx = b.live_source("tx");
//! let alarm = b.add("alarm", Threshold::above(100.0), &[tx]);
//! let rt = b.build().unwrap();
//!
//! let big_txs = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
//! let seen = std::sync::Arc::clone(&big_txs);
//! rt.subscribe(move |e| {
//!     seen.lock().unwrap().push((e.phase, e.value.clone()));
//! });
//!
//! let handle = rt.handle(tx).unwrap();
//! for amount in [12.0, 340.0, 7.0] {
//!     handle.push(amount).unwrap();
//! }
//! rt.flush().unwrap();                     // seal the epoch: 3 phases
//! let report = rt.shutdown().unwrap();     // drain + stop
//! assert_eq!(report.phases, 3);
//! assert_eq!(report.script.event_count(), 3);
//! // alarm flipped false (phase 1) -> true (phase 2) -> false (phase 3)
//! assert_eq!(big_txs.lock().unwrap().len(), 3);
//! let _ = alarm;
//! ```

#![warn(missing_docs)]

mod error;
mod ingest;
pub mod obs;
mod policy;
mod runtime;
mod script;
pub mod serve;
pub mod sessions;

pub use ec_obs::{HealthConfig, HealthReport, LaneHealth, Verdict};
pub use error::{PushError, RuntimeError};
pub use obs::MetricsRegistry;
pub use policy::{Backpressure, EpochPolicy};
pub use runtime::{
    RuntimeProbe, RuntimeReport, SinkEmission, SourceHandle, StoreRetry, StreamRuntime,
    StreamRuntimeBuilder,
};
pub use script::PhaseScript;
pub use serve::{RetryPolicy, WireClient, WireClientBuilder, WireServer, WireServerBuilder};
pub use sessions::{Session, SessionMetrics, SessionPool, SessionPoolBuilder};
