//! Materialized phase scripts.
//!
//! A live run is nondeterministic from the outside — pushes and flushes
//! race against wall-clock ticks — but the moment an epoch is sealed,
//! the runtime has *committed* to a binning of events into phases.
//! [`PhaseScript`] records that commitment: one row per admitted phase,
//! one column per live source, each cell the bin the source's feed was
//! staged with (`None` = silent).
//!
//! The script is the bridge from live execution back to the paper's
//! batch correctness story: replaying the columns through
//! [`Replay`](ec_events::sources::Replay) sources and running the
//! [`Sequential`](ec_core::Sequential) oracle over the same graph must
//! produce an equivalent [`ExecutionHistory`](ec_core::ExecutionHistory)
//! — serializability extended to live ingestion. It is also the natural
//! unit for future checkpoint/replay work.
//!
//! ## Representation
//!
//! Storage is columnar and shared: one [`ScriptSegment`] per sealed
//! epoch, holding the *same* `Arc`'d [`PhaseColumn`]s the runtime
//! handed to the WAL and the live feeds. Recording a script therefore
//! costs one `Arc` clone per source per epoch — no second copy of the
//! event data — and snapshotting a running script
//! ([`StreamRuntime::script`](crate::StreamRuntime::script)) is O(epochs
//! sealed), not O(events).

use ec_events::sources::Replay;
use ec_events::{PhaseColumn, Value};
use std::sync::Arc;

/// One sealed epoch's contribution to the script: a shared column per
/// source, each covering this epoch's `phases` phases.
#[derive(Debug, Clone)]
pub(crate) struct ScriptSegment {
    /// Phases this segment spans. May be *less* than the columns' length
    /// when an engine-refused admission truncated the epoch — accessors
    /// must never look past it.
    phases: usize,
    /// One column per source, in wiring order.
    cols: Vec<Arc<PhaseColumn>>,
}

impl ScriptSegment {
    /// Wraps one sealed epoch (each column's length must be ≥ `phases`).
    pub(crate) fn new(cols: Vec<Arc<PhaseColumn>>, phases: usize) -> ScriptSegment {
        debug_assert!(cols.iter().all(|c| c.len() >= phases));
        ScriptSegment { phases, cols }
    }

    /// Shrinks the segment to its first `phases` phases (admission was
    /// refused partway through the epoch). O(1): the columns stay
    /// shared, only the logical bound moves.
    pub(crate) fn truncate(&mut self, phases: usize) {
        self.phases = self.phases.min(phases);
    }

    pub(crate) fn phases(&self) -> usize {
        self.phases
    }

    /// The bins of one source within this segment.
    fn column(&self, source: usize) -> &[Option<Value>] {
        &self.cols[source][..self.phases]
    }
}

/// The committed event-to-phase binning of one live run.
///
/// Columnar and cheap to clone/snapshot (shared storage, see the
/// module docs); inspect it through [`column`](PhaseScript::column) /
/// [`row`](PhaseScript::row) / [`replay`](PhaseScript::replay).
#[derive(Debug, Clone, Default)]
pub struct PhaseScript {
    /// Live source names, in wiring order (column order of the rows).
    pub sources: Vec<String>,
    segments: Vec<ScriptSegment>,
}

impl PhaseScript {
    /// Builds a script from row-major rows (`rows[p][s]` = source `s`'s
    /// bin in phase `p+1`) — the shape WAL recovery yields.
    pub fn from_rows(sources: Vec<String>, rows: Vec<Vec<Option<Value>>>) -> PhaseScript {
        let phases = rows.len();
        if phases == 0 {
            return PhaseScript {
                sources,
                segments: Vec::new(),
            };
        }
        let columns = sources.len();
        let mut cols: Vec<Vec<Option<Value>>> =
            (0..columns).map(|_| Vec::with_capacity(phases)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), columns);
            for (col, bin) in cols.iter_mut().zip(row) {
                col.push(bin);
            }
        }
        let segment = ScriptSegment::new(
            cols.into_iter()
                .map(|c| Arc::new(PhaseColumn::from_bins(c)))
                .collect(),
            phases,
        );
        PhaseScript {
            sources,
            segments: vec![segment],
        }
    }

    /// Assembles a script from committed segments (crate-internal: the
    /// runtime's seal produces segments directly).
    pub(crate) fn from_segments(sources: Vec<String>, segments: Vec<ScriptSegment>) -> PhaseScript {
        PhaseScript { sources, segments }
    }

    /// The committed segments (crate-internal: a restored runtime seeds
    /// its live script log with the recovered prefix).
    pub(crate) fn into_segments(self) -> Vec<ScriptSegment> {
        self.segments
    }

    /// Number of phases committed.
    pub fn phases(&self) -> u64 {
        self.segments.iter().map(|s| s.phases() as u64).sum()
    }

    /// True if no phase has been committed.
    pub fn is_empty(&self) -> bool {
        self.phases() == 0
    }

    /// The bin column of one source, in phase order — borrowed, so
    /// inspecting a million-row script allocates nothing.
    pub fn column(&self, source: usize) -> impl Iterator<Item = Option<&Value>> + '_ {
        self.segments
            .iter()
            .flat_map(move |seg| seg.column(source).iter().map(Option::as_ref))
    }

    /// One row (the bins of every source in 1-based phase `p + 1`),
    /// cells cloned — [`Value`] clones are cheap (`Arc` payloads).
    /// Panics if `p` is out of range.
    pub fn row(&self, p: usize) -> Vec<Option<Value>> {
        let mut offset = p;
        for seg in &self.segments {
            if offset < seg.phases() {
                return (0..self.sources.len())
                    .map(|s| seg.column(s)[offset].clone())
                    .collect();
            }
            offset -= seg.phases();
        }
        panic!("row {p} out of range ({} phases)", self.phases());
    }

    /// A [`Replay`] source reproducing one column — feed these to an
    /// identical graph to replay the run deterministically. (This one
    /// owns its values; `Value` clones are cheap — `Arc` payloads.)
    pub fn replay(&self, source: usize) -> Replay {
        Replay::new(self.column(source).map(|bin| bin.cloned()).collect())
    }

    /// Total non-silent bins committed (events that made it into
    /// phases).
    pub fn event_count(&self) -> usize {
        (0..self.sources.len())
            .map(|s| self.column(s).filter(|bin| bin.is_some()).count())
            .sum()
    }
}

impl PartialEq for PhaseScript {
    /// Logical equality: same sources, same binning — segmentation (how
    /// many epochs produced the rows) is an execution detail.
    fn eq(&self, other: &PhaseScript) -> bool {
        self.sources == other.sources
            && self.phases() == other.phases()
            && (0..self.sources.len()).all(|s| self.column(s).eq(other.column(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_events::{EventSource, Phase};

    fn script() -> PhaseScript {
        PhaseScript::from_rows(
            vec!["a".into(), "b".into()],
            vec![
                vec![Some(Value::Int(1)), None],
                vec![None, Some(Value::Int(2))],
            ],
        )
    }

    #[test]
    fn columns_and_counts() {
        let s = script();
        assert_eq!(s.phases(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.event_count(), 2);
        assert_eq!(
            s.column(0).collect::<Vec<_>>(),
            vec![Some(&Value::Int(1)), None]
        );
        assert_eq!(
            s.column(1).collect::<Vec<_>>(),
            vec![None, Some(&Value::Int(2))]
        );
        assert_eq!(s.row(0), vec![Some(Value::Int(1)), None]);
        assert_eq!(s.row(1), vec![None, Some(Value::Int(2))]);
    }

    #[test]
    fn replay_reproduces_column() {
        let s = script();
        let mut r = s.replay(1);
        assert_eq!(r.poll(Phase(1)), None);
        assert_eq!(r.poll(Phase(2)), Some(Value::Int(2)));
        assert_eq!(r.poll(Phase(3)), None);
    }

    #[test]
    fn equality_ignores_segmentation() {
        // The same binning committed as one epoch or two must compare
        // equal — segmentation is an execution accident.
        let one = script();
        let two = PhaseScript::from_segments(
            vec!["a".into(), "b".into()],
            vec![
                ScriptSegment::new(
                    vec![
                        Arc::new(PhaseColumn::from_bins(vec![Some(Value::Int(1))])),
                        Arc::new(PhaseColumn::from_bins(vec![None])),
                    ],
                    1,
                ),
                ScriptSegment::new(
                    vec![
                        Arc::new(PhaseColumn::from_bins(vec![None])),
                        Arc::new(PhaseColumn::from_bins(vec![Some(Value::Int(2))])),
                    ],
                    1,
                ),
            ],
        );
        assert_eq!(one, two);
        assert_ne!(one, PhaseScript::default());
    }

    #[test]
    fn truncated_segment_hides_tail_phases() {
        let mut seg = ScriptSegment::new(
            vec![Arc::new(PhaseColumn::from_bins(vec![
                Some(Value::Int(1)),
                Some(Value::Int(2)),
            ]))],
            2,
        );
        seg.truncate(1);
        let s = PhaseScript::from_segments(vec!["a".into()], vec![seg]);
        assert_eq!(s.phases(), 1);
        assert_eq!(s.event_count(), 1);
        assert_eq!(s.column(0).collect::<Vec<_>>(), vec![Some(&Value::Int(1))]);
    }
}
