//! Materialized phase scripts.
//!
//! A live run is nondeterministic from the outside — pushes and flushes
//! race against wall-clock ticks — but the moment an epoch is sealed,
//! the runtime has *committed* to a binning of events into phases.
//! [`PhaseScript`] records that commitment: one row per admitted phase,
//! one column per live source, each cell the bin the source's feed was
//! staged with (`None` = silent).
//!
//! The script is the bridge from live execution back to the paper's
//! batch correctness story: replaying the columns through
//! [`Replay`](ec_events::sources::Replay) sources and running the
//! [`Sequential`](ec_core::Sequential) oracle over the same graph must
//! produce an equivalent [`ExecutionHistory`](ec_core::ExecutionHistory)
//! — serializability extended to live ingestion. It is also the natural
//! unit for future checkpoint/replay work.

use ec_events::sources::Replay;
use ec_events::Value;

/// The committed event-to-phase binning of one live run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseScript {
    /// Live source names, in wiring order (column order of `rows`).
    pub sources: Vec<String>,
    /// One row per admitted phase: `rows[p][s]` is the bin staged for
    /// source `s` in (1-based) phase `p + 1`.
    pub rows: Vec<Vec<Option<Value>>>,
}

impl PhaseScript {
    /// Number of phases committed.
    pub fn phases(&self) -> u64 {
        self.rows.len() as u64
    }

    /// True if no phase has been committed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The bin column of one source, in phase order — borrowed, so
    /// inspecting a million-row script allocates nothing.
    pub fn column(&self, source: usize) -> impl Iterator<Item = Option<&Value>> + '_ {
        self.rows.iter().map(move |row| row[source].as_ref())
    }

    /// A [`Replay`] source reproducing one column — feed these to an
    /// identical graph to replay the run deterministically. (This one
    /// owns its values; `Value` clones are cheap — `Arc` payloads.)
    pub fn replay(&self, source: usize) -> Replay {
        Replay::new(self.column(source).map(|bin| bin.cloned()).collect())
    }

    /// Total non-silent bins committed (events that made it into
    /// phases).
    pub fn event_count(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.iter())
            .filter(|bin| bin.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_events::{EventSource, Phase};

    fn script() -> PhaseScript {
        PhaseScript {
            sources: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Some(Value::Int(1)), None],
                vec![None, Some(Value::Int(2))],
            ],
        }
    }

    #[test]
    fn columns_and_counts() {
        let s = script();
        assert_eq!(s.phases(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.event_count(), 2);
        assert_eq!(
            s.column(0).collect::<Vec<_>>(),
            vec![Some(&Value::Int(1)), None]
        );
        assert_eq!(
            s.column(1).collect::<Vec<_>>(),
            vec![None, Some(&Value::Int(2))]
        );
    }

    #[test]
    fn replay_reproduces_column() {
        let s = script();
        let mut r = s.replay(1);
        assert_eq!(r.poll(Phase(1)), None);
        assert_eq!(r.poll(Phase(2)), Some(Value::Int(2)));
        assert_eq!(r.poll(Phase(3)), None);
    }
}
