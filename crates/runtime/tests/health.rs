//! Integration tests for the watchdog plane: a healthy runtime reports
//! `ok` over `/healthz`, a wedged source (full buffer, producers
//! bouncing, epoch never sealed) is blamed by name with a `stalled`
//! verdict, and — the tracing-side invariant — trace-stamp sampling
//! never changes what a run commits.

use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_obs::http_get;
use ec_runtime::{
    Backpressure, EpochPolicy, HealthConfig, PhaseScript, StreamRuntimeBuilder, Verdict,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn observed_builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntimeBuilder::new()
        .threads(2)
        .epoch_policy(EpochPolicy::ByCount(8))
        .record_history(false)
        .record_script(false);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    b.add("avg", MovingAverage::new(4), &[sum]);
    b
}

/// Polls `fetch` until `pass` accepts the body or the deadline hits;
/// returns the last body either way.
fn poll_until(
    deadline: Duration,
    fetch: impl Fn() -> String,
    pass: impl Fn(&str) -> bool,
) -> String {
    let start = Instant::now();
    loop {
        let body = fetch();
        if pass(&body) || start.elapsed() > deadline {
            return body;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn healthy_runtime_reports_ok_on_healthz() {
    let rt = observed_builder()
        .metrics_addr("127.0.0.1:0")
        .build()
        .expect("runtime builds");
    let addr = rt.metrics_addr().expect("endpoint bound").to_string();
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 0..64 {
        s1.push(i as f64).expect("push accepted");
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("idle");

    // The delivery loop feeds the watchdog at most every ~50 ms; wait
    // until an observation has landed (the report carries sources).
    let body = poll_until(
        Duration::from_secs(5),
        || http_get(&addr, "/healthz").expect("healthz responds"),
        |b| b.contains("\"name\":\"s1\""),
    );
    assert!(body.contains("\"verdict\":\"ok\""), "{body}");
    assert_eq!(rt.health().verdict, Verdict::Ok);
    assert!(rt.health().reasons.is_empty());
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn wedged_source_is_blamed_as_stalled() {
    // Manual policy and nobody flushing: the epoch never seals. The
    // producer keeps bouncing off the tiny full buffer (Reject), so the
    // watchdog sees a full source with climbing waits and zero
    // admissions — a wedge blamed on "s1".
    let rt = observed_builder()
        .epoch_policy(EpochPolicy::Manual)
        .backpressure(Backpressure::Reject)
        .ingest_capacity(4)
        .health_config(HealthConfig {
            stall_after: Duration::from_millis(150),
            ..HealthConfig::default()
        })
        .metrics_addr("127.0.0.1:0")
        .build()
        .expect("runtime builds");
    let addr = rt.metrics_addr().expect("endpoint bound").to_string();
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 0..4 {
        s1.push(i as f64).expect("fills the buffer");
    }

    let start = Instant::now();
    let body = loop {
        // Keep the producer bouncing so waits climb between watchdog
        // observations (a full-but-quiet source is not a wedge).
        assert!(s1.push(99.0).is_err(), "buffer should stay full");
        let body = http_get(&addr, "/healthz").expect("healthz responds");
        if body.contains("\"verdict\":\"stalled\"") || start.elapsed() > Duration::from_secs(10) {
            break body;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(body.contains("\"verdict\":\"stalled\""), "{body}");
    assert!(body.contains("ingest wedged"), "{body}");
    assert!(body.contains("source \\\"s1\\\""), "{body}");

    let report = rt.health();
    assert_eq!(report.verdict, Verdict::Stalled);
    assert!(
        report.reasons.iter().any(|r| r.contains("\"s1\"")),
        "wrong blame: {:?}",
        report.reasons
    );
    // The healthy neighbour is not blamed.
    assert!(
        !report.reasons.iter().any(|r| r.contains("\"s2\"")),
        "s2 wrongly blamed: {:?}",
        report.reasons
    );
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn recovery_clears_the_stalled_verdict() {
    let rt = observed_builder()
        .epoch_policy(EpochPolicy::Manual)
        .backpressure(Backpressure::Reject)
        .ingest_capacity(4)
        .health_config(HealthConfig {
            stall_after: Duration::from_millis(100),
            ..HealthConfig::default()
        })
        .build()
        .expect("runtime builds");
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 0..4 {
        s1.push(i as f64).expect("fills the buffer");
    }
    let start = Instant::now();
    while rt.health().verdict != Verdict::Stalled {
        assert!(s1.push(99.0).is_err());
        assert!(start.elapsed() < Duration::from_secs(10), "never stalled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Sealing the epoch drains the wedge; the verdict recovers.
    rt.flush().expect("flush");
    rt.wait_idle().expect("idle");
    let start = Instant::now();
    while rt.health().verdict != Verdict::Ok {
        assert!(start.elapsed() < Duration::from_secs(10), "never recovered");
        std::thread::sleep(Duration::from_millis(20));
    }
    rt.shutdown().expect("clean shutdown");
}

/// Builds the two-source graph with full recording on, at the given
/// trace sampling rate, runs a deterministic push/flush schedule, and
/// returns (script, history-vs-oracle equivalence).
fn run_sampled(sampling: u64, ops: &[(usize, i64)]) -> (PhaseScript, ec_core::ExecutionHistory) {
    let mut b = StreamRuntimeBuilder::new()
        .threads(2)
        .epoch_policy(EpochPolicy::Manual)
        .trace_sampling(sampling);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    b.add("avg", MovingAverage::new(3), &[sum]);
    let rt = b.build().expect("runtime builds");
    let handles = [
        rt.handle_by_name("s1").unwrap(),
        rt.handle_by_name("s2").unwrap(),
    ];
    for &(op, v) in ops {
        match op {
            0 | 1 => handles[op].push(v as f64).expect("push accepted"),
            _ => {
                rt.flush().expect("flush");
            }
        }
    }
    let report = rt.shutdown().expect("clean shutdown");
    (report.script, report.history.expect("history recorded"))
}

/// Replays `script` through the sequential oracle over the same graph.
fn oracle_history(script: &PhaseScript) -> ec_core::ExecutionHistory {
    let mut b = ec_fusion::CorrelatorBuilder::new();
    let s1 = b.source("s1", script.replay(0));
    let s2 = b.source("s2", script.replay(1));
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    b.add("avg", MovingAverage::new(3), &[sum]);
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Trace stamps are metadata: sampling every event, some events, or
    /// none commits the identical `PhaseScript`, and the traced run
    /// stays equivalent to the sequential oracle.
    #[test]
    fn trace_sampling_never_alters_the_committed_script(
        ops in proptest::collection::vec((0usize..3, -20i64..30), 5..60),
    ) {
        let (traced_script, traced_history) = run_sampled(1, &ops);
        let (plain_script, _) = run_sampled(0, &ops);
        prop_assert_eq!(&traced_script, &plain_script);
        let oracle = oracle_history(&traced_script);
        prop_assert!(
            oracle.equivalent(&traced_history).is_ok(),
            "traced run diverged from oracle: {}",
            oracle.equivalent(&traced_history).unwrap_err()
        );
    }
}
