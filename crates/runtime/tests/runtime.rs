//! Integration tests for the streaming runtime: backpressure, epoch
//! binning edge cases, subscription ordering, and the central
//! correctness bar — for any interleaving of pushes and flushes, the
//! live run's history equals the sequential oracle run over the same
//! materialized phase script.

use ec_events::sources::Counter;
use ec_events::{FeedWriter, Value};
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use ec_runtime::{
    Backpressure, EpochPolicy, PhaseScript, PushError, StreamRuntime, StreamRuntimeBuilder,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Builds the shared test graph over two sources produced by
/// `mk_source` (live feeds for the runtime, replays for the oracle):
///
/// ```text
/// s1 ─┬─ sum ── avg(3) ── alarm(>10)
/// s2 ─┘
/// ```
fn wire_graph(
    mut mk_source: impl FnMut(&mut CorrelatorBuilder, &str) -> NodeHandle,
) -> (CorrelatorBuilder, NodeHandle) {
    let mut b = CorrelatorBuilder::new();
    let s1 = mk_source(&mut b, "s1");
    let s2 = mk_source(&mut b, "s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    let alarm = b.add("alarm", Threshold::above(10.0), &[avg]);
    (b, alarm)
}

/// The live variant of [`wire_graph`], via `from_correlator`.
fn live_graph() -> (StreamRuntimeBuilder, NodeHandle) {
    let mut feeds: Vec<(String, NodeHandle, FeedWriter)> = Vec::new();
    let (correlator, alarm) = wire_graph(|b, name| {
        let (handle, writer) = b.live_source(name);
        feeds.push((name.to_string(), handle, writer));
        handle
    });
    (
        StreamRuntimeBuilder::from_correlator(correlator, feeds),
        alarm,
    )
}

/// Runs the sequential oracle over the same graph fed by `script`.
fn oracle_history(script: &PhaseScript) -> ec_core::ExecutionHistory {
    let mut column = 0usize;
    let (b, _) = wire_graph(|builder, name| {
        let replay = script.replay(column);
        column += 1;
        builder.source(name, replay)
    });
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

#[test]
fn push_flush_produces_alarms_and_matches_oracle() {
    let (b, _alarm) = live_graph();
    let rt = b.threads(4).build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();

    s1.push(2.0).unwrap();
    s2.push(3.0).unwrap();
    rt.flush().unwrap(); // phase 1: sum 5, avg 5, alarm false
    s1.push(20.0).unwrap();
    rt.flush().unwrap(); // phase 2: sum 23 (s2 remembered), avg 14 → true
    rt.flush().unwrap(); // nothing buffered: no phase
    s2.push(-30.0).unwrap();
    rt.flush().unwrap(); // phase 3: alarm falls back

    let report = rt.shutdown().unwrap();
    assert_eq!(report.phases, 3);
    assert_eq!(report.script.phases(), 3);
    assert_eq!(report.script.event_count(), 4);

    let live = report.history.expect("history recorded");
    assert_eq!(oracle_history(&report.script).equivalent(&live), Ok(()));
}

#[test]
fn subscribers_see_serial_order() {
    let (b, _alarm) = live_graph();
    let rt = b.threads(4).build().unwrap();
    let seen: Arc<Mutex<Vec<(String, u64, Value)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    rt.subscribe(move |e| {
        sink.lock()
            .unwrap()
            .push((e.name.to_string(), e.phase, e.value.clone()));
    });
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 1..=30i64 {
        s1.push(Value::Float(i as f64)).unwrap();
    }
    rt.flush().unwrap(); // 30 phases at once (pipelined execution)
    rt.shutdown().unwrap();

    let seen = seen.lock().unwrap();
    assert!(!seen.is_empty());
    // Delivered strictly in phase order despite out-of-order execution.
    assert!(
        seen.windows(2).all(|w| w[0].1 < w[1].1),
        "phases out of order: {seen:?}"
    );
    assert!(seen.iter().all(|(name, _, _)| name == "alarm"));
}

#[test]
fn reject_backpressure_reports_full() {
    let (b, _alarm) = live_graph();
    let rt = b
        .ingest_capacity(2)
        .backpressure(Backpressure::Reject)
        .build()
        .unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(1.0).unwrap();
    s1.push(2.0).unwrap();
    assert_eq!(s1.push(3.0), Err(PushError::Full));
    assert_eq!(s1.buffered(), 2);
    // A flush drains the queue; pushes work again.
    rt.flush().unwrap();
    s1.push(3.0).unwrap();
    rt.shutdown().unwrap();
}

#[test]
fn block_backpressure_waits_for_a_flush() {
    let (b, _alarm) = live_graph();
    let rt = Arc::new(
        b.ingest_capacity(1)
            .backpressure(Backpressure::Block)
            .build()
            .unwrap(),
    );
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(1.0).unwrap();

    let started = std::time::Instant::now();
    let flusher_rt = Arc::clone(&rt);
    let flusher = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(80));
        flusher_rt.flush().unwrap();
    });
    // Queue is full: this push must block until the flush above.
    s1.push(2.0).unwrap();
    assert!(
        started.elapsed() >= Duration::from_millis(50),
        "push returned before the flush drained the queue"
    );
    flusher.join().unwrap();
    let rt = Arc::into_inner(rt).expect("all clones dropped");
    let report = rt.shutdown().unwrap();
    assert_eq!(report.script.event_count(), 2);
}

#[test]
fn push_after_shutdown_is_closed() {
    let (b, _alarm) = live_graph();
    let rt = b.build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(1.0).unwrap();
    rt.shutdown().unwrap();
    assert_eq!(s1.push(2.0), Err(PushError::Closed));
}

#[test]
fn by_count_policy_seals_automatically() {
    let (b, _alarm) = live_graph();
    let rt = b.epoch_policy(EpochPolicy::ByCount(4)).build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    // 3 pushes: below threshold, nothing sealed.
    s1.push(1.0).unwrap();
    s1.push(2.0).unwrap();
    s2.push(3.0).unwrap();
    assert_eq!(rt.admitted(), 0);
    // 4th push seals: both sources have 2 buffered events → 2 phases.
    s2.push(4.0).unwrap();
    assert_eq!(rt.admitted(), 2);
    let report = rt.shutdown().unwrap();
    assert_eq!(report.phases, 2);
    assert_eq!(
        report.script.row(0),
        vec![Some(Value::Float(1.0)), Some(Value::Float(3.0))]
    );
    assert_eq!(
        report.script.row(1),
        vec![Some(Value::Float(2.0)), Some(Value::Float(4.0))]
    );
    let live = report.history.expect("history");
    assert_eq!(oracle_history(&report.script).equivalent(&live), Ok(()));
}

#[test]
fn by_count_above_capacity_cannot_deadlock() {
    // The count threshold (100) is far above what the 4-slot queues can
    // ever buffer; a full queue must force the epoch instead of
    // blocking the producer forever.
    let (b, _alarm) = live_graph();
    let rt = b
        .ingest_capacity(4)
        .epoch_policy(EpochPolicy::ByCount(100))
        .build()
        .unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 0..20i64 {
        s1.push(i as f64).unwrap(); // would hang without forced sealing
    }
    let report = rt.shutdown().unwrap();
    assert_eq!(report.script.event_count(), 20);
    assert_eq!(report.phases, 20); // single-source backlog: 1 event/phase
    let live = report.history.expect("history");
    assert_eq!(oracle_history(&report.script).equivalent(&live), Ok(()));
}

#[test]
fn builder_subscription_sees_every_emission() {
    // Subscribed before build: even phases retiring immediately after
    // start cannot be missed.
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let (b, _alarm) = live_graph();
    let rt = b
        .subscribe(move |e| sink.lock().unwrap().push(e.phase))
        .build()
        .unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(50.0).unwrap();
    rt.flush().unwrap();
    rt.shutdown().unwrap();
    assert_eq!(*seen.lock().unwrap(), vec![1]);
}

#[test]
fn interval_policy_seals_empty_epochs() {
    // No live pushes at all: the ticker must still admit (empty)
    // phases, driving the scripted counter through the graph.
    let mut b = StreamRuntime::builder().threads(2);
    let c = b.source("heartbeat", Counter::new());
    let _avg = b.add("avg", MovingAverage::new(2), &[c]);
    let rt = b
        .epoch_policy(EpochPolicy::ByInterval(Duration::from_millis(10)))
        .build()
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.completed_through() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "ticker produced no phases"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = rt.shutdown().unwrap();
    assert!(report.phases >= 3);
    // Every row is an empty epoch (no live sources).
    assert_eq!(report.script.event_count(), 0);
    // The scripted source still advanced once per phase.
    let history = report.history.expect("history");
    assert_eq!(
        history.execution_count() as u64 % report.phases,
        0,
        "sources must execute every phase"
    );
}

#[test]
fn empty_epochs_interleave_correctly_with_events() {
    let (b, _alarm) = live_graph();
    let rt = b.build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    rt.tick().unwrap(); // phase 1: all silent
    s1.push(50.0).unwrap();
    rt.flush().unwrap(); // phase 2: s1 event
    rt.tick().unwrap(); // phase 3: silent again
    let report = rt.shutdown().unwrap();
    assert_eq!(report.phases, 3);
    assert_eq!(report.script.row(0), vec![None, None]);
    assert_eq!(report.script.row(1), vec![Some(Value::Float(50.0)), None]);
    assert_eq!(report.script.row(2), vec![None, None]);
    let live = report.history.expect("history");
    assert_eq!(oracle_history(&report.script).equivalent(&live), Ok(()));
}

#[test]
fn out_of_order_arrivals_via_reorder_buffer() {
    use ec_events::reorder::{Offer, ReorderBuffer};
    use ec_events::Timestamp;

    // Events arrive out of generation order; the reorder buffer's
    // watermark releases them as closed per-instant batches, each of
    // which becomes one runtime epoch.
    let (b, _alarm) = live_graph();
    let rt = b.build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();

    let mut buffer = ReorderBuffer::new(100); // 100 µs watermark lag
    let arrivals = [
        (Timestamp(300), 3.0),
        (Timestamp(100), 1.0), // generated first, arrives second
        (Timestamp(200), 2.0),
    ];
    let mut now = 400u64;
    for (generated, v) in arrivals {
        assert_eq!(buffer.offer(generated, Value::Float(v)), Offer::Accepted);
    }
    // Advance simulated time until all batches close; each closed batch
    // is pushed and sealed as its own epoch — in generation order.
    let mut released = Vec::new();
    while released.len() < 3 {
        for batch in buffer.advance(Timestamp(now)) {
            for v in &batch.values {
                s1.push(v.clone()).unwrap();
            }
            rt.flush().unwrap();
            released.push(batch.timestamp);
        }
        now += 100;
    }
    assert_eq!(
        released,
        vec![Timestamp(100), Timestamp(200), Timestamp(300)]
    );
    let report = rt.shutdown().unwrap();
    assert_eq!(report.phases, 3);
    // Phases carry the events in generation order, not arrival order.
    assert_eq!(
        report.script.column(0).collect::<Vec<_>>(),
        vec![
            Some(&Value::Float(1.0)),
            Some(&Value::Float(2.0)),
            Some(&Value::Float(3.0)),
        ]
    );
    let live = report.history.expect("history");
    assert_eq!(oracle_history(&report.script).equivalent(&live), Ok(()));
}

#[test]
fn script_snapshot_available_mid_run() {
    let (b, _alarm) = live_graph();
    let rt = b.build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(1.0).unwrap();
    rt.flush().unwrap();
    let snapshot = rt.script();
    assert_eq!(snapshot.phases(), 1);
    assert_eq!(snapshot.sources, vec!["s1".to_string(), "s2".to_string()]);
    rt.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The correctness bar from the issue: for ANY interleaving of
    /// pushes and flushes (random sources, values, epoch boundaries and
    /// thread counts), the runtime's history equals the sequential
    /// oracle run over the materialized script.
    #[test]
    fn randomized_interleavings_are_serializable(
        seed in 0u64..10_000,
        threads in 1usize..5,
        ops in 10usize..120,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (b, _alarm) = live_graph();
        let rt = b.threads(threads).build().unwrap();
        let handles = [
            rt.handle_by_name("s1").unwrap(),
            rt.handle_by_name("s2").unwrap(),
        ];
        for _ in 0..ops {
            match rng.gen_range(0usize..10) {
                // Pushes dominate; values include negatives and repeats.
                0..=6 => {
                    let which = rng.gen_range(0usize..2);
                    let v = (rng.gen_range(-20i64..30)) as f64;
                    handles[which].push(v).unwrap();
                }
                7..=8 => { rt.flush().unwrap(); }
                _ => { rt.tick().unwrap(); }
            }
        }
        let report = rt.shutdown().unwrap();
        let live = report.history.expect("history");
        let oracle = oracle_history(&report.script);
        prop_assert!(
            oracle.equivalent(&live).is_ok(),
            "live run diverged from oracle: {}",
            oracle.equivalent(&live).unwrap_err()
        );
    }
}

#[test]
fn record_script_off_keeps_no_rows() {
    let (b, _alarm) = live_graph();
    let rt = b.record_script(false).build().unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    for i in 0..50i64 {
        s1.push(i as f64).unwrap();
    }
    rt.flush().unwrap();
    assert!(rt.script().is_empty());
    let report = rt.shutdown().unwrap();
    assert_eq!(report.phases, 50); // phases ran...
    assert!(report.script.is_empty()); // ...but no rows were retained
}
