//! Durability integration tests: serializability extended across
//! process restarts.
//!
//! The central bar (ISSUE 2 acceptance): a `StreamRuntime` killed at an
//! arbitrary point — mid-stream, without shutdown — and restored from
//! its store must continue exactly where the committed log left off,
//! such that the stitched run is indistinguishable from an
//! uninterrupted `Sequential` oracle execution of the same committed
//! script. Recovery must also shrug off a torn WAL tail.

use ec_core::ExecutionHistory;
use ec_events::FeedWriter;
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use ec_graph::VertexId;
use ec_runtime::{PhaseScript, RuntimeError, StreamRuntime, StreamRuntimeBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ec-runtime-durability-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn live_builder() -> StreamRuntimeBuilder {
    let mut feeds: Vec<(String, NodeHandle, FeedWriter)> = Vec::new();
    let (correlator, _alarm) = wire_graph(|b, name| {
        let (handle, writer) = b.live_source(name);
        feeds.push((name.to_string(), handle, writer));
        handle
    });
    StreamRuntimeBuilder::from_correlator(correlator, feeds)
}

/// The shared test graph (all operators snapshot-capable):
///
/// ```text
/// s1 ─┬─ sum ── avg(3) ── alarm(>10)
/// s2 ─┘
/// ```
fn wire_graph(
    mut mk_source: impl FnMut(&mut CorrelatorBuilder, &str) -> NodeHandle,
) -> (CorrelatorBuilder, NodeHandle) {
    let mut b = CorrelatorBuilder::new();
    let s1 = mk_source(&mut b, "s1");
    let s2 = mk_source(&mut b, "s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    let alarm = b.add("alarm", Threshold::above(10.0), &[avg]);
    (b, alarm)
}

/// Runs the sequential oracle, uninterrupted, over the committed script.
fn oracle_history(script: &PhaseScript) -> ExecutionHistory {
    let mut column = 0usize;
    let (b, _) = wire_graph(|builder, name| {
        let replay = script.replay(column);
        column += 1;
        builder.source(name, replay)
    });
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

/// Asserts the restored run's history (covering phases `base+1..`)
/// matches the corresponding tail of the uninterrupted oracle run —
/// every *observable* record, emission for emission. Silent executions
/// are compared by absence: the live engine's silence-aware admission
/// never schedules a provably silent live-source poll, while the dense
/// sequential oracle still records it, so silent records are filtered
/// from both sides (exactly the contract of
/// `ExecutionHistory::equivalent`).
fn assert_tail_matches(full: &ExecutionHistory, restored: &ExecutionHistory, base: u64) {
    use ec_core::RecordedEmission;
    let observable =
        |(_, e): &&(ec_events::Phase, RecordedEmission)| !matches!(e, RecordedEmission::Silent);
    assert_eq!(full.vertex_count(), restored.vertex_count());
    for vi in 0..full.vertex_count() {
        let v = VertexId(vi as u32);
        let want: Vec<_> = full
            .of(v)
            .iter()
            .filter(|(p, _)| p.get() > base)
            .filter(observable)
            .collect();
        let got: Vec<_> = restored.of(v).iter().filter(observable).collect();
        assert_eq!(
            want.len(),
            got.len(),
            "{v:?}: oracle tail has {} executions after phase {base}, restored run has {}",
            want.len(),
            got.len()
        );
        for ((wp, we), (gp, ge)) in want.iter().zip(got.iter()) {
            assert_eq!(wp, gp, "{v:?}: phase mismatch");
            assert!(
                we.same_as(ge),
                "{v:?} phase {wp:?}: emission mismatch: {we:?} vs {ge:?}"
            );
        }
    }
    let want: Vec<_> = full
        .sink_outputs()
        .iter()
        .filter(|r| r.phase.get() > base)
        .collect();
    let got: Vec<_> = restored.sink_outputs().iter().collect();
    assert_eq!(want.len(), got.len(), "sink record counts diverge");
    for (w, g) in want.iter().zip(got.iter()) {
        assert_eq!(w.vertex, g.vertex);
        assert_eq!(w.phase, g.phase);
        assert!(w.value.same_as(&g.value));
    }
}

/// One scripted interleaving step.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(usize, f64),
    Flush,
}

fn random_ops(rng: &mut SmallRng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            if rng.gen_range(0usize..10) < 7 {
                Op::Push(rng.gen_range(0usize..2), rng.gen_range(-20i64..30) as f64)
            } else {
                Op::Flush
            }
        })
        .collect()
}

fn apply_ops(rt: &StreamRuntime, ops: &[Op]) {
    let handles = [
        rt.handle_by_name("s1").unwrap(),
        rt.handle_by_name("s2").unwrap(),
    ];
    for op in ops {
        match *op {
            Op::Push(which, v) => handles[which].push(v).unwrap(),
            Op::Flush => {
                rt.flush().unwrap();
            }
        }
    }
}

/// The acceptance test: kill at a random point, restore, and require
/// the stitched run to equal the uninterrupted sequential oracle.
#[test]
fn killed_and_restored_run_matches_uninterrupted_oracle() {
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(seed * 1033 + 7);
        let dir = test_dir("kill-restore");
        let ops = random_ops(&mut rng, 60);
        let kill_at = rng.gen_range(5usize..55);

        // First incarnation: durable, periodic snapshots, killed by a
        // plain drop — no shutdown, no final seal.
        {
            let rt = live_builder()
                .threads(4)
                .durable(&dir)
                .snapshot_every(4)
                .build()
                .unwrap();
            apply_ops(&rt, &ops[..kill_at]);
            drop(rt); // simulated crash
        }

        // What the store committed (read-only peek, as `ec recover`
        // would): phases so far and the snapshot the restore will use.
        let rec = ec_store::Recovery::open(&dir).unwrap();
        let committed_at_kill = rec.committed_phases();
        let base = rec.snapshot_phase();
        assert!(base <= committed_at_kill);
        drop(rec);

        // Second incarnation: restore and continue with the rest of
        // the interleaving.
        let rt = live_builder().threads(4).durable(&dir).restore().unwrap();
        assert_eq!(rt.admitted(), committed_at_kill, "resumes at exact phase");
        apply_ops(&rt, &ops[kill_at..]);
        let report = rt.shutdown().unwrap();

        // The script spans phase 1..end (recovered prefix + new rows).
        assert!(report.script.phases() >= committed_at_kill);

        // Uninterrupted oracle over the same committed script: the
        // restored run's history must equal its tail exactly.
        let full = oracle_history(&report.script);
        let live = report.history.expect("history recorded");
        assert_tail_matches(&full, &live, base);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A deliberately torn WAL tail (crash mid-append) is dropped without
/// error, and the run resumes from the surviving prefix.
#[test]
fn restore_drops_torn_wal_tail() {
    let dir = test_dir("torn-tail");
    {
        let rt = live_builder().durable(&dir).build().unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        for i in 1..=6i64 {
            s1.push(i as f64).unwrap();
            rt.flush().unwrap();
        }
        drop(rt);
    }
    // Tear the log: chop the final record mid-payload, then append a
    // few garbage bytes as a half-written next record would leave.
    // (Everything fits one segment at the default segment size.)
    let wal = ec_store::segment_path(&dir, 1);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.truncate(bytes.len() - 3);
    bytes.extend_from_slice(&[0xDE, 0xAD]);
    std::fs::write(&wal, &bytes).unwrap();

    let rec = ec_store::Recovery::open(&dir).unwrap();
    assert!(matches!(rec.tail, ec_store::WalTail::Torn { .. }));
    assert_eq!(rec.committed_phases(), 5, "torn record dropped");
    drop(rec);

    let rt = live_builder().durable(&dir).restore().unwrap();
    assert_eq!(rt.admitted(), 5);
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(50.0).unwrap();
    rt.flush().unwrap();
    let report = rt.shutdown().unwrap();
    assert_eq!(report.script.phases(), 6);
    let full = oracle_history(&report.script);
    let live = report.history.expect("history");
    assert_tail_matches(&full, &live, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn build_refuses_to_overwrite_existing_store() {
    let dir = test_dir("no-overwrite");
    {
        let rt = live_builder().durable(&dir).build().unwrap();
        rt.shutdown().unwrap();
    }
    let err = match live_builder().durable(&dir).build() {
        Ok(_) => panic!("building over an existing store must fail"),
        Err(e) => e,
    };
    assert!(matches!(err, RuntimeError::Store(_)), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_validates_source_wiring() {
    let dir = test_dir("wrong-graph");
    {
        let rt = live_builder().durable(&dir).build().unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        s1.push(1.0).unwrap();
        rt.flush().unwrap();
        rt.shutdown().unwrap();
    }
    // A graph with different live sources must be rejected.
    let mut wrong = StreamRuntime::builder();
    let x = wrong.live_source("unrelated");
    wrong.add("alarm", Threshold::above(1.0), &[x]);
    let err = match wrong.durable(&dir).restore() {
        Ok(_) => panic!("restoring a mismatched graph must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, RuntimeError::Config(ref msg) if msg.contains("live sources")),
        "got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_bound_replay_and_manual_checkpoint_works() {
    let dir = test_dir("snapshots");
    {
        let rt = live_builder()
            .durable(&dir)
            .snapshot_every(3)
            .build()
            .unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        for i in 1..=10i64 {
            s1.push(i as f64).unwrap();
            rt.flush().unwrap();
        }
        // Manual checkpoint on top of the periodic ones.
        let phase = rt.checkpoint().unwrap();
        assert_eq!(phase, 10);
        rt.shutdown().unwrap();
    }
    // Snapshots are incremental: the first is full, later ones may be
    // deltas — list both kinds.
    let snapshots = ec_store::list_snapshot_files(&dir).unwrap();
    assert!(
        snapshots.iter().any(|f| f.phase == 10),
        "manual checkpoint missing: {snapshots:?}"
    );
    assert!(snapshots.len() >= 3, "periodic snapshots missing");

    let rec = ec_store::Recovery::open(&dir).unwrap();
    assert_eq!(rec.snapshot_phase(), 10);
    assert!(rec.tail_rows().is_empty(), "nothing to replay after 10");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_on_flush_snapshots_every_flush() {
    let dir = test_dir("on-flush");
    let rt = live_builder()
        .durable(&dir)
        .snapshot_on_flush(true)
        .build()
        .unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(1.0).unwrap();
    rt.flush().unwrap();
    s1.push(2.0).unwrap();
    rt.flush().unwrap();
    rt.shutdown().unwrap();
    let files = ec_store::list_snapshot_files(&dir).unwrap();
    let phases: Vec<u64> = files.iter().map(|f| f.phase).collect();
    assert_eq!(phases, vec![1, 2]);
    // The second snapshot rode the incremental path: a delta against
    // the phase-1 full.
    assert!(!files[0].delta && files[1].delta, "{files:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn build_or_restore_creates_then_resumes() {
    let dir = test_dir("build-or-restore");
    {
        let rt = live_builder().durable(&dir).build_or_restore().unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        s1.push(3.0).unwrap();
        rt.flush().unwrap();
        drop(rt); // crash
    }
    let rt = live_builder().durable(&dir).build_or_restore().unwrap();
    assert_eq!(rt.admitted(), 1);
    let report = rt.shutdown().unwrap();
    assert_eq!(report.script.phases(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The configurable WAL fsync interval composes with group commit:
/// every epoch sealed under `wal_sync_every` survives a crash and the
/// restored run still equals the sequential oracle.
#[test]
fn wal_sync_every_interval_survives_crash() {
    let dir = test_dir("sync-every");
    {
        let rt = live_builder()
            .durable(&dir)
            .wal_sync_every(2)
            .build()
            .unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        for i in 1..=5i64 {
            s1.push(i as f64).unwrap();
            rt.flush().unwrap();
        }
        drop(rt); // crash without shutdown
    }
    let rt = live_builder().durable(&dir).restore().unwrap();
    assert_eq!(rt.admitted(), 5, "all synced epochs recovered");
    let report = rt.shutdown().unwrap();
    assert_eq!(report.script.phases(), 5);
    let full = oracle_history(&report.script);
    assert_tail_matches(&full, &report.history.expect("history"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restored subscribers see the replayed tail again (at-least-once),
/// in serial order, before any new emissions.
#[test]
fn restore_redelivers_tail_emissions_in_order() {
    use std::sync::{Arc, Mutex};
    let dir = test_dir("redeliver");
    {
        let rt = live_builder()
            .durable(&dir)
            .snapshot_every(2)
            .build()
            .unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        // Alternating signs flip the alarm every phase, so every phase
        // carries a sink emission — including the replayed tail.
        for i in 0..5i64 {
            s1.push(if i % 2 == 0 { 100.0 } else { -100.0 }).unwrap();
            rt.flush().unwrap();
        }
        drop(rt); // crash after 5 committed phases
    }
    let rec = ec_store::Recovery::open(&dir).unwrap();
    let base = rec.snapshot_phase();
    assert!(base >= 2, "periodic snapshot expected, got {base}");
    drop(rec);

    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let rt = live_builder()
        .durable(&dir)
        .subscribe(move |e| sink.lock().unwrap().push(e.phase))
        .restore()
        .unwrap();
    let s1 = rt.handle_by_name("s1").unwrap();
    s1.push(-100.0).unwrap();
    rt.flush().unwrap();
    rt.shutdown().unwrap();

    let seen = seen.lock().unwrap();
    // In order, covering exactly the replayed tail (phases after the
    // snapshot) plus the new phase.
    assert_eq!(*seen, ((base + 1)..=6).collect::<Vec<u64>>(), "base {base}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Real corruption in the WAL body (not a torn tail) must refuse to
/// resume rather than silently truncate acknowledged history.
#[test]
fn restore_refuses_corrupt_wal_body() {
    let dir = test_dir("corrupt-body");
    {
        let rt = live_builder().durable(&dir).build().unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        for i in 1..=4i64 {
            s1.push(i as f64).unwrap();
            rt.flush().unwrap();
        }
        drop(rt);
    }
    // Flip a bit inside the SECOND row record: a complete record with a
    // checksum mismatch, followed by more data — unambiguous damage.
    let wal = ec_store::segment_path(&dir, 1);
    let bytes = std::fs::read(&wal).unwrap();
    let mut offset = 0usize;
    for _ in 0..2 {
        // skip header + first row
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
    }
    let mut damaged = bytes.clone();
    damaged[offset + 10] ^= 0x20;
    std::fs::write(&wal, &damaged).unwrap();

    let err = match live_builder().durable(&dir).restore() {
        Ok(_) => panic!("resuming over a corrupt WAL must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, RuntimeError::Store(ref msg) if msg.contains("corrupt")),
        "got {err:?}"
    );
    // The file was NOT truncated by the refused restore.
    assert_eq!(std::fs::read(&wal).unwrap(), damaged);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fresh durable build refuses a directory holding stale snapshots
/// from an earlier incarnation (they would restore the wrong state).
#[test]
fn build_refuses_stale_snapshot_files() {
    let dir = test_dir("stale-snapshots");
    {
        let rt = live_builder()
            .durable(&dir)
            .snapshot_every(1)
            .build()
            .unwrap();
        let s1 = rt.handle_by_name("s1").unwrap();
        s1.push(1.0).unwrap();
        rt.flush().unwrap();
        rt.shutdown().unwrap();
    }
    // "Reset" the store the wrong way: delete only the WAL directory.
    std::fs::remove_dir_all(ec_store::wal_dir(&dir)).unwrap();
    let err = match live_builder().durable(&dir).build() {
        Ok(_) => panic!("stale snapshots must block a fresh store"),
        Err(e) => e,
    };
    assert!(matches!(err, RuntimeError::Store(_)), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
