//! Multi-tenant session tests: fairness under a saturating neighbour,
//! per-tenant serializability on a shared pool, and the multi-tenant
//! kill/restore crash matrix.
//!
//! The bar (ISSUE 4): N independent tenant graphs share one worker
//! pool, every tenant's observable behaviour stays exactly what a
//! dedicated sequential run of its own committed script would produce,
//! a trickle tenant's phase-retirement latency stays bounded while a
//! neighbour saturates the pool, and killing a pool of durable tenants
//! mid-flight restores every one of them at its exact next phase.
//!
//! Thread count is `EC_SESSIONS_THREADS` (default 4) so CI can sweep a
//! 2/4/8 matrix over the same assertions.

use ec_core::ExecutionHistory;
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_runtime::{
    EpochPolicy, PhaseScript, RuntimeError, SessionPool, StreamRuntime, StreamRuntimeBuilder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool size under test (CI sweeps 2/4/8).
fn pool_threads() -> usize {
    std::env::var("EC_SESSIONS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ec-runtime-sessions-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The per-tenant graph (all operators snapshot-capable):
///
/// ```text
/// s1 ─┬─ sum ── avg(3) ── alarm(>10)
/// s2 ─┘
/// ```
fn tenant_builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntime::builder();
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    b
}

/// Runs the sequential oracle, uninterrupted, over a committed script
/// of the tenant graph.
fn oracle_history(script: &PhaseScript) -> ExecutionHistory {
    let mut b = ec_fusion::CorrelatorBuilder::new();
    let s1 = b.source("s1", script.replay(0));
    let s2 = b.source("s2", script.replay(1));
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

/// Asserts a restored run's history (phases `base+1..`) matches the
/// tail of the uninterrupted oracle run: every *observable* record.
/// Silent executions are filtered from both sides — the live engine's
/// silence-aware admission never schedules a provably silent
/// live-source poll, while the dense oracle records it (the contract
/// of `ExecutionHistory::equivalent`).
fn assert_tail_matches(full: &ExecutionHistory, restored: &ExecutionHistory, base: u64) {
    use ec_core::RecordedEmission;
    use ec_graph::VertexId;
    let observable =
        |(_, e): &&(ec_events::Phase, RecordedEmission)| !matches!(e, RecordedEmission::Silent);
    assert_eq!(full.vertex_count(), restored.vertex_count());
    for vi in 0..full.vertex_count() {
        let v = VertexId(vi as u32);
        let want: Vec<_> = full
            .of(v)
            .iter()
            .filter(|(p, _)| p.get() > base)
            .filter(observable)
            .collect();
        let got: Vec<_> = restored.of(v).iter().filter(observable).collect();
        assert_eq!(
            want.len(),
            got.len(),
            "{v:?}: oracle tail has {} executions after phase {base}, restored run has {}",
            want.len(),
            got.len()
        );
        for ((wp, we), (gp, ge)) in want.iter().zip(got.iter()) {
            assert_eq!(wp, gp, "{v:?}: phase mismatch");
            assert!(
                we.same_as(ge),
                "{v:?} phase {wp:?}: emission mismatch: {we:?} vs {ge:?}"
            );
        }
    }
}

/// Every tenant on a shared pool produces exactly its own sequential
/// oracle's history — serializability is preserved per tenant under
/// multiplexed execution.
#[test]
fn each_tenant_matches_its_own_oracle_on_a_shared_pool() {
    let pool = SessionPool::builder()
        .threads(pool_threads())
        .max_sessions(4)
        .build();
    let sessions: Vec<_> = (0..3)
        .map(|i| pool.open(format!("tenant-{i}"), tenant_builder()).unwrap())
        .collect();

    // Interleave pushes and flushes across tenants so their phases are
    // genuinely multiplexed on the shared workers.
    let mut rng = SmallRng::seed_from_u64(41);
    for step in 0..240 {
        let s = &sessions[step % sessions.len()];
        let which = if rng.gen_bool(0.5) { "s1" } else { "s2" };
        s.handle_by_name(which)
            .unwrap()
            .push(rng.gen_range(-20i64..30) as f64)
            .unwrap();
        if rng.gen_range(0u32..4) == 0 {
            s.flush().unwrap();
        }
    }
    for s in sessions {
        let name = s.name().to_string();
        let report = s.close().unwrap();
        let oracle = oracle_history(&report.script);
        let live = report.history.expect("history recorded");
        assert_eq!(
            oracle.equivalent(&live),
            Ok(()),
            "{name}: shared-pool run diverged from its sequential oracle"
        );
    }
}

/// The starvation test: one tenant saturates the pool continuously
/// while a trickle tenant commits one phase at a time. The trickle
/// tenant's phase-retirement latency must stay bounded (weighted
/// round-robin admission + the saturator's in-flight cap bound the
/// foreign work ahead of it), and both tenants must make progress.
#[test]
fn trickle_tenant_latency_stays_bounded_under_saturation() {
    let pool = SessionPool::builder()
        .threads(pool_threads())
        .max_sessions(2)
        .build();

    // Saturator: auto-sealing epochs, bounded in-flight, script and
    // history off so the run can push events indefinitely.
    let hot = pool
        .open(
            "hot",
            tenant_builder()
                .epoch_policy(EpochPolicy::ByCount(16))
                .max_inflight(16)
                .record_history(false)
                .record_script(false),
        )
        .unwrap();
    let trickle = pool
        .open(
            "trickle",
            tenant_builder().record_history(false).record_script(false),
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let hot_handle = hot.handle_by_name("s1").unwrap();
    let stop2 = Arc::clone(&stop);
    let saturator = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            // Pushes auto-seal every 16 events; backpressure blocks at
            // the in-flight cap, keeping the pool saturated throughout.
            if hot_handle.push((i % 100) as f64).is_err() {
                break;
            }
            i += 1;
        }
    });

    // Let the saturator build a real backlog before measuring.
    std::thread::sleep(Duration::from_millis(100));

    let trickle_s1 = trickle.handle_by_name("s1").unwrap();
    let mut max_latency = Duration::ZERO;
    const ROUNDS: u64 = 25;
    for i in 0..ROUNDS {
        trickle_s1.push(i as f64).unwrap();
        let start = Instant::now();
        trickle.flush().unwrap();
        trickle.wait_idle().unwrap();
        max_latency = max_latency.max(start.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    saturator.join().unwrap();

    let rows = pool.metrics();
    let hot_retired = rows
        .iter()
        .find(|r| r.name == "hot")
        .unwrap()
        .phases_retired;
    let trickle_retired = rows
        .iter()
        .find(|r| r.name == "trickle")
        .unwrap()
        .phases_retired;

    // Both made progress...
    assert!(
        hot_retired >= 50,
        "saturator should have retired many phases, got {hot_retired}"
    );
    assert_eq!(trickle_retired, ROUNDS, "every trickle phase retired");
    // ...and the trickle tenant was never starved: each of its phases
    // retired in bounded time despite a continuously saturated pool.
    // The bound is generous (debug builds, loaded CI machines); real
    // starvation shows up as seconds-to-forever.
    assert!(
        max_latency < Duration::from_secs(2),
        "trickle phase-retirement latency {max_latency:?} exceeds bound"
    );

    hot.close().unwrap();
    trickle.close().unwrap();
}

/// A failing tenant (module panic) must not disturb its neighbours:
/// the failure surfaces through that tenant's own API while the other
/// session keeps committing and retiring phases.
#[test]
fn tenant_failure_is_isolated() {
    use ec_core::{Emission, ExecCtx, FnModule};

    let pool = SessionPool::builder()
        .threads(pool_threads())
        .max_sessions(2)
        .build();

    let mut bomb_builder = StreamRuntime::builder();
    let src = bomb_builder.live_source("s");
    bomb_builder.add(
        "bomb",
        FnModule::new("bomb", |ctx: ExecCtx<'_>| {
            if ctx.phase.get() >= 3 {
                panic!("tenant exploded");
            }
            Emission::Silent
        }),
        &[src],
    );
    let bomb = pool.open("bomb", bomb_builder).unwrap();
    let healthy = pool.open("healthy", tenant_builder()).unwrap();

    let bs = bomb.handle_by_name("s").unwrap();
    for i in 0..5 {
        // Pushes may start failing once the panic propagates; that is
        // the expected surface.
        let _ = bs.push(i as f64);
        let _ = bomb.flush();
    }
    let err = match bomb.close() {
        Ok(_) => panic!("bombed tenant must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, RuntimeError::Engine(_) | RuntimeError::Closed),
        "got {err:?}"
    );

    // The neighbour is unaffected, before and after the failure.
    let hs = healthy.handle_by_name("s1").unwrap();
    for i in 0..20 {
        hs.push(i as f64).unwrap();
        healthy.flush().unwrap();
    }
    healthy.wait_idle().unwrap();
    let report = healthy.close().unwrap();
    assert_eq!(report.phases, 20);
    let oracle = oracle_history(&report.script);
    assert_eq!(oracle.equivalent(&report.history.unwrap()), Ok(()));
}

/// One scripted interleaving step for the crash matrix.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(usize, f64),
    Flush,
}

fn random_ops(rng: &mut SmallRng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            if rng.gen_range(0usize..10) < 7 {
                Op::Push(rng.gen_range(0usize..2), rng.gen_range(-20i64..30) as f64)
            } else {
                Op::Flush
            }
        })
        .collect()
}

fn apply_ops(rt: &StreamRuntime, ops: &[Op]) {
    let handles = [
        rt.handle_by_name("s1").unwrap(),
        rt.handle_by_name("s2").unwrap(),
    ];
    for op in ops {
        match *op {
            Op::Push(which, v) => handles[which].push(v).unwrap(),
            Op::Flush => {
                rt.flush().unwrap();
            }
        }
    }
}

/// The multi-tenant crash matrix: a pool of 3 durable tenants is
/// killed mid-flight (sessions and pool dropped without shutdown) at a
/// random point per tenant; a fresh pool restores all of them, each
/// resumes at its exact committed phase, and after more traffic every
/// tenant's stitched run equals its own uninterrupted sequential
/// oracle — durability and serializability are per-tenant properties,
/// unaffected by sharing the pool.
#[test]
fn killed_pool_restores_every_tenant_to_its_own_oracle() {
    const TENANTS: usize = 3;
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(seed * 7177 + 13);
        let root = test_dir("kill-matrix");
        let ops: Vec<Vec<Op>> = (0..TENANTS).map(|_| random_ops(&mut rng, 50)).collect();
        let kill_at: Vec<usize> = (0..TENANTS).map(|_| rng.gen_range(5usize..45)).collect();

        // First incarnation: all tenants durable under the pool root,
        // traffic interleaved round-robin up to each tenant's kill
        // point, then the whole pool is dropped — no shutdown, no
        // final seal.
        {
            let pool = SessionPool::builder()
                .threads(pool_threads())
                .max_sessions(TENANTS)
                .durable_root(&root)
                .build();
            let sessions: Vec<_> = (0..TENANTS)
                .map(|i| {
                    pool.open(format!("tenant-{i}"), tenant_builder().snapshot_every(4))
                        .unwrap()
                })
                .collect();
            let mut cursor = [0usize; TENANTS];
            loop {
                let mut progressed = false;
                for (i, s) in sessions.iter().enumerate() {
                    if cursor[i] < kill_at[i] {
                        apply_ops(s, &ops[i][cursor[i]..cursor[i] + 1]);
                        cursor[i] += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            drop(sessions); // simulated crash of every tenant
            drop(pool);
        }

        // Peek at what each store committed (as `ec recover` would).
        let mut committed = Vec::new();
        let mut bases = Vec::new();
        for i in 0..TENANTS {
            let dir = ec_store::session_dir(&root, &format!("tenant-{i}"));
            let rec = ec_store::Recovery::open(&dir).unwrap();
            committed.push(rec.committed_phases());
            bases.push(rec.snapshot_phase());
        }

        // Second incarnation: fresh pool, same root, same names —
        // every tenant restores independently and continues.
        let pool = SessionPool::builder()
            .threads(pool_threads())
            .max_sessions(TENANTS)
            .durable_root(&root)
            .build();
        let sessions: Vec<_> = (0..TENANTS)
            .map(|i| {
                pool.open(format!("tenant-{i}"), tenant_builder().snapshot_every(4))
                    .unwrap()
            })
            .collect();
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(
                s.admitted(),
                committed[i],
                "tenant-{i} resumes at its exact committed phase (seed {seed})"
            );
            apply_ops(s, &ops[i][kill_at[i]..]);
        }
        for (i, s) in sessions.into_iter().enumerate() {
            let report = s.close().unwrap();
            assert!(report.script.phases() >= committed[i]);
            let full = oracle_history(&report.script);
            let live = report.history.expect("history recorded");
            assert_tail_matches(&full, &live, bases[i]);
        }
        drop(pool);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Opening more sessions than the pool has slots fails cleanly, and a
/// closed session's slot is reusable.
#[test]
fn session_slots_are_bounded_and_recycled() {
    let pool = SessionPool::builder().threads(2).max_sessions(2).build();
    let a = pool.open("a", tenant_builder()).unwrap();
    let b = pool.open("b", tenant_builder()).unwrap();
    let err = match pool.open("c", tenant_builder()) {
        Ok(_) => panic!("third session must be refused"),
        Err(e) => e,
    };
    assert!(matches!(err, RuntimeError::Engine(_)), "got {err:?}");
    // Duplicate names are refused while open.
    assert!(pool.open("a", tenant_builder()).is_err());
    a.close().unwrap();
    // The freed slot serves a new session, which runs normally.
    let c = pool.open("c", tenant_builder()).unwrap();
    let cs = c.handle_by_name("s1").unwrap();
    cs.push(1.0).unwrap();
    c.flush().unwrap();
    assert_eq!(c.wait_idle().unwrap(), 1);
    c.close().unwrap();
    b.close().unwrap();
    assert_eq!(pool.session_count(), 0);
}

/// `checkpoint_all` snapshots every durable tenant at its own retired
/// boundary; restore then replays nothing (snapshot == committed).
#[test]
fn checkpoint_all_snapshots_every_durable_tenant() {
    let root = test_dir("checkpoint-all");
    let pool = SessionPool::builder()
        .threads(pool_threads())
        .max_sessions(2)
        .durable_root(&root)
        .build();
    let sessions: Vec<_> = (0..2)
        .map(|i| pool.open(format!("t{i}"), tenant_builder()).unwrap())
        .collect();
    for (i, s) in sessions.iter().enumerate() {
        let h = s.handle_by_name("s1").unwrap();
        for k in 0..(3 + i as i64) {
            h.push(k as f64).unwrap();
            s.flush().unwrap();
        }
    }
    let rows = pool.checkpoint_all();
    assert_eq!(rows.len(), 2);
    for (i, (name, result)) in rows.iter().enumerate() {
        assert_eq!(name, &format!("t{i}"));
        assert_eq!(*result.as_ref().unwrap(), 3 + i as u64);
    }
    for s in sessions {
        s.close().unwrap();
    }
    for i in 0..2 {
        let dir = ec_store::session_dir(&root, &format!("t{i}"));
        let rec = ec_store::Recovery::open(&dir).unwrap();
        assert_eq!(rec.snapshot_phase(), 3 + i as u64);
        assert!(rec.tail_rows().is_empty(), "snapshot covers everything");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Two distinct session names that sanitize to the same durable store
/// directory must not both open — one store never gets two live WAL
/// writers.
#[test]
fn colliding_store_directories_are_refused() {
    let root = test_dir("dir-collision");
    let pool = SessionPool::builder()
        .threads(2)
        .max_sessions(2)
        .durable_root(&root)
        .build();
    // "a b" and "a_b" both sanitize to root/a_b.
    let first = pool.open("a b", tenant_builder()).unwrap();
    let err = match pool.open("a_b", tenant_builder()) {
        Ok(_) => panic!("colliding store directory must be refused"),
        Err(e) => e,
    };
    assert!(
        matches!(err, RuntimeError::Config(ref msg) if msg.contains("store directory")),
        "got {err:?}"
    );
    first.close().unwrap();
    // Freed with its holder: now the sanitized name can open (and
    // restores the first session's store, same graph).
    let second = pool.open("a_b", tenant_builder()).unwrap();
    second.close().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// A restored session's replayed WAL backlog counts toward
/// `events_committed` but not toward `events_per_sec` — the rate
/// reports live throughput of this incarnation only.
#[test]
fn restored_session_rate_excludes_replayed_backlog() {
    let root = test_dir("restore-rate");
    {
        let pool = SessionPool::builder()
            .threads(2)
            .max_sessions(1)
            .durable_root(&root)
            .build();
        let s = pool.open("t", tenant_builder()).unwrap();
        let h = s.handle_by_name("s1").unwrap();
        for i in 0..20 {
            h.push(i as f64).unwrap();
            s.flush().unwrap();
        }
        s.wait_idle().unwrap();
        drop(s); // crash: the 20 committed phases stay in the WAL
    }
    let pool = SessionPool::builder()
        .threads(2)
        .max_sessions(1)
        .durable_root(&root)
        .build();
    let s = pool.open("t", tenant_builder()).unwrap();
    assert_eq!(s.admitted(), 20, "tail replayed");
    let row = &pool.metrics()[0];
    assert_eq!(row.events_committed, 20, "cumulative count keeps replay");
    assert_eq!(
        row.events_per_sec, 0.0,
        "no live events yet — replay must not inflate the rate"
    );
    s.close().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// Per-tenant metrics rows report independent progress.
#[test]
fn metrics_rows_are_per_tenant() {
    let pool = SessionPool::builder()
        .threads(pool_threads())
        .max_sessions(3)
        .build();
    let busy = pool.open("busy", tenant_builder()).unwrap();
    let idle = pool.open("idle", tenant_builder()).unwrap();
    let h = busy.handle_by_name("s1").unwrap();
    for i in 0..10 {
        h.push(i as f64).unwrap();
        busy.flush().unwrap();
    }
    busy.wait_idle().unwrap();

    let rows = pool.metrics();
    assert_eq!(rows.len(), 2);
    let busy_row = rows.iter().find(|r| r.name == "busy").unwrap();
    let idle_row = rows.iter().find(|r| r.name == "idle").unwrap();
    assert_eq!(busy_row.phases_retired, 10);
    assert_eq!(busy_row.events_committed, 10);
    assert_eq!(idle_row.phases_retired, 0);
    assert_eq!(idle_row.events_committed, 0);
    assert!(busy_row.engine.executions > 0);

    busy.close().unwrap();
    idle.close().unwrap();
}

/// Aggregate throughput of 8 tenants sharing a pool must stay within
/// 80% of a single tenant using the same pool size — the pooling tax
/// is bounded. Ignored by default (a timing measurement); the CI
/// sessions-stress job runs it in release mode.
#[test]
#[ignore = "timing-sensitive; run explicitly (CI sessions-stress job)"]
fn aggregate_throughput_stays_within_80_percent_of_single_tenant() {
    const EVENTS_TOTAL: u64 = 64_000;
    let threads = pool_threads();

    fn bench_builder() -> StreamRuntimeBuilder {
        tenant_builder()
            .epoch_policy(EpochPolicy::ByCount(16))
            .max_inflight(64)
            .record_history(false)
            .record_script(false)
    }

    let run = |tenants: usize| -> f64 {
        let pool = SessionPool::builder()
            .threads(threads)
            .max_sessions(tenants)
            .build();
        let sessions: Vec<_> = (0..tenants)
            .map(|i| pool.open(format!("t{i}"), bench_builder()).unwrap())
            .collect();
        // One producer, round-robin across tenants: the same ingestion
        // topology as the single-tenant baseline, so the measured gap
        // is the pooling tax (tagged dispatch, lane rotation, per-
        // tenant scheduler states) rather than producer-thread
        // oversubscription noise.
        let handles: Vec<_> = sessions
            .iter()
            .map(|s| s.handle_by_name("s1").unwrap())
            .collect();
        let start = Instant::now();
        for i in 0..EVENTS_TOTAL {
            handles[i as usize % tenants]
                .push((i % 100) as f64)
                .unwrap();
        }
        for s in &sessions {
            s.flush().unwrap();
            s.wait_idle().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        for s in sessions {
            s.close().unwrap();
        }
        EVENTS_TOTAL as f64 / elapsed
    };

    // Warmup, then measure.
    run(1);
    let single = run(1);
    let multi = run(8);
    eprintln!(
        "threads={threads}: single-tenant {single:.0} ev/s, 8 tenants {multi:.0} ev/s \
         ({:.1}%)",
        100.0 * multi / single
    );
    assert!(
        multi >= 0.8 * single,
        "8-tenant aggregate {multi:.0} ev/s below 80% of single-tenant {single:.0} ev/s"
    );
}
