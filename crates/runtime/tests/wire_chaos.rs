//! Chaos matrix for the wire plane: the engine's guarantees must
//! survive the network misbehaving.
//!
//! Every test routes `WireClient` through a seeded [`FaultNet`]
//! (latency, torn mid-frame resets, black-holes, duplicated delivery,
//! kill-at-Nth-op) against a real `WireServer` on loopback, and then
//! checks the two invariants end to end:
//!
//! 1. **acked ⇒ committed exactly once** — every `push_batch` the
//!    client saw acknowledged appears in the committed script exactly
//!    once, in per-source FIFO order, however many times the link
//!    died, duplicated, or replayed;
//! 2. **oracle equivalence** — the committed script replayed through
//!    the sequential oracle reproduces the live history.
//!
//! Plus the liveness and drain obligations: a wedged half-open
//! producer is reaped by deadline without stalling retirement, and a
//! draining server refuses new Hellos, flushes acked prefixes, and
//! says goodbye to subscribers.

use ec_core::ExecutionHistory;
use ec_events::Value;
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_runtime::serve::wire::{self, Frame, Role, WireError};
use ec_runtime::serve::{FaultNet, NetFault, NetFaultPlan, RetryPolicy, WireClient, WireServer};
use ec_runtime::{PhaseScript, SessionPool, StreamRuntime, StreamRuntimeBuilder};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The per-tenant graph, shared with `serve.rs`:
///
/// ```text
/// s1 ─┬─ sum ── avg(3) ── alarm(>10)
/// s2 ─┘
/// ```
fn tenant_builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntime::builder();
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    b
}

/// Runs the sequential oracle, uninterrupted, over a committed script
/// of the tenant graph.
fn oracle_history(script: &PhaseScript) -> ExecutionHistory {
    let mut b = ec_fusion::CorrelatorBuilder::new();
    let s1 = b.source("s1", script.replay(0));
    let s2 = b.source("s2", script.replay(1));
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

/// One tenant on loopback with knobs sized for chaos: quick pings so
/// liveness machinery actually runs, a short drain grace, and enough
/// idle headroom that an honest-but-slow client isn't reaped.
fn chaos_server(tenant: &str) -> WireServer {
    let pool = SessionPool::builder().threads(4).max_sessions(1).build();
    let sessions = vec![pool.open(tenant.to_string(), tenant_builder()).unwrap()];
    WireServer::builder()
        .ping_interval(Duration::from_millis(100))
        .idle_timeout(Duration::from_secs(5))
        .drain_grace(Duration::from_secs(2))
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap()
}

/// A retry policy that keeps going long past any seeded fault plan:
/// kills only poison connections already open, so a later dial always
/// lands — the client must simply outlast the plan.
fn stubborn(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 64,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        seed,
    }
}

/// The committed FIFO column of one source as `f64`s.
fn committed_column(script: &PhaseScript, source: usize) -> Vec<f64> {
    script
        .column(source)
        .filter_map(|cell| match cell {
            Some(Value::Float(f)) => Some(*f),
            Some(other) => panic!("unexpected committed value {other:?}"),
            None => None,
        })
        .collect()
}

fn assert_oracle_equivalent(name: &str, script: &PhaseScript, history: ExecutionHistory) {
    let oracle = oracle_history(script);
    assert_eq!(
        oracle.equivalent(&history),
        Ok(()),
        "{name}: chaos run diverged from its sequential oracle"
    );
}

/// Drives one producer through a seeded fault plan and checks both
/// invariants. Returns (acked per source, reconnects) for extra
/// assertions.
fn run_chaos_producer(seed: u64) {
    let server = chaos_server("solo");
    let addr = server.local_addr().to_string();
    let fault = FaultNet::new(NetFaultPlan::seeded(seed, 400));
    let mut client = WireClient::builder()
        .retry(stubborn(seed))
        .net(fault.handle())
        .op_deadline(Duration::from_millis(300))
        .connect(&addr, "solo", Role::Producer)
        .expect("producer connects through the fault plan");
    assert!(
        client.session().is_some(),
        "retrying producer has a session"
    );

    // Distinct values per (source, index) so exactly-once is a simple
    // sequence comparison on the committed columns.
    let mut acked: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut rng = seed ^ 0xD1CE;
    for i in 0..30u64 {
        let source = (splitmix(&mut rng) % 2) as u32;
        let n = 1 + (splitmix(&mut rng) % 4) as usize;
        let values: Vec<Value> = (0..n)
            .map(|j| Value::Float((source as f64) * 1_000_000.0 + (i * 10 + j as u64) as f64))
            .collect();
        let accepted = client
            .push_batch(source, &values)
            .expect("push survives the fault plan");
        assert_eq!(accepted as usize, values.len(), "acked batch is whole");
        acked[source as usize].extend(values.iter().map(|v| match v {
            Value::Float(f) => *f,
            _ => unreachable!(),
        }));
        if splitmix(&mut rng).is_multiple_of(5) {
            client.seal().expect("seal survives the fault plan");
        }
    }
    client.seal().expect("final seal");
    let reconnects = client.reconnects();
    drop(client);

    let stats = server.stats();
    let mut reports = server.shutdown();
    let (name, report) = reports.remove(0);
    let report = report.expect("tenant closes cleanly");
    for (source, acked_column) in acked.iter().enumerate() {
        assert_eq!(
            &committed_column(&report.script, source),
            acked_column,
            "{name} seed {seed}: source {source} committed column must equal \
             the acked FIFO sequence exactly once (reconnects={reconnects}, \
             dedup_hits={}, ops={})",
            stats.dedup_hits,
            fault.ops(),
        );
    }
    assert_oracle_equivalent(
        &name,
        &report.script,
        report.history.expect("history recorded"),
    );
}

/// splitmix64 — deterministic per-test randomness without a rand dep.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    // Each case stands up a real server + pool; keep the count modest
    // and let CI's release-mode job widen it via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded fault plans — resets, black-holes, duplicate delivery,
    /// latency, kill-at-Nth — never break exactly-once or oracle
    /// equivalence for a resumable producer.
    #[test]
    fn seeded_chaos_acked_commits_exactly_once(seed in 0u64..1_000_000) {
        run_chaos_producer(seed);
    }
}

/// Duplicated delivery specifically: every producer frame is written
/// twice for a stretch of the connection. The session window must
/// absorb the duplicates (re-ack, never re-apply) and the server must
/// count the dedup hits.
#[test]
fn duplicated_delivery_is_deduped() {
    let server = chaos_server("dup");
    let addr = server.local_addr().to_string();
    let mut plan = NetFaultPlan::new();
    for op in 2..40 {
        plan = plan.fail_at(op, NetFault::Duplicate);
    }
    let fault = FaultNet::new(plan);
    let mut client = WireClient::builder()
        .retry(stubborn(7))
        .net(fault.handle())
        .op_deadline(Duration::from_millis(300))
        .connect(&addr, "dup", Role::Producer)
        .unwrap();
    let mut acked = Vec::new();
    for i in 0..10 {
        let v = Value::Float(i as f64 + 0.5);
        assert_eq!(client.push_batch(0, std::slice::from_ref(&v)).unwrap(), 1);
        acked.push(i as f64 + 0.5);
    }
    client.seal().unwrap();
    drop(client);

    let stats = server.stats();
    assert!(
        stats.dedup_hits > 0,
        "duplicated frames must be re-acked from the session window \
         (dedup_hits={}, ops={})",
        stats.dedup_hits,
        fault.ops()
    );
    let (_, report) = server.shutdown().remove(0);
    let report = report.unwrap();
    assert_eq!(
        committed_column(&report.script, 0),
        acked,
        "duplicated delivery must commit exactly once"
    );
}

/// A reconnect storm: N producers on one source, each killed and
/// resumed at random points. The committed script must equal the
/// per-producer FIFO interleaving — zero duplicates, zero losses —
/// and the server must have seen real session resumes.
#[test]
fn reconnect_storm_one_source_commits_fifo_per_producer() {
    const PRODUCERS: u64 = 4;
    const BATCHES: u64 = 20;
    let server = chaos_server("storm");
    let addr = server.local_addr().to_string();

    let mut workers = Vec::new();
    for p in 0..PRODUCERS {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            // Every producer gets its own fault plan with a guaranteed
            // mid-run kill, so each one is forced through at least one
            // resume.
            let mut rng = 0xBAD_5EED ^ p;
            let kill = 6 + splitmix(&mut rng) % 60;
            let plan = NetFaultPlan::seeded(p.wrapping_mul(977) + 13, 200).kill_at(kill);
            let fault = FaultNet::new(plan);
            let mut client = WireClient::builder()
                .retry(stubborn(p))
                .net(fault.handle())
                .op_deadline(Duration::from_millis(300))
                .connect(&addr, "storm", Role::Producer)
                .expect("storm producer connects");
            for k in 0..BATCHES {
                let v = Value::Float((p * 100_000 + k) as f64);
                let accepted = client
                    .push_batch(0, &[v])
                    .expect("storm push survives kills");
                assert_eq!(accepted, 1);
                if k % 7 == 3 {
                    client.seal().expect("storm seal survives kills");
                }
            }
            client.reconnects()
        }));
    }
    let reconnects: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    // Flush whatever the last producer left buffered.
    let mut sealer = WireClient::connect(&addr, "", "storm", Role::Producer).unwrap();
    sealer.seal().unwrap();
    drop(sealer);

    let stats = server.stats();
    let (_, report) = server.shutdown().remove(0);
    let report = report.unwrap();
    let committed = committed_column(&report.script, 0);
    assert_eq!(
        committed.len() as u64,
        PRODUCERS * BATCHES,
        "every acked push commits exactly once (reconnects={reconnects}, \
         server reconnects={}, dedup_hits={})",
        stats.reconnects,
        stats.dedup_hits
    );
    // Per-producer FIFO: each producer's values appear in its own push
    // order; and globally there are no duplicates.
    for p in 0..PRODUCERS {
        let mine: Vec<u64> = committed
            .iter()
            .map(|f| *f as u64)
            .filter(|v| v / 100_000 == p)
            .map(|v| v % 100_000)
            .collect();
        let want: Vec<u64> = (0..BATCHES).collect();
        assert_eq!(mine, want, "producer {p} column is not FIFO/complete");
    }
    assert!(
        stats.reconnects > 0,
        "kills must force at least one session resume"
    );
    assert_oracle_equivalent(
        "storm",
        &report.script,
        report.history.expect("history recorded"),
    );
}

/// A half-open producer — handshake completed, then silence — is
/// pinged, then reaped by the idle deadline, while a live producer on
/// the same tenant keeps committing the whole time: a wedged peer
/// cannot stall retirement.
#[test]
fn half_open_producer_is_reaped_without_stalling_retirement() {
    let pool = SessionPool::builder().threads(4).max_sessions(1).build();
    let sessions = vec![pool.open("reap".to_string(), tenant_builder()).unwrap()];
    let server = WireServer::builder()
        .ping_interval(Duration::from_millis(50))
        .idle_timeout(Duration::from_millis(200))
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap();
    let addr = server.local_addr();

    // The wedged peer: says hello, then never another byte.
    let mut wedged = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut wedged).unwrap();
    wire::write_frame(
        &mut wedged,
        &Frame::Hello {
            token: String::new(),
            tenant: "reap".into(),
            role: Role::Producer,
        },
    )
    .unwrap();
    wedged.flush().unwrap();

    // The honest producer keeps working while the wedged one decays.
    let mut live = WireClient::connect(addr, "", "reap", Role::Producer).unwrap();
    let mut acked = Vec::new();
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(700) {
        let v = Value::Float(acked.len() as f64);
        assert_eq!(live.push_batch(0, std::slice::from_ref(&v)).unwrap(), 1);
        acked.push(acked.len() as f64);
        live.seal().unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }
    let stats = server.stats();
    assert!(
        stats.reaped >= 1,
        "half-open producer must be reaped by the idle deadline (stats: {stats:?})"
    );
    assert!(
        stats.pings >= 1,
        "the server must have probed the silent peer before reaping it"
    );
    drop(live);
    let (_, report) = server.shutdown().remove(0);
    let report = report.unwrap();
    assert_eq!(
        committed_column(&report.script, 0),
        acked,
        "the live producer's pushes all committed while the wedge decayed"
    );
}

/// `drain()` refuses new Hellos with an explicit reason, flushes the
/// acked prefix without any client seal, and closes subscribers with
/// a Goodbye once the alarm stream is complete.
#[test]
fn drain_refuses_hellos_flushes_acked_prefix_and_says_goodbye() {
    let server = chaos_server("drain");
    let addr = server.local_addr().to_string();

    // Acked-but-unsealed pushes: drain itself must flush these.
    let mut producer = WireClient::connect(&addr, "", "drain", Role::Producer).unwrap();
    // Alternating values flip the avg(3) across the threshold every
    // phase; the edge-triggered alarm therefore emits once per phase,
    // so the subscriber's count pins the whole flushed prefix.
    let values: Vec<f64> = (0..8)
        .map(|i| if i % 2 == 0 { 20.0 } else { 0.0 })
        .collect();
    for v in &values {
        assert_eq!(producer.push_batch(0, &[Value::Float(*v)]).unwrap(), 1);
    }

    // A subscriber that drains until the server says goodbye.
    let mut sub = WireClient::connect(&addr, "", "drain", Role::Subscriber).unwrap();
    sub.subscribe().unwrap();
    let collector = std::thread::spawn(move || {
        let mut alarms = Vec::new();
        loop {
            match sub.next_alarms() {
                Ok(batch) => alarms.extend(batch),
                Err(WireError::Closed(reason)) => return (alarms, reason),
                Err(e) => panic!("subscriber died without a goodbye: {e}"),
            }
        }
    });

    // A wedged producer mid-frame keeps the drain window open long
    // enough to observe the refusal deterministically: drain won't
    // interrupt a frame in flight, so it waits out the grace period.
    let mut wedged = TcpStream::connect(&addr).unwrap();
    wire::write_preamble(&mut wedged).unwrap();
    wire::write_frame(
        &mut wedged,
        &Frame::Hello {
            token: String::new(),
            tenant: "drain".into(),
            role: Role::Producer,
        },
    )
    .unwrap();
    let mut partial = Vec::new();
    wire::write_frame(
        &mut partial,
        &Frame::PushBatch {
            seq: 0,
            source: 0,
            bins: vec![Some(Value::Float(99.0))],
        },
    )
    .unwrap();
    wedged.write_all(&partial[..partial.len() / 2]).unwrap();
    wedged.flush().unwrap();
    // Let the server accept the wedge and read the torn prefix before
    // draining starts.
    std::thread::sleep(Duration::from_millis(100));

    let drainer = std::thread::spawn(move || server.drain());

    // New Hellos are refused while draining.
    let refusal = loop {
        match WireClient::connect(&addr, "", "drain", Role::Producer) {
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => break e,
        }
    };
    match refusal {
        WireError::Refused(reason) => {
            assert!(
                reason.contains("draining"),
                "refusal must name the drain: {reason}"
            )
        }
        // The drain can complete between attempts; a dead listener is
        // an acceptable (if less precise) outcome on a slow machine.
        WireError::Io(_) | WireError::Closed(_) => {}
        other => panic!("unexpected refusal: {other}"),
    }

    // The idle producer is told goodbye; its next op fails cleanly.
    // Probes that race the drain flag and still get acked are held to
    // the same contract: acked ⇒ committed, even mid-drain.
    let mut acked_probes = 0usize;
    let err = loop {
        match producer.push_batch(0, &[Value::Float(0.0)]) {
            Ok(_) => {
                acked_probes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => break e,
        }
    };
    assert!(
        matches!(
            &err,
            WireError::Closed(_) | WireError::Io(_) | WireError::Refused(_)
        ),
        "drained producer fails with a typed close: {err}"
    );
    drop(producer);

    let (alarms, reason) = collector.join().unwrap();
    assert!(
        reason.contains("complete"),
        "subscriber goodbye explains the drain: {reason}"
    );
    // avg(3) of 20,0,20,… sits at 20, 10, 13.3, 6.7, … — above, then
    // not-above, alternating: the threshold state flips every phase,
    // so one alarm per flushed phase.
    assert_eq!(
        alarms.len(),
        values.len(),
        "subscriber saw the flushed prefix"
    );

    let mut reports = drainer.join().unwrap();
    let (_, report) = reports.remove(0);
    let report = report.expect("drained tenant closes cleanly");
    // The acked probes commit as trailing 0.0 phases; their avg stays
    // below the threshold, so they add no alarms.
    let mut want = values.clone();
    want.extend(std::iter::repeat_n(0.0, acked_probes));
    assert_eq!(
        committed_column(&report.script, 0),
        want,
        "drain must flush the acked-but-unsealed prefix"
    );
}

/// Clean closes (client Goodbye) and crashes (abrupt RST/EOF) land in
/// different counters, so operators can tell deploys from failures.
#[test]
fn disconnect_counters_distinguish_clean_from_crash() {
    let server = chaos_server("counts");
    let addr = server.local_addr().to_string();

    // Clean: a real client's Drop says goodbye.
    let clean = WireClient::connect(&addr, "", "counts", Role::Producer).unwrap();
    assert_eq!(clean.server_version(), wire::WIRE_VERSION);
    drop(clean);

    // Crash: a raw socket that completes the handshake then vanishes.
    {
        let mut raw = TcpStream::connect(&addr).unwrap();
        wire::write_preamble(&mut raw).unwrap();
        wire::write_frame(
            &mut raw,
            &Frame::Hello {
                token: String::new(),
                tenant: "counts".into(),
                role: Role::Producer,
            },
        )
        .unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
    } // dropped without goodbye

    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let stats = server.stats();
        if stats.clean_closes >= 1 && stats.crash_closes >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "counters never settled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}
