//! Property tests for the `ec serve` wire framing.
//!
//! Two obligations, mirroring `ec-store`'s `wal_props.rs`:
//!
//! 1. `encode` → `decode` (and the full `write_frame` → `read_frame`
//!    envelope) is the identity on every frame type;
//! 2. corrupt input — truncation, single-bit flips, oversized length
//!    prefixes, wrong preamble version, unknown tags, trailing bytes —
//!    always lands in a typed [`WireError`], never a panic, never a
//!    silent misparse.

use ec_events::Value;
use ec_runtime::serve::wire::{
    self, FlowState, Frame, Role, WireAlarm, WireError, MAX_FRAME, MIN_WIRE_VERSION, WIRE_MAGIC,
    WIRE_VERSION,
};
use proptest::prelude::*;
use std::io::{Cursor, Read};

/// An arbitrary `Value` covering every variant, from three raw draws.
/// Floats stay NaN-free so `Frame: PartialEq` compares cleanly; the
/// byte fixture covers the NaN bit pattern separately.
fn value_from(tag: u8, num: i64, frac: f64) -> Value {
    match tag % 6 {
        0 => Value::Unit,
        1 => Value::Bool(num % 2 == 0),
        2 => Value::Int(num),
        3 => Value::Float(frac),
        4 => Value::text(format!("s{num}")),
        _ => Value::vector(vec![frac, -frac, num as f64]),
    }
}

/// An arbitrary frame covering every tag, from raw draws. `kind`
/// selects the variant; the rest parameterize its fields.
fn frame_from(kind: u8, seq: u64, idx: u32, text: &str, cells: &[(u8, i64, f64)]) -> Frame {
    match kind % 20 {
        0 => Frame::Hello {
            token: format!("t-{text}"),
            tenant: text.to_string(),
            role: if seq.is_multiple_of(2) {
                Role::Producer
            } else {
                Role::Subscriber
            },
        },
        1 => Frame::HelloOk {
            tenant: text.to_string(),
            sources: cells
                .iter()
                .map(|&(t, n, _)| format!("src-{t}-{n}"))
                .collect(),
        },
        2 => Frame::Error {
            reason: text.to_string(),
        },
        3 => Frame::PushBatch {
            seq,
            source: idx,
            bins: cells
                .iter()
                .map(|&(t, n, f)| (t < 192).then(|| value_from(t, n, f)))
                .collect(),
        },
        4 => Frame::PushAck { seq, accepted: idx },
        5 => Frame::Seal,
        6 => Frame::SealOk { phases: seq },
        7 => Frame::FlowControl {
            source: idx,
            state: if seq.is_multiple_of(2) {
                FlowState::Open
            } else {
                FlowState::Block
            },
        },
        8 => Frame::SubscribeAlarms,
        9 => Frame::AlarmBatch {
            alarms: cells
                .iter()
                .map(|&(t, n, f)| WireAlarm {
                    phase: n.unsigned_abs(),
                    sink: format!("sink{t}"),
                    value: value_from(t, n, f),
                })
                .collect(),
        },
        10 => Frame::MetricsRequest,
        11 => Frame::MetricsReply {
            json: format!("{{\"name\":\"{text}\",\"seq\":{seq}}}"),
        },
        12 => Frame::Shutdown,
        13 => Frame::ShutdownOk,
        14 => Frame::SubscribeOk,
        15 => Frame::Ping { nonce: seq },
        16 => Frame::Pong { nonce: seq },
        17 => Frame::HelloResume {
            token: format!("t-{text}"),
            tenant: text.to_string(),
            session: format!("sess-{seq}"),
        },
        18 => Frame::Goodbye {
            reason: text.to_string(),
        },
        _ => Frame::Abort {
            reason: text.to_string(),
        },
    }
}

/// A reader that hands out bytes in a scripted sequence of chunk
/// sizes (0 ⇒ a `WouldBlock` tick), then unbounded reads — models a
/// socket dribbling bytes under read timeouts.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunks.get(self.next).copied().unwrap_or(usize::MAX);
        self.next += 1;
        if n == 0 {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let take = n.min(buf.len()).min(self.data.len() - self.pos);
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `FrameReader` reassembles a frame stream identically no matter
    /// how the transport chunks it — byte dribbles, giant reads, and
    /// interleaved timeout ticks included.
    #[test]
    fn frame_reader_survives_arbitrary_chunking(
        kinds in proptest::collection::vec((0u8..=255, 0u64..1000, 0u32..1000), 1..8),
        chunks in proptest::collection::vec(0usize..64, 0..64),
    ) {
        let frames: Vec<Frame> = kinds
            .iter()
            .map(|&(k, s, i)| frame_from(k, s, i, "chunk", &[]))
            .collect();
        let mut data = Vec::new();
        for f in &frames {
            wire::write_frame(&mut data, f).expect("frame writes");
        }
        let mut reader = Chunked { data, pos: 0, chunks, next: 0 };
        let mut fr = wire::FrameReader::new();
        let mut got = Vec::new();
        while got.len() < frames.len() {
            match fr.read_from(&mut reader) {
                Ok(Some(frame)) => got.push(frame),
                Ok(None) => {} // timeout tick: reader keeps its partial bytes
                Err(e) => prop_assert!(false, "chunked stream broke framing: {e}"),
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert!(!fr.mid_frame(), "leftover partial frame after full stream");
    }

    /// Every frame type round-trips exactly through the payload codec
    /// and through the full length+CRC envelope.
    #[test]
    fn frames_round_trip(
        kind in 0u8..=255,
        seq in 0u64..u64::MAX,
        idx in 0u32..u32::MAX,
        text_n in 0u32..10_000,
        cells in proptest::collection::vec((0u8..=255, -1000i64..1000, -1e6f64..1e6), 0..24),
    ) {
        let frame = frame_from(kind, seq, idx, &format!("name{text_n}"), &cells);

        let payload = wire::encode(&frame);
        let decoded = wire::decode(&payload);
        prop_assert_eq!(decoded.expect("payload decodes"), frame.clone());

        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &frame).expect("frame writes");
        let read = wire::read_frame(&mut Cursor::new(&buf));
        prop_assert_eq!(read.expect("frame reads"), frame);
    }

    /// A strict prefix of a valid payload never decodes: truncation is
    /// a typed error, not a shorter frame.
    #[test]
    fn truncated_payloads_error(
        kind in 0u8..=255,
        seq in 0u64..1000,
        idx in 0u32..1000,
        cells in proptest::collection::vec((0u8..=255, -50i64..50, -10.0f64..10.0), 0..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = frame_from(kind, seq, idx, "trunc", &cells);
        let payload = wire::encode(&frame);
        let cut = ((payload.len() as f64) * cut_frac) as usize;
        if cut >= payload.len() {
            continue;
        }
        let result = wire::decode(&payload[..cut]);
        prop_assert!(
            result.is_err(),
            "truncated payload decoded as {:?}",
            result.unwrap()
        );
    }

    /// Flipping any single bit of a framed message — length prefix,
    /// payload, or checksum — is caught. CRC32 detects all single-bit
    /// payload errors, and the length/tag validations cover the rest.
    #[test]
    fn bit_flips_are_detected(
        kind in 0u8..=255,
        seq in 0u64..1000,
        idx in 0u32..1000,
        cells in proptest::collection::vec((0u8..=255, -50i64..50, -10.0f64..10.0), 0..12),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let frame = frame_from(kind, seq, idx, "flip", &cells);
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &frame).expect("frame writes");
        let pos = ((buf.len() as f64) * flip_frac) as usize % buf.len();
        buf[pos] ^= 1 << bit;
        let result = wire::read_frame(&mut Cursor::new(&buf));
        prop_assert!(
            result.is_err(),
            "bit {bit} at byte {pos} flipped undetected: {:?}",
            result.unwrap()
        );
    }

    /// Trailing bytes after a well-formed body are rejected: a frame is
    /// exactly its body.
    #[test]
    fn trailing_bytes_error(
        kind in 0u8..=255,
        seq in 0u64..1000,
        idx in 0u32..1000,
        extra in 1usize..8,
    ) {
        let frame = frame_from(kind, seq, idx, "trail", &[]);
        let mut payload = wire::encode(&frame);
        payload.extend(std::iter::repeat_n(0u8, extra));
        let result = wire::decode(&payload);
        prop_assert!(matches!(result, Err(WireError::Malformed(_))), "{result:?}");
    }

    /// A length prefix beyond `MAX_FRAME` is refused before any
    /// allocation, whatever bytes follow.
    #[test]
    fn oversized_lengths_are_refused(
        excess in 1u32..1_000_000,
        junk in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let len = MAX_FRAME + excess;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend(&junk);
        let result = wire::read_frame(&mut Cursor::new(&buf));
        prop_assert!(
            matches!(result, Err(WireError::Oversized(n)) if n == len),
            "{result:?}"
        );
    }

    /// Unknown frame tags are a typed error even when the CRC envelope
    /// is intact.
    #[test]
    fn unknown_tags_are_refused(tag in 21u8..=255, body in proptest::collection::vec(0u8..=255, 0..32)) {
        let mut payload = vec![tag];
        payload.extend(&body);
        let result = wire::decode(&payload);
        prop_assert!(
            matches!(result, Err(WireError::UnknownFrame(t)) if t == tag),
            "{result:?}"
        );
    }

    /// Arbitrary garbage never panics the decoder — the fuzz floor.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = wire::decode(&bytes);
        let _ = wire::read_frame(&mut Cursor::new(&bytes));
        let _ = wire::read_preamble(&mut Cursor::new(&bytes));
    }

    /// A preamble with the right magic but a version outside the
    /// accepted range is refused as version skew, not corruption.
    #[test]
    fn wrong_versions_are_refused(version in 0u32..u32::MAX) {
        if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            continue;
        }
        let mut buf = WIRE_MAGIC.to_le_bytes().to_vec();
        buf.extend(version.to_le_bytes());
        let result = wire::read_preamble(&mut Cursor::new(&buf));
        prop_assert!(
            matches!(result, Err(WireError::Version(v)) if v == version),
            "{result:?}"
        );
    }

    /// A preamble with the wrong magic is refused before the version is
    /// even read — a stray HTTP client never reaches frame parsing.
    #[test]
    fn wrong_magic_is_refused(magic in 0u32..u32::MAX) {
        if magic == WIRE_MAGIC {
            continue;
        }
        let mut buf = magic.to_le_bytes().to_vec();
        buf.extend(WIRE_VERSION.to_le_bytes());
        let result = wire::read_preamble(&mut Cursor::new(&buf));
        prop_assert!(
            matches!(result, Err(WireError::BadMagic(m)) if m == magic),
            "{result:?}"
        );
    }

    /// A corrupt element count cannot trigger a giant allocation: counts
    /// larger than the payload are rejected up front.
    #[test]
    fn giant_counts_are_refused(count in 1_000u32..u32::MAX) {
        // A PushBatch header claiming `count` bins in a tiny payload.
        let mut payload = vec![4u8]; // TAG_PUSH_BATCH
        payload.extend(0u64.to_le_bytes());
        payload.extend(0u32.to_le_bytes());
        payload.extend(count.to_le_bytes());
        let result = wire::decode(&payload);
        prop_assert!(matches!(result, Err(WireError::Malformed(_))), "{result:?}");
    }
}
