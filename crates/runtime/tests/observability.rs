//! Integration tests for the observability plane: a live `/metrics`
//! endpoint scraped over real TCP, flight-recorder traces dumped from a
//! real run, and the per-tenant endpoint of a [`SessionPool`].

use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_obs::{http_get, validate_chrome_trace, validate_exposition};
use ec_runtime::{EpochPolicy, SessionPool, StreamRuntimeBuilder};

/// Builds a small live graph: two sources into an aggregation spine.
fn observed_builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntimeBuilder::new()
        .threads(2)
        .epoch_policy(EpochPolicy::ByCount(8))
        .max_inflight(16)
        .record_history(false)
        .record_script(false);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    b.add("avg", MovingAverage::new(4), &[sum]);
    b
}

/// Pushes `events` events alternating across the two sources and waits
/// for every sealed phase to retire.
fn drive(rt: &ec_runtime::StreamRuntime, events: u64) {
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    for i in 0..events {
        let h = if i % 2 == 0 { &s1 } else { &s2 };
        h.push(i as f64).expect("push accepted");
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("idle");
}

#[test]
fn metrics_endpoint_serves_live_exposition() {
    let rt = observed_builder()
        .metrics_addr("127.0.0.1:0")
        .flight_recorder(1024)
        .build()
        .expect("runtime builds");
    let addr = rt.metrics_addr().expect("endpoint bound").to_string();
    drive(&rt, 256);

    let body = http_get(&addr, "/metrics").expect("scrape succeeds");
    let samples = validate_exposition(&body).expect("well-formed exposition");
    assert!(samples > 20, "expected a full page, got {samples} samples");
    for series in [
        "ec_executions_total",
        "ec_phases_completed_total",
        "ec_seal_events_total 256",
        "ec_worker_queue_depth{worker=\"0\"}",
        "ec_phase_seconds{quantile=\"0.99\"}",
        "ec_exec_seconds_count",
        "ec_ingest_depth{source=\"s1\"}",
        "ec_ingest_depth{source=\"s2\"}",
        "ec_ingest_source_waits_total{source=\"s1\"}",
        "ec_e2e_seconds_count{source=\"s1\",sink=\"avg\"}",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }

    // The health plane serves next door and reports a healthy verdict.
    let health = http_get(&addr, "/healthz").expect("healthz responds");
    assert!(health.contains("\"verdict\":\"ok\""), "{health}");
    assert!(health.contains("\"sources\""), "{health}");

    // A scrape observes *live* numbers: more work moves the counters.
    drive(&rt, 64);
    let body2 = http_get(&addr, "/metrics").expect("second scrape");
    assert!(body2.contains("ec_seal_events_total 320"), "{body2}");

    let report = rt.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.ingest.seal_events, 320);
    // Shutdown stops the listener: the endpoint must be gone.
    assert!(
        http_get(&addr, "/metrics").is_err(),
        "endpoint survived shutdown"
    );
}

#[test]
fn dump_trace_replays_a_real_run() {
    let rt = observed_builder()
        .flight_recorder(4096)
        .build()
        .expect("runtime builds");
    drive(&rt, 200);

    let trace = rt.dump_trace().expect("recorder attached");
    let events = validate_chrome_trace(&trace).expect("well-formed chrome trace");
    // 3 lanes of thread metadata (control + 2 workers) plus real spans.
    assert!(events > 3, "trace is empty: {trace}");
    for name in ["phase_admitted", "exec", "phase_retired", "epoch_sealed"] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "missing {name}"
        );
    }
    assert!(trace.contains("\"name\":\"control\""));
    assert!(trace.contains("\"name\":\"worker 1\""));

    // Draining empties the rings; a second dump holds only what was
    // recorded since.
    let again = rt.dump_trace().expect("recorder still attached");
    assert!(
        !again.contains("\"name\":\"epoch_sealed\""),
        "rings not drained"
    );
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn unobserved_runtimes_opt_out_cleanly() {
    let rt = observed_builder().build().expect("runtime builds");
    assert!(rt.metrics_addr().is_none());
    assert!(rt.dump_trace().is_none());
    drive(&rt, 32);
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn session_pool_endpoint_exposes_per_tenant_rows() {
    let pool = SessionPool::builder().threads(2).max_sessions(2).build();
    let addr = pool
        .serve_metrics("127.0.0.1:0")
        .expect("endpoint binds")
        .to_string();
    assert_eq!(
        pool.metrics_addr().map(|a| a.to_string()),
        Some(addr.clone())
    );

    let mut sessions = Vec::new();
    for name in ["alpha", "beta"] {
        let mut b = StreamRuntimeBuilder::new()
            .epoch_policy(EpochPolicy::ByCount(4))
            .record_history(false)
            .record_script(false);
        let s = b.live_source("s");
        b.add("sum", Aggregate::sum(), &[s]);
        sessions.push(pool.open(name.to_string(), b).expect("session opens"));
    }
    for (i, session) in sessions.iter().enumerate() {
        let h = session.handle_by_name("s").unwrap();
        for k in 0..(20 * (i as u64 + 1)) {
            h.push(k as f64).expect("push accepted");
        }
        session.flush().expect("flush");
        session.wait_idle().expect("idle");
    }

    let body = http_get(&addr, "/metrics").expect("scrape succeeds");
    validate_exposition(&body).expect("well-formed exposition");
    for series in [
        "ec_session_events_committed_total{session=\"alpha\"} 20",
        "ec_session_events_committed_total{session=\"beta\"} 40",
        "ec_session_phases_retired_total{session=\"alpha\"}",
        "ec_executions_total{session=\"beta\"}",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }

    for session in sessions {
        session.close().expect("clean close");
    }
    pool.shutdown();
    assert!(
        http_get(&addr, "/metrics").is_err(),
        "endpoint survived shutdown"
    );
}
