//! Byte-compatibility pins for the wire framing.
//!
//! `fixtures/wire_v1.bin` holds a v1 preamble plus one of every v1
//! frame type; `fixtures/wire_v2.bin` adds the v2 liveness/resume
//! frames (`Ping`, `Pong`, `HelloResume`, `Goodbye`) under a v2
//! preamble. Both are framed by [`wire::write_frame`] and committed to
//! the repository. Two guarantees are pinned per fixture (mirroring
//! the WAL's `wal_v1.bin`):
//!
//! 1. the current encoder produces a byte-identical stream for the
//!    same frames — the framing never drifts, so clients and servers
//!    built from any revision interoperate;
//! 2. the committed bytes decode into exactly the original frames —
//!    an *old* peer's stream parsed by the *new* code yields the same
//!    protocol messages.
//!
//! The v1 fixture is frozen forever: v2 only *added* frame types, so
//! every v1 encoding is unchanged and a v1 peer still interoperates.
//! If either test fails, the wire format changed: that is a protocol
//! break for every deployed producer and subscriber, and requires a
//! `WIRE_VERSION` bump plus a new `wire_v3.bin`, not a re-bless.
//!
//! To bless a deliberately new fixture:
//! `EC_BLESS_FIXTURES=1 cargo test -p ec-runtime --test wire_fixture`

use ec_events::Value;
use ec_runtime::serve::wire::{self, FlowState, Frame, Role, WireAlarm};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// One of every v1 frame type, with bodies covering every `Value`
/// variant, silent bins, empty strings and empty lists — the shapes a
/// real session produces, plus the NaN bit pattern the property tests
/// skip.
fn v1_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            token: "s3cret".into(),
            tenant: "payments".into(),
            role: Role::Producer,
        },
        Frame::Hello {
            token: String::new(),
            tenant: "ops".into(),
            role: Role::Subscriber,
        },
        Frame::HelloOk {
            tenant: "payments".into(),
            sources: vec!["tx".into(), "refunds".into()],
        },
        Frame::Error {
            reason: "unknown tenant \"billing\"".into(),
        },
        Frame::PushBatch {
            seq: 7,
            source: 1,
            bins: vec![
                Some(Value::Float(21.5)),
                None,
                Some(Value::Int(i64::MIN)),
                Some(Value::Int(i64::MAX)),
                Some(Value::Bool(true)),
                Some(Value::text("over-limit")),
                Some(Value::text("")),
                Some(Value::vector(vec![1.0, -2.5, f64::NAN])),
                Some(Value::vector(Vec::new())),
                Some(Value::Unit),
            ],
        },
        Frame::PushBatch {
            seq: 8,
            source: 0,
            bins: Vec::new(),
        },
        Frame::PushAck {
            seq: 7,
            accepted: 9,
        },
        Frame::Seal,
        Frame::SealOk { phases: 3 },
        Frame::FlowControl {
            source: 1,
            state: FlowState::Block,
        },
        Frame::FlowControl {
            source: 1,
            state: FlowState::Open,
        },
        Frame::SubscribeAlarms,
        Frame::SubscribeOk,
        Frame::AlarmBatch {
            alarms: vec![
                WireAlarm {
                    phase: 1,
                    sink: "big".into(),
                    value: Value::Bool(false),
                },
                WireAlarm {
                    phase: 2,
                    sink: "big".into(),
                    value: Value::Float(417.25),
                },
            ],
        },
        Frame::AlarmBatch { alarms: Vec::new() },
        Frame::MetricsRequest,
        Frame::MetricsReply {
            json: "{\"name\":\"payments\",\"admitted\":42}".into(),
        },
        Frame::Shutdown,
        Frame::ShutdownOk,
    ]
}

/// The v2 stream: every v1 frame (unchanged encodings) plus the
/// liveness/resume frames v2 introduced.
fn v2_frames() -> Vec<Frame> {
    let mut frames = v1_frames();
    frames.extend([
        Frame::Ping { nonce: 0 },
        Frame::Ping { nonce: u64::MAX },
        Frame::Pong { nonce: 417 },
        Frame::HelloResume {
            token: "s3cret".into(),
            tenant: "payments".into(),
            session: "sess-4242-0-deadbeef".into(),
        },
        Frame::HelloResume {
            token: String::new(),
            tenant: "ops".into(),
            session: String::new(),
        },
        Frame::Goodbye {
            reason: "server draining".into(),
        },
        Frame::Goodbye {
            reason: String::new(),
        },
        Frame::Abort {
            reason: "frame crc mismatch".into(),
        },
        Frame::Abort {
            reason: String::new(),
        },
    ]);
    frames
}

fn write_stream(version: u32, frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::write_preamble_version(&mut buf, version).unwrap();
    for frame in frames {
        wire::write_frame(&mut buf, frame).unwrap();
    }
    buf
}

/// `Frame` equality that treats NaN by bits, like the WAL fixture.
fn same_frame(a: &Frame, b: &Frame) -> bool {
    match (a, b) {
        (
            Frame::PushBatch {
                seq: s1,
                source: c1,
                bins: b1,
            },
            Frame::PushBatch {
                seq: s2,
                source: c2,
                bins: b2,
            },
        ) => {
            s1 == s2
                && c1 == c2
                && b1.len() == b2.len()
                && b1.iter().zip(b2).all(|(x, y)| match (x, y) {
                    (None, None) => true,
                    (Some(u), Some(v)) => u.same_as(v),
                    _ => false,
                })
        }
        _ => a == b,
    }
}

fn check_encoder_pin(name: &str, version: u32, frames: &[Frame]) {
    let written = write_stream(version, frames);
    let fixture = fixture_path(name);
    if std::env::var_os("EC_BLESS_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture.parent().unwrap()).unwrap();
        std::fs::write(&fixture, &written).unwrap();
        panic!(
            "blessed {} — rerun without EC_BLESS_FIXTURES",
            fixture.display()
        );
    }
    let committed = std::fs::read(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); see module docs",
            fixture.display()
        )
    });
    assert_eq!(
        written, committed,
        "wire bytes diverged from the committed {name} fixture: the framing \
         changed, which breaks every deployed peer (bump WIRE_VERSION \
         instead of re-blessing)"
    );
}

fn check_decode_pin(name: &str, version: u32, frames: &[Frame]) {
    let committed = std::fs::read(fixture_path(name)).expect("committed fixture present");
    let mut r = std::io::Cursor::new(committed.as_slice());
    let got_version = wire::read_preamble(&mut r).expect("fixture preamble valid");
    assert_eq!(got_version, version, "{name} preamble version");
    for (i, want) in frames.iter().enumerate() {
        let got = wire::read_frame(&mut r)
            .unwrap_or_else(|e| panic!("{name} frame {i} failed to decode: {e}"));
        assert!(
            same_frame(&got, want),
            "{name} frame {i}: got {got:?}, want {want:?}"
        );
    }
    assert_eq!(
        r.position() as usize,
        committed.len(),
        "{name} has trailing bytes beyond the known frames"
    );
}

#[test]
fn encoder_reproduces_committed_v1_bytes() {
    check_encoder_pin("wire_v1.bin", 1, &v1_frames());
}

#[test]
fn committed_v1_fixture_decodes_to_original_frames() {
    check_decode_pin("wire_v1.bin", 1, &v1_frames());
}

#[test]
fn encoder_reproduces_committed_v2_bytes() {
    check_encoder_pin("wire_v2.bin", 2, &v2_frames());
}

#[test]
fn committed_v2_fixture_decodes_to_original_frames() {
    check_decode_pin("wire_v2.bin", 2, &v2_frames());
}
