//! Byte-compatibility pin for the wire framing.
//!
//! `fixtures/wire_v1.bin` holds a preamble plus one of every frame
//! type, framed by [`wire::write_frame`], and is committed to the
//! repository. Two guarantees are pinned (mirroring the WAL's
//! `wal_v1.bin`):
//!
//! 1. the current encoder produces a byte-identical stream for the
//!    same frames — the framing never drifts, so clients and servers
//!    built from any revision interoperate;
//! 2. the committed bytes decode into exactly the original frames —
//!    an *old* peer's stream parsed by the *new* code yields the same
//!    protocol messages.
//!
//! If this test fails, the wire format changed: that is a protocol
//! break for every deployed producer and subscriber, and requires a
//! `WIRE_VERSION` bump plus a new `wire_v2.bin`, not a re-bless.
//!
//! To bless a deliberately new fixture:
//! `EC_BLESS_FIXTURES=1 cargo test -p ec-runtime --test wire_fixture`

use ec_events::Value;
use ec_runtime::serve::wire::{self, FlowState, Frame, Role, WireAlarm};
use std::path::PathBuf;

const FIXTURE: &str = "fixtures/wire_v1.bin";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(FIXTURE)
}

/// One of every frame type, with bodies covering every `Value`
/// variant, silent bins, empty strings and empty lists — the shapes a
/// real session produces, plus the NaN bit pattern the property tests
/// skip.
fn fixture_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            token: "s3cret".into(),
            tenant: "payments".into(),
            role: Role::Producer,
        },
        Frame::Hello {
            token: String::new(),
            tenant: "ops".into(),
            role: Role::Subscriber,
        },
        Frame::HelloOk {
            tenant: "payments".into(),
            sources: vec!["tx".into(), "refunds".into()],
        },
        Frame::Error {
            reason: "unknown tenant \"billing\"".into(),
        },
        Frame::PushBatch {
            seq: 7,
            source: 1,
            bins: vec![
                Some(Value::Float(21.5)),
                None,
                Some(Value::Int(i64::MIN)),
                Some(Value::Int(i64::MAX)),
                Some(Value::Bool(true)),
                Some(Value::text("over-limit")),
                Some(Value::text("")),
                Some(Value::vector(vec![1.0, -2.5, f64::NAN])),
                Some(Value::vector(Vec::new())),
                Some(Value::Unit),
            ],
        },
        Frame::PushBatch {
            seq: 8,
            source: 0,
            bins: Vec::new(),
        },
        Frame::PushAck {
            seq: 7,
            accepted: 9,
        },
        Frame::Seal,
        Frame::SealOk { phases: 3 },
        Frame::FlowControl {
            source: 1,
            state: FlowState::Block,
        },
        Frame::FlowControl {
            source: 1,
            state: FlowState::Open,
        },
        Frame::SubscribeAlarms,
        Frame::SubscribeOk,
        Frame::AlarmBatch {
            alarms: vec![
                WireAlarm {
                    phase: 1,
                    sink: "big".into(),
                    value: Value::Bool(false),
                },
                WireAlarm {
                    phase: 2,
                    sink: "big".into(),
                    value: Value::Float(417.25),
                },
            ],
        },
        Frame::AlarmBatch { alarms: Vec::new() },
        Frame::MetricsRequest,
        Frame::MetricsReply {
            json: "{\"name\":\"payments\",\"admitted\":42}".into(),
        },
        Frame::Shutdown,
        Frame::ShutdownOk,
    ]
}

fn write_stream() -> Vec<u8> {
    let mut buf = Vec::new();
    wire::write_preamble(&mut buf).unwrap();
    for frame in fixture_frames() {
        wire::write_frame(&mut buf, &frame).unwrap();
    }
    buf
}

/// `WireAlarm` equality that treats NaN by bits, like the WAL fixture.
fn same_frame(a: &Frame, b: &Frame) -> bool {
    match (a, b) {
        (
            Frame::PushBatch {
                seq: s1,
                source: c1,
                bins: b1,
            },
            Frame::PushBatch {
                seq: s2,
                source: c2,
                bins: b2,
            },
        ) => {
            s1 == s2
                && c1 == c2
                && b1.len() == b2.len()
                && b1.iter().zip(b2).all(|(x, y)| match (x, y) {
                    (None, None) => true,
                    (Some(u), Some(v)) => u.same_as(v),
                    _ => false,
                })
        }
        _ => a == b,
    }
}

#[test]
fn encoder_reproduces_committed_fixture_bytes() {
    let written = write_stream();
    let fixture = fixture_path();
    if std::env::var_os("EC_BLESS_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture.parent().unwrap()).unwrap();
        std::fs::write(&fixture, &written).unwrap();
        panic!(
            "blessed {} — rerun without EC_BLESS_FIXTURES",
            fixture.display()
        );
    }
    let committed = std::fs::read(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); see module docs",
            fixture.display()
        )
    });
    assert_eq!(
        written, committed,
        "wire bytes diverged from the committed v1 fixture: the framing \
         changed, which breaks every deployed peer (bump WIRE_VERSION \
         instead of re-blessing)"
    );
}

#[test]
fn committed_fixture_decodes_to_original_frames() {
    let committed = std::fs::read(fixture_path()).expect("committed fixture present");
    let mut r = std::io::Cursor::new(committed.as_slice());
    wire::read_preamble(&mut r).expect("fixture preamble valid");
    for (i, want) in fixture_frames().into_iter().enumerate() {
        let got = wire::read_frame(&mut r)
            .unwrap_or_else(|e| panic!("fixture frame {i} failed to decode: {e}"));
        assert!(
            same_frame(&got, &want),
            "frame {i}: got {got:?}, want {want:?}"
        );
    }
    assert_eq!(
        r.position() as usize,
        committed.len(),
        "fixture has trailing bytes beyond the known frames"
    );
}
