//! Property tests for the sharded ingest path: randomized concurrent
//! push/seal/shutdown interleavings conserve every source's events
//! exactly, in per-source FIFO order (mirroring
//! `shard_multitenant_props.rs` on the execution side).
//!
//! Each case spawns one producer thread per live source pushing a
//! distinct value sequence, a sealer thread racing `flush`/`tick`
//! calls, and (depending on the scenario) small capacities that force
//! `Block` waits, `Reject` bounces, or `ByCount` forced seals. The
//! reconciliation is exact, not statistical:
//!
//! * every *accepted* push (one whose `push` returned `Ok`) appears in
//!   the committed [`PhaseScript`] column of its source, exactly once,
//!   in push order — `Reject` backpressure may refuse a push, but it
//!   never loses an accepted event;
//! * nothing else appears (a rejected value must leave no trace);
//! * the runtime's live history is observably equivalent to the
//!   sequential oracle replaying the committed script — the sharded
//!   front end commits a well-defined binning even under contention.

use ec_fusion::operators::aggregate::Aggregate;
use ec_runtime::{Backpressure, EpochPolicy, PhaseScript, PushError, StreamRuntimeBuilder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

const SOURCES: usize = 3;

/// Distinct, per-source tagged values so cross-source mixups are
/// detectable, not just count drift.
fn tagged(source: usize, k: u64) -> i64 {
    (source as i64 + 1) * 1_000_000 + k as i64
}

fn build(
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
) -> (ec_runtime::StreamRuntime, Vec<ec_runtime::SourceHandle>) {
    let mut b = StreamRuntimeBuilder::new()
        .epoch_policy(policy)
        .backpressure(backpressure)
        .ingest_capacity(capacity)
        .threads(2)
        .max_inflight(16);
    let handles: Vec<_> = (0..SOURCES)
        .map(|s| b.live_source(format!("s{s}")))
        .collect();
    let nodes = handles.clone();
    b.add("sum", Aggregate::sum(), &nodes);
    let rt = b.build().expect("runtime builds");
    let handles = handles
        .into_iter()
        .map(|h| rt.handle(h).expect("handle"))
        .collect();
    (rt, handles)
}

/// The committed column of one source, as the tagged values in phase
/// order.
fn committed_column(script: &PhaseScript, source: usize) -> Vec<i64> {
    script
        .column(source)
        .filter_map(|bin| bin.and_then(|v| v.as_i64()))
        .collect()
}

/// Runs the sequential oracle over the committed script and compares
/// observable histories.
fn assert_matches_oracle(script: &PhaseScript, live: &ec_core::ExecutionHistory) {
    let mut b = ec_fusion::CorrelatorBuilder::new();
    let replays: Vec<_> = (0..SOURCES)
        .map(|s| b.source(format!("s{s}"), script.replay(s)))
        .collect();
    b.add("sum", Aggregate::sum(), &replays);
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    let oracle = seq.into_history();
    assert_eq!(
        oracle.equivalent(live),
        Ok(()),
        "live run diverged from the sequential oracle over its own script"
    );
}

/// One full scenario: concurrent producers + sealer, quiesce, shutdown,
/// exact reconciliation.
fn run_scenario(
    seed: u64,
    policy: EpochPolicy,
    backpressure: Backpressure,
    capacity: usize,
    pushes_per_source: u64,
) {
    let (rt, handles) = build(policy, backpressure, capacity);
    let sealer_stop = AtomicBool::new(false);

    // Producers (one per source: per-source FIFO is defined by push
    // order on the handle) race a sealer thread calling flush/tick;
    // under ByCount the producers also seal from within push. Each
    // producer records the values whose push was *accepted*.
    let accepted: Vec<Vec<i64>> = std::thread::scope(|scope| {
        let sealer = {
            let rt = &rt;
            let stop = &sealer_stop;
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ea1);
            scope.spawn(move || {
                while !stop.load(Relaxed) {
                    match rng.gen_range(0..3) {
                        0 => {
                            let _ = rt.tick();
                        }
                        _ => {
                            let _ = rt.flush();
                        }
                    }
                    std::thread::yield_now();
                }
            })
        };
        let joins: Vec<_> = handles
            .iter()
            .enumerate()
            .map(|(s, handle)| {
                scope.spawn(move || {
                    let mut accepted = Vec::new();
                    for k in 0..pushes_per_source {
                        let v = tagged(s, k);
                        // Under Reject, retry a couple of times, then
                        // drop the value — a real producer's shed load.
                        let mut tries = 0;
                        loop {
                            match handle.push(v) {
                                Ok(()) => {
                                    accepted.push(v);
                                    break;
                                }
                                Err(PushError::Full) if tries < 2 => {
                                    tries += 1;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Full) => break, // dropped
                                Err(e) => panic!("unexpected push error: {e:?}"),
                            }
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted = joins.into_iter().map(|j| j.join().unwrap()).collect();
        sealer_stop.store(true, Relaxed);
        sealer.join().unwrap();
        accepted
    });

    // Producers have quiesced: the final seal commits every accepted
    // event that is still buffered.
    let report = rt.shutdown().expect("clean shutdown");

    let total_accepted: usize = accepted.iter().map(Vec::len).sum();
    assert_eq!(
        report.script.event_count(),
        total_accepted,
        "committed events != accepted pushes"
    );
    for (s, accepted) in accepted.iter().enumerate() {
        let committed = committed_column(&report.script, s);
        assert_eq!(
            &committed, accepted,
            "source {s}: committed column != accepted pushes in FIFO order"
        );
    }
    assert_matches_oracle(&report.script, &report.history.expect("history recorded"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Block backpressure: every push is eventually accepted; tiny
    /// capacities force producers to block on their shard and be woken
    /// by racing seals.
    #[test]
    fn blocking_producers_conserve_events(
        seed in 0u64..10_000,
        capacity in 1usize..8,
        pushes in 20u64..120,
    ) {
        run_scenario(seed, EpochPolicy::Manual, Backpressure::Block, capacity, pushes);
    }

    /// Reject backpressure: pushes may bounce, but accepted ones are
    /// never lost and rejected ones leave no trace.
    #[test]
    fn rejecting_producers_lose_nothing_accepted(
        seed in 0u64..10_000,
        capacity in 1usize..6,
        pushes in 20u64..120,
    ) {
        run_scenario(seed, EpochPolicy::Manual, Backpressure::Reject, capacity, pushes);
    }

    /// ByCount: producers seal from within push (including the forced
    /// seal when a shard fills below the count threshold).
    #[test]
    fn by_count_sealing_conserves_events(
        seed in 0u64..10_000,
        threshold in 2usize..40,
        capacity in 2usize..8,
        pushes in 20u64..120,
    ) {
        run_scenario(
            seed,
            EpochPolicy::ByCount(threshold),
            Backpressure::Block,
            capacity,
            pushes,
        );
    }
}

/// Shutdown racing live producers: accepted events that missed the
/// final seal are dropped (documented), but whatever *was* committed is
/// a per-source FIFO prefix of the accepted sequence — never reordered,
/// duplicated, or cross-wired.
#[test]
fn racing_shutdown_commits_a_fifo_prefix() {
    for seed in 0..6u64 {
        let (rt, handles) = build(EpochPolicy::ByCount(8), Backpressure::Block, 16);
        let stop = AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .iter()
                .enumerate()
                .map(|(s, handle)| {
                    scope.spawn(move || {
                        let mut accepted = Vec::new();
                        for k in 0..100_000u64 {
                            if stop.load(Relaxed) {
                                break;
                            }
                            match handle.push(tagged(s, k)) {
                                Ok(()) => accepted.push(tagged(s, k)),
                                Err(PushError::Closed) => break,
                                Err(e) => panic!("unexpected push error: {e:?}"),
                            }
                        }
                        accepted
                    })
                })
                .collect();
            // Let the producers run a moment, then shut down under them.
            std::thread::sleep(std::time::Duration::from_millis(5 + seed));
            let report = rt.shutdown().expect("shutdown");
            stop.store(true, Relaxed);
            let accepted: Vec<Vec<i64>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
            for (s, accepted) in accepted.iter().enumerate() {
                let committed = committed_column(&report.script, s);
                assert!(
                    committed.len() <= accepted.len(),
                    "source {s}: more committed than accepted"
                );
                assert_eq!(
                    &committed[..],
                    &accepted[..committed.len()],
                    "source {s}: committed column is not a FIFO prefix"
                );
            }
        });
    }
}
