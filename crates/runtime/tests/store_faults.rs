//! Runtime-level store fault injection.
//!
//! Two acceptance bars from the store-lifecycle issue:
//!
//! * a persistent fsync failure flips the runtime into **degraded
//!   mode** — ingest keeps flowing, durability is suspended, and
//!   `/healthz` reports `degraded: wal` naming the failing path —
//!   instead of stopping or panicking;
//! * a long-running durable stream with tiny segments, periodic
//!   incremental snapshots and compaction keeps its **disk usage
//!   bounded**, and still restores to the exact next phase.

use ec_fusion::operators::aggregate::Aggregate;
use ec_runtime::StreamRuntimeBuilder;
use ec_store::{StoreFile, StoreIo};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ec-runtime-storefaults-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `s ── sum` — minimal snapshot-capable durable graph.
fn builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntimeBuilder::new();
    let s = b.live_source("s");
    b.add("sum", Aggregate::sum(), &[s]);
    b
}

/// Delegates to the real filesystem until `broken` flips, then fails
/// every fsync — the "disk went bad under a running service" shape, as
/// opposed to the store crate's op-indexed [`ec_store::FaultIo`] plans.
#[derive(Debug)]
struct BreakableIo {
    inner: Arc<dyn StoreIo>,
    broken: Arc<AtomicBool>,
}

struct BreakableFile {
    inner: Box<dyn StoreFile>,
    broken: Arc<AtomicBool>,
}

impl StoreFile for BreakableFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.append(buf)
    }

    fn fsync(&mut self) -> io::Result<()> {
        if self.broken.load(Relaxed) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.fsync()
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate_to(len)
    }
}

impl StoreIo for BreakableIo {
    fn create_dir_all(&self, dir: &std::path::Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn open(&self, path: &std::path::Path, create_new: bool) -> io::Result<Box<dyn StoreFile>> {
        let inner = self.inner.open(path, create_new)?;
        Ok(Box::new(BreakableFile {
            inner,
            broken: Arc::clone(&self.broken),
        }))
    }

    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &std::path::Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    body
}

#[test]
fn persistent_fsync_failure_degrades_instead_of_panicking() {
    let dir = test_dir("degraded");
    let broken = Arc::new(AtomicBool::new(false));
    let io: Arc<dyn StoreIo> = Arc::new(BreakableIo {
        inner: ec_store::real_io(),
        broken: Arc::clone(&broken),
    });
    let rt = builder()
        .durable(&dir)
        .wal_sync_every(1) // every commit fsyncs, so the fault is hit
        .store_retry(2, Duration::from_millis(1))
        .store_io(io)
        .metrics_addr("127.0.0.1:0")
        .build()
        .unwrap();
    let s = rt.handle_by_name("s").unwrap();

    // Healthy phase commits normally.
    s.push(1.0).unwrap();
    rt.flush().unwrap();
    assert_eq!(rt.degraded_reason(), None);

    // The disk goes bad: fsync fails from here on. The seal retries,
    // exhausts the budget, then suspends durability — and keeps going.
    broken.store(true, Relaxed);
    s.push(2.0).unwrap();
    let flushed = rt.flush();
    assert!(flushed.is_ok(), "degraded, not dead: {flushed:?}");
    let reason = rt
        .degraded_reason()
        .expect("persistent fsync failure must degrade the runtime");
    assert!(reason.starts_with("degraded: wal"), "{reason}");
    assert!(
        reason.contains(&ec_store::wal_dir(&dir).display().to_string()),
        "reason must name the failing path: {reason}"
    );

    // Ingest keeps flowing: later pushes and seals still succeed.
    s.push(3.0).unwrap();
    rt.flush().unwrap();
    assert_eq!(rt.admitted(), 3);

    // Checkpoints are refused while durability is suspended.
    assert!(rt.checkpoint().is_err());

    // The health plane reports it over real HTTP: /healthz flips to
    // degraded (the watchdog samples every ~50 ms — poll briefly) and
    // /metrics raises the ec_store_degraded gauge immediately.
    let addr = rt.metrics_addr().expect("metrics endpoint");
    let deadline = Instant::now() + Duration::from_secs(5);
    let health = loop {
        let body = http_get(addr, "/healthz");
        if body.contains("\"verdict\":\"degraded\"") {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "/healthz never turned degraded: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(health.contains("degraded: wal"), "{health}");
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.contains("ec_store_degraded 1"), "{metrics}");

    // Clean shutdown, no panic; the rows committed before the fault
    // survived and restore still works (the suspended tail is lost —
    // that is the degraded-mode contract).
    rt.shutdown().unwrap();
    let rec = ec_store::Recovery::open(&dir).unwrap();
    assert!(rec.committed_phases() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_keeps_long_running_disk_usage_bounded() {
    let dir = test_dir("bounded");
    let rt = builder()
        .durable(&dir)
        .segment_bytes(256) // rotate every handful of rows
        .snapshot_every(4)
        .snapshot_full_every(3)
        .compact_every(1)
        .build()
        .unwrap();
    let s = rt.handle_by_name("s").unwrap();
    for i in 0..200i64 {
        s.push(i as f64).unwrap();
        rt.flush().unwrap();
    }
    rt.shutdown().unwrap();

    // The log stayed bounded: compaction dropped every segment fully
    // covered by a snapshot, so neither bytes nor segment count scale
    // with the 200 committed phases.
    let wal_files: Vec<(PathBuf, u64)> = std::fs::read_dir(ec_store::wal_dir(&dir))
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.path(), e.metadata().unwrap().len())
        })
        .collect();
    let segments = wal_files
        .iter()
        .filter(|(p, _)| p.extension().is_some_and(|x| x == "log"))
        .count();
    let total: u64 = wal_files.iter().map(|(_, len)| len).sum();
    assert!(segments <= 5, "unbounded segments: {wal_files:?}");
    assert!(total < 4096, "unbounded WAL bytes: {total} ({wal_files:?})");

    // Full-snapshot pruning bounded the snapshot chain too.
    let snapshots = ec_store::list_snapshot_files(&dir).unwrap();
    assert!(snapshots.len() <= 8, "unbounded snapshots: {snapshots:?}");

    // And the compacted store still restores to the exact next phase,
    // with global phase numbering intact.
    let rec = ec_store::Recovery::open(&dir).unwrap();
    assert!(rec.base_rows > 0, "compaction never ran");
    assert_eq!(rec.committed_phases(), 200);
    drop(rec);
    let rt = builder().durable(&dir).restore().unwrap();
    assert_eq!(rt.admitted(), 200);
    s.push(0.0).unwrap_err(); // old handle is dead, not the new store
    let s = rt.handle_by_name("s").unwrap();
    s.push(200.0).unwrap();
    rt.flush().unwrap();
    let report = rt.shutdown().unwrap();
    assert!(report.phases >= 201);
    let _ = std::fs::remove_dir_all(&dir);
}
