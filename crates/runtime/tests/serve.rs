//! Wire-path tests for the `ec serve` TCP front end.
//!
//! The bar: traffic arriving over real sockets changes nothing about
//! the engine's guarantees. N remote producers pushing interleaved
//! batches to M tenants commit the exact same `PhaseScript` as the
//! in-process path, and the committed script replayed through the
//! sequential oracle reproduces the live history; a producer that
//! disconnects mid-epoch commits a clean FIFO prefix of its
//! acknowledged pushes; a full source surfaces as explicit
//! `FlowControl` frames and resumes; a slow subscriber is disconnected
//! rather than allowed to wedge retirement; and a killed server
//! restarts over its durable stores with every tenant at its exact
//! next phase.

use ec_core::ExecutionHistory;
use ec_events::Value;
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_runtime::serve::wire::{self, Frame, Role};
use ec_runtime::serve::{WireClient, WireServer};
use ec_runtime::{Backpressure, PhaseScript, SessionPool, StreamRuntime, StreamRuntimeBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ec-runtime-serve-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The per-tenant graph (all operators snapshot-capable):
///
/// ```text
/// s1 ─┬─ sum ── avg(3) ── alarm(>10)
/// s2 ─┘
/// ```
fn tenant_builder() -> StreamRuntimeBuilder {
    let mut b = StreamRuntime::builder();
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    b
}

/// Runs the sequential oracle, uninterrupted, over a committed script
/// of the tenant graph.
fn oracle_history(script: &PhaseScript) -> ExecutionHistory {
    let mut b = ec_fusion::CorrelatorBuilder::new();
    let s1 = b.source("s1", script.replay(0));
    let s2 = b.source("s2", script.replay(1));
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(3), &[sum]);
    b.add("alarm", Threshold::above(10.0), &[avg]);
    let mut seq = b.sequential().expect("oracle builds");
    seq.run(script.phases()).expect("oracle runs");
    seq.into_history()
}

fn serve(tenants: &[&str], build: impl Fn() -> StreamRuntimeBuilder) -> WireServer {
    let pool = SessionPool::builder()
        .threads(4)
        .max_sessions(tenants.len())
        .build();
    let sessions = tenants
        .iter()
        .map(|name| pool.open(name.to_string(), build()).unwrap())
        .collect();
    WireServer::builder()
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap()
}

/// N remote producers over real TCP, pushing interleaved batches into
/// M tenants, commit exactly what the sequential oracle of the
/// committed script would — serializability survives the socket.
/// A wire subscriber sees the same emissions, in the same serial
/// order, as an in-process subscription on the same tenant.
#[test]
fn remote_producers_match_the_sequential_oracle() {
    let server = serve(&["alpha", "beta"], tenant_builder);
    let addr = server.local_addr().to_string();

    // In-process view of alpha's emissions, for the subscriber check.
    let inproc: Arc<Mutex<Vec<(u64, Value)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let seen = Arc::clone(&inproc);
        server
            .tenant("alpha")
            .expect("alpha served")
            .subscribe(move |e| seen.lock().unwrap().push((e.phase, e.value.clone())));
    }
    let mut wire_sub = WireClient::connect(&addr, "", "alpha", Role::Subscriber).unwrap();
    wire_sub.subscribe().unwrap();

    // Two producers per tenant, each interleaving both sources with
    // occasional seals; batch sizes vary so wire batching is exercised.
    let mut workers = Vec::new();
    for (t, tenant) in ["alpha", "beta"].into_iter().enumerate() {
        for p in 0..2 {
            let addr = addr.clone();
            workers.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64((t * 2 + p) as u64 + 7);
                let mut client = WireClient::connect(&addr, "", tenant, Role::Producer).unwrap();
                assert_eq!(client.sources(), ["s1", "s2"]);
                for _ in 0..30 {
                    let source = rng.gen_range(0u32..2);
                    let batch: Vec<Value> = (0..rng.gen_range(1usize..6))
                        .map(|_| Value::Float(rng.gen_range(-20i64..30) as f64))
                        .collect();
                    let accepted = client.push_batch(source, &batch).unwrap();
                    assert_eq!(accepted as usize, batch.len());
                    if rng.gen_range(0u32..4) == 0 {
                        client.seal().unwrap();
                    }
                }
                client.seal().unwrap();
            }));
        }
    }
    for w in workers {
        w.join().unwrap();
    }

    // Drain the wire subscriber until it has everything the in-process
    // subscription saw (both feed from the same serial delivery loop).
    // Delivery runs on its own thread and can lag retirement by one
    // ~50ms wakeup, so wait for the in-process stream to quiesce
    // before snapshotting it.
    server.tenant("alpha").unwrap().wait_idle().unwrap();
    let want = loop {
        let before = inproc.lock().unwrap().len();
        std::thread::sleep(Duration::from_millis(60));
        let after = inproc.lock().unwrap();
        if after.len() == before {
            break after.clone();
        }
    };
    let mut got: Vec<(u64, Value)> = Vec::new();
    while got.len() < want.len() {
        let alarms = wire_sub.next_alarms().expect("alarm stream live");
        for a in alarms {
            assert_eq!(a.sink, "alarm");
            got.push((a.phase, a.value));
        }
    }
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.0, w.0, "wire subscriber diverged from serial order");
        assert!(g.1.same_as(&w.1), "phase {}: {:?} vs {:?}", g.0, g.1, w.1);
    }
    let increasing = got.windows(2).all(|p| p[0].0 < p[1].0);
    assert!(increasing, "alarm phases must arrive in serial order");

    drop(wire_sub);
    for (name, report) in server.shutdown() {
        let report = report.unwrap_or_else(|e| panic!("{name} closes cleanly: {e}"));
        assert!(report.phases > 0, "{name} committed no phases");
        let oracle = oracle_history(&report.script);
        let live = report.history.expect("history recorded");
        assert_eq!(
            oracle.equivalent(&live),
            Ok(()),
            "{name}: wire-fed run diverged from its sequential oracle"
        );
    }
}

/// A producer that dies mid-epoch — torn frame, then a corrupt frame
/// on a second connection — commits exactly the FIFO prefix it was
/// acked for. Nothing from an unacknowledged or undecodable frame
/// reaches a buffer.
#[test]
fn disconnected_producer_commits_acked_fifo_prefix() {
    let server = serve(&["solo"], tenant_builder);
    let addr = server.local_addr();

    // Hand-rolled connection so the frame boundary can be torn.
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    wire::write_preamble(&mut w).unwrap();
    w.flush().unwrap();
    wire::write_frame(
        &mut w,
        &Frame::Hello {
            token: String::new(),
            tenant: "solo".into(),
            role: Role::Producer,
        },
    )
    .unwrap();
    wire::read_preamble(&mut r).unwrap();
    assert!(matches!(
        wire::read_frame(&mut r).unwrap(),
        Frame::HelloOk { .. }
    ));

    let acked = [vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]];
    for (seq, batch) in acked.iter().enumerate() {
        let bins = batch.iter().map(|&v| Some(Value::Float(v))).collect();
        wire::write_frame(
            &mut w,
            &Frame::PushBatch {
                seq: seq as u64,
                source: 0,
                bins,
            },
        )
        .unwrap();
        match wire::read_frame(&mut r).unwrap() {
            Frame::PushAck { seq: got, accepted } => {
                assert_eq!(got, seq as u64);
                assert_eq!(accepted as usize, batch.len());
            }
            other => panic!("expected PushAck, got {other:?}"),
        }
    }

    // Tear the next frame in half: length prefix plus a partial
    // payload, then hang up. The server must discard it whole.
    let torn = wire::encode(&Frame::PushBatch {
        seq: 3,
        source: 0,
        bins: vec![Some(Value::Float(6.0)), Some(Value::Float(7.0))],
    });
    w.write_all(&(torn.len() as u32).to_le_bytes()).unwrap();
    w.write_all(&torn[..torn.len() / 2]).unwrap();
    w.flush().unwrap();
    drop(w);
    drop(r);

    // Second kind of death: a fully-delivered frame with a flipped
    // payload bit. The CRC catches it; the server answers with a typed
    // Abort (the stream is untrusted, but nothing was refused — a
    // resumable session may redial) and drops the connection,
    // committing nothing from it.
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    wire::write_preamble(&mut w).unwrap();
    w.flush().unwrap();
    wire::write_frame(
        &mut w,
        &Frame::Hello {
            token: String::new(),
            tenant: "solo".into(),
            role: Role::Producer,
        },
    )
    .unwrap();
    wire::read_preamble(&mut r).unwrap();
    assert!(matches!(
        wire::read_frame(&mut r).unwrap(),
        Frame::HelloOk { .. }
    ));
    let payload = wire::encode(&Frame::PushBatch {
        seq: 0,
        source: 0,
        bins: vec![Some(Value::Float(8.0))],
    });
    let crc = ec_store::crc32(&payload);
    let mut corrupt = payload;
    *corrupt.last_mut().unwrap() ^= 0x40;
    w.write_all(&(corrupt.len() as u32).to_le_bytes()).unwrap();
    w.write_all(&corrupt).unwrap();
    w.write_all(&crc.to_le_bytes()).unwrap();
    w.flush().unwrap();
    match wire::read_frame(&mut r).unwrap() {
        Frame::Abort { reason } => assert!(reason.contains("crc"), "{reason}"),
        other => panic!("expected Abort for a corrupt frame, got {other:?}"),
    }
    drop(w);
    drop(r);

    // Seal from a healthy client and inspect the commit.
    let mut sealer = WireClient::connect(addr, "", "solo", Role::Producer).unwrap();
    sealer.seal().unwrap();
    let mut reports = server.shutdown();
    let (_, report) = reports.remove(0);
    let report = report.expect("solo closes cleanly");
    let want: Vec<f64> = acked.iter().flatten().copied().collect();
    let got: Vec<f64> = report
        .script
        .column(0)
        .flatten()
        .map(|v| match v {
            Value::Float(f) => *f,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    assert_eq!(
        got, want,
        "committed column must be exactly the acked FIFO prefix"
    );
    let oracle = oracle_history(&report.script);
    assert_eq!(oracle.equivalent(&report.history.unwrap()), Ok(()));
}

/// A full source under `Backpressure::Reject` surfaces as an explicit
/// `FlowControl(Block)` frame — not a TCP stall — and the push resumes
/// (with `Open`) once a seal drains the buffer. No acknowledged event
/// is lost across the episode.
#[test]
fn full_source_emits_flow_control_and_resumes() {
    let server = serve(&["tight"], || {
        tenant_builder()
            .backpressure(Backpressure::Reject)
            .ingest_capacity(4)
    });
    let addr = server.local_addr().to_string();

    // One big batch: far beyond capacity, so the handler must block
    // and wait for seals from the second connection.
    let pusher = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = WireClient::connect(&addr, "", "tight", Role::Producer).unwrap();
            let batch: Vec<Value> = (0..64).map(|i| Value::Float(i as f64)).collect();
            let accepted = client.push_batch(0, &batch).unwrap();
            (accepted, client.blocks_seen())
        })
    };
    let mut sealer = WireClient::connect(&addr, "", "tight", Role::Producer).unwrap();
    let mut phases = 0u64;
    while !pusher.is_finished() {
        phases += sealer.seal().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let (accepted, blocks_seen) = pusher.join().unwrap();
    assert_eq!(accepted, 64, "every event lands despite backpressure");
    assert!(
        blocks_seen >= 1,
        "a full source must surface at least one FlowControl(Block)"
    );
    assert!(phases > 0);
    assert!(server.stats().flow_blocks >= 1);

    sealer.seal().unwrap();
    let mut reports = server.shutdown();
    let report = reports.remove(0).1.expect("tight closes cleanly");
    assert_eq!(report.script.column(0).flatten().count(), 64);
    let oracle = oracle_history(&report.script);
    assert_eq!(oracle.equivalent(&report.history.unwrap()), Ok(()));
}

/// A subscriber too slow to drain its bounded buffer is disconnected —
/// with a diagnostic — while retirement keeps going at full speed for
/// everyone else.
#[test]
fn slow_subscriber_is_disconnected_not_obeyed() {
    // A fat sink name makes each alarm frame heavy, so an unread
    // subscriber connection exhausts the socket buffers quickly and
    // the server-side writer actually blocks (the precondition for the
    // hub slot overflowing).
    // Sized so the ~1000 alarms total well beyond what the kernel will
    // buffer for an unread connection (tcp_wmem max 4 MiB + a ~128 KiB
    // unread receive window), while one 8-alarm batch stays far under
    // MAX_FRAME.
    let fat_sink = format!("alarm-{}", "x".repeat(16 * 1024));
    let server = {
        let pool = SessionPool::builder().threads(4).max_sessions(1).build();
        let fat = fat_sink.clone();
        let builder = {
            // A moving average broadcasts every phase (a threshold
            // would only emit on crossings) — this sink is a firehose.
            let mut b = StreamRuntime::builder();
            let s1 = b.live_source("s1");
            b.add(&fat, MovingAverage::new(3), &[s1]);
            b.record_history(false).record_script(false)
        };
        let sessions = vec![pool.open("noisy", builder).unwrap()];
        WireServer::builder()
            .subscriber_buffer(8)
            .bind("127.0.0.1:0", pool, sessions)
            .unwrap()
    };
    let addr = server.local_addr().to_string();

    let mut lazy = WireClient::connect(&addr, "", "noisy", Role::Subscriber).unwrap();
    lazy.subscribe().unwrap();
    // ... and then it reads nothing at all while the firehose runs.

    let mut producer = WireClient::connect(&addr, "", "noisy", Role::Producer).unwrap();
    let mut pushed = 0u32;
    for round in 0..40 {
        let batch: Vec<Value> = (0..25)
            .map(|i| Value::Float((round * 25 + i) as f64))
            .collect();
        pushed += producer.push_batch(0, &batch).unwrap();
        producer.seal().unwrap();
    }
    assert_eq!(pushed, 1000, "retirement never wedged on the slow reader");
    producer.seal().unwrap();

    // Now the lazy reader finally drains: it gets some alarms, then the
    // server's verdict. (The disconnect may also surface as a raw EOF
    // if the Error frame raced the socket close.)
    let verdict = loop {
        match lazy.next_alarms() {
            Ok(alarms) => {
                for a in &alarms {
                    assert_eq!(a.sink, fat_sink);
                }
            }
            Err(e) => break e,
        }
    };
    match verdict {
        wire::WireError::Refused(reason) => {
            assert!(reason.contains("too slow"), "{reason}")
        }
        other => assert!(other.is_disconnect(), "unexpected error: {other}"),
    }

    // A fresh subscriber still gets served after the episode — once
    // the backlog has retired, so the firehose doesn't instantly
    // overflow this one too.
    {
        let t = server.tenant("noisy").unwrap();
        t.wait_idle().unwrap();
    }
    let mut fresh = WireClient::connect(&addr, "", "noisy", Role::Subscriber).unwrap();
    fresh.subscribe().unwrap();
    producer.push_batch(0, &[Value::Float(999.0)]).unwrap();
    producer.seal().unwrap();
    let alarms = fresh.next_alarms().unwrap();
    assert!(!alarms.is_empty());

    drop(fresh);
    for (name, report) in server.shutdown() {
        report.unwrap_or_else(|e| panic!("{name} closes cleanly: {e}"));
    }
}

/// Kill the server process-style (drop, no shutdown), rebind over the
/// same durable root: every tenant restores at its exact next phase
/// and keeps serving wire traffic.
#[test]
fn killed_server_restarts_over_durable_stores() {
    let root = test_dir("restart");
    let open_pool = || {
        SessionPool::builder()
            .threads(4)
            .max_sessions(2)
            .durable_root(&root)
            .build()
    };
    let open_sessions = |pool: &SessionPool| {
        ["alpha", "beta"]
            .iter()
            .map(|name| {
                pool.open(name.to_string(), tenant_builder().snapshot_every(4))
                    .unwrap()
            })
            .collect::<Vec<_>>()
    };

    // First incarnation: acked wire traffic, then a crash.
    let mut committed = Vec::new();
    {
        let pool = open_pool();
        let sessions = open_sessions(&pool);
        let server = WireServer::builder()
            .bind("127.0.0.1:0", pool, sessions)
            .unwrap();
        let addr = server.local_addr().to_string();
        for (i, tenant) in ["alpha", "beta"].into_iter().enumerate() {
            let mut client = WireClient::connect(&addr, "", tenant, Role::Producer).unwrap();
            let batch: Vec<Value> = (0..6 + i).map(|k| Value::Float((k * 3) as f64)).collect();
            client.push_batch(0, &batch).unwrap();
            client.push_batch(1, &batch).unwrap();
            client.seal().unwrap();
        }
        for tenant in ["alpha", "beta"] {
            let t = server.tenant(tenant).unwrap();
            t.wait_idle().unwrap();
            committed.push(t.admitted());
        }
        drop(server); // simulated crash: no clean close, sessions dropped
    }

    // Second incarnation: same root, same names — every tenant resumes
    // at its exact committed phase and accepts new wire pushes.
    let pool = open_pool();
    let sessions = open_sessions(&pool);
    for (s, want) in sessions.iter().zip(&committed) {
        assert_eq!(
            s.admitted(),
            *want,
            "{} must resume at its committed phase",
            s.name()
        );
    }
    let server = WireServer::builder()
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap();
    let addr = server.local_addr().to_string();
    for tenant in ["alpha", "beta"] {
        let mut client = WireClient::connect(&addr, "", tenant, Role::Producer).unwrap();
        client.push_batch(0, &[Value::Float(100.0)]).unwrap();
        let phases = client.seal().unwrap();
        assert!(phases > 0);
    }
    for (i, (name, report)) in server.shutdown().into_iter().enumerate() {
        let report = report.unwrap_or_else(|e| panic!("{name} closes cleanly: {e}"));
        assert!(
            report.script.phases() > committed[i],
            "{name}: restored script spans the crash"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The served `/metrics` page carries the pool's tenant rows plus the
/// wire transport's own series, and `/healthz` aggregates a verdict —
/// the surface `ec doctor` reads.
#[test]
fn metrics_endpoint_serves_wire_series_and_health() {
    let pool = SessionPool::builder().threads(2).max_sessions(1).build();
    let sessions = vec![pool.open("obs".to_string(), tenant_builder()).unwrap()];
    let server = WireServer::builder()
        .metrics_addr("127.0.0.1:0")
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap();
    let addr = server.local_addr().to_string();
    let metrics = server.metrics_addr().expect("metrics bound").to_string();

    let mut client = WireClient::connect(&addr, "", "obs", Role::Producer).unwrap();
    client
        .push_batch(0, &[Value::Float(1.0), Value::Float(2.0)])
        .unwrap();
    client.seal().unwrap();

    let page = ec_obs::http_get(&metrics, "/metrics").unwrap();
    ec_obs::validate_exposition(&page).unwrap();
    for series in [
        "ec_wire_connections_total",
        "ec_wire_frames_total",
        "ec_wire_events_total",
        "ec_session_events_per_sec",
    ] {
        assert!(page.contains(series), "missing {series} in:\n{page}");
    }
    let health = ec_obs::http_get(&metrics, "/healthz").unwrap();
    assert!(health.contains("\"verdict\""), "{health}");
    assert!(health.contains("\"obs\""), "{health}");

    // The wire-level metrics frame answers with the same tenant row.
    let row = client.metrics_json().unwrap();
    assert!(row.contains("\"name\":\"obs\""), "{row}");

    // A wire Shutdown frame flips stop_requested — the signal `ec
    // serve` polls to exit cleanly.
    client.shutdown_server().unwrap();
    assert!(server.stop_requested());
    for (name, report) in server.shutdown() {
        report.unwrap_or_else(|e| panic!("{name} closes cleanly: {e}"));
    }
}

/// Hellos with a bad token or an unknown tenant are refused with a
/// diagnostic; the refusal counter ticks.
#[test]
fn bad_hellos_are_refused() {
    let pool = SessionPool::builder().threads(2).max_sessions(1).build();
    let sessions = vec![pool.open("guarded".to_string(), tenant_builder()).unwrap()];
    let server = WireServer::builder()
        .token("sesame")
        .bind("127.0.0.1:0", pool, sessions)
        .unwrap();
    let addr = server.local_addr().to_string();

    let Err(err) = WireClient::connect(&addr, "wrong", "guarded", Role::Producer) else {
        panic!("a wrong token must be refused");
    };
    match err {
        wire::WireError::Refused(reason) => assert!(reason.contains("token"), "{reason}"),
        other => panic!("expected a refusal, got {other}"),
    }
    let Err(err) = WireClient::connect(&addr, "sesame", "nosuch", Role::Producer) else {
        panic!("an unknown tenant must be refused");
    };
    match err {
        wire::WireError::Refused(reason) => {
            assert!(reason.contains("unknown tenant"), "{reason}")
        }
        other => panic!("expected a refusal, got {other}"),
    }
    let ok = WireClient::connect(&addr, "sesame", "guarded", Role::Producer);
    assert!(ok.is_ok(), "the right token must still work");
    assert_eq!(server.stats().refused, 2);
    for (name, report) in server.shutdown() {
        report.unwrap_or_else(|e| panic!("{name} closes cleanly: {e}"));
    }
}
