//! The flight recorder: per-worker rings of timestamped span events.
//!
//! A profiler answers "where did the time go?" *after* the run; a
//! flight recorder answers it for the *last few milliseconds before you
//! looked* — which is what matters when a pipeline stalls in
//! production. Each worker owns one fixed-capacity ring; recording is
//! one `Instant` read plus one ring write behind a per-lane lock no
//! other recorder contends (drains take the lock briefly). When a ring
//! fills, it overwrites its oldest entries: the recorder always holds
//! the newest window of activity, never a stale prefix.
//!
//! Lane 0 is the control plane (admission, epoch seals, WAL commits,
//! snapshots); lanes `1..` belong to workers. The drained rings render
//! into Chrome `chrome://tracing` JSON via
//! [`FlightRecorder::chrome_trace`].

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// What a [`SpanEvent`] marks. Duration-carrying kinds render as Chrome
/// complete (`"X"`) events; the rest are instants (`"i"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A phase entered the scheduler (environment process admitted it).
    PhaseAdmitted,
    /// One vertex-phase execution (duration = module run time).
    Exec,
    /// The completion frontier advanced past this phase.
    PhaseRetired,
    /// An ingest epoch was sealed into phases (duration = seal time).
    EpochSealed,
    /// A WAL group commit (duration = write time).
    WalCommit,
    /// An operator-state snapshot was written (duration = write time).
    Snapshot,
    /// A worker stole a batch from another worker's shard.
    Steal,
    /// A worker parked on an empty queue.
    Park,
    /// A parked worker was woken.
    Wake,
    /// A sampled producer push entered the ingest plane (start of a
    /// causal trace; `a` = trace id, `b` = source slot).
    TraceIngest,
    /// A sampled event's phase retired and its sink output reached the
    /// delivery plane (end of a causal trace; `a` = trace id, `b` =
    /// phase; duration = ingest→delivery latency).
    TraceDeliver,
}

impl SpanKind {
    /// Stable lowercase name used in traces and tests.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PhaseAdmitted => "phase_admitted",
            SpanKind::Exec => "exec",
            SpanKind::PhaseRetired => "phase_retired",
            SpanKind::EpochSealed => "epoch_sealed",
            SpanKind::WalCommit => "wal_commit",
            SpanKind::Snapshot => "snapshot",
            SpanKind::Steal => "steal",
            SpanKind::Park => "park",
            SpanKind::Wake => "wake",
            SpanKind::TraceIngest => "trace_ingest",
            SpanKind::TraceDeliver => "trace_deliver",
        }
    }

    /// Labels for the two payload words in trace `args`.
    fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            SpanKind::PhaseAdmitted | SpanKind::Exec | SpanKind::PhaseRetired => ("phase", "aux"),
            SpanKind::EpochSealed => ("phases", "events"),
            SpanKind::WalCommit => ("rows", "aux"),
            SpanKind::Snapshot => ("phase", "aux"),
            SpanKind::Steal => ("victim", "batch"),
            SpanKind::Park | SpanKind::Wake => ("worker", "aux"),
            SpanKind::TraceIngest => ("trace", "source"),
            SpanKind::TraceDeliver => ("trace", "phase"),
        }
    }
}

/// One recorded event: a completion timestamp (nanoseconds since the
/// recorder's epoch), an optional duration, a kind and two payload
/// words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// When the event *finished*, in nanoseconds since the recorder was
    /// created. Monotonic within a lane (events are recorded in
    /// completion order off one clock).
    pub at_nanos: u64,
    /// How long the spanned work took; 0 for instant events.
    pub dur_nanos: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Primary payload (phase number, victim worker, row count — see
    /// [`SpanKind`]).
    pub a: u64,
    /// Secondary payload.
    pub b: u64,
}

/// A fixed-capacity ring: newest events win, oldest are overwritten.
struct Ring {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    /// Events recorded into this lane, ever.
    recorded: u64,
    /// Events overwritten before any drain saw them.
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, e: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(e);
        self.recorded += 1;
    }
}

/// Per-lane rings of [`SpanEvent`]s. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    lanes: Vec<Mutex<Ring>>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("len", &self.buf.len())
            .field("cap", &self.cap)
            .field("recorded", &self.recorded)
            .field("overwritten", &self.overwritten)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `lanes` rings of `capacity` events each. Lane 0
    /// is conventionally the control plane, lanes `1..` the workers;
    /// both arguments are clamped to at least 1 / 8.
    pub fn new(lanes: usize, capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(8);
        FlightRecorder {
            epoch: Instant::now(),
            lanes: (0..lanes.max(1))
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::with_capacity(capacity),
                        cap: capacity,
                        recorded: 0,
                        overwritten: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds since the recorder was created (the trace clock).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an instant event into `lane` (wrapped into range): one
    /// `Instant` read, one ring write.
    #[inline]
    pub fn record(&self, lane: usize, kind: SpanKind, a: u64, b: u64) {
        self.record_span(lane, kind, a, b, 0);
    }

    /// Records an event that took `dur_nanos` and finished now.
    #[inline]
    pub fn record_span(&self, lane: usize, kind: SpanKind, a: u64, b: u64, dur_nanos: u64) {
        self.record_span_ending(lane, kind, a, b, dur_nanos, Instant::now());
    }

    /// Records an event that took `dur_nanos` and finished at `end` —
    /// the zero-clock-read variant for hot paths that already timed the
    /// work: converting `end` to the trace clock is a subtraction, not
    /// another `Instant::now()`.
    #[inline]
    pub fn record_span_ending(
        &self,
        lane: usize,
        kind: SpanKind,
        a: u64,
        b: u64,
        dur_nanos: u64,
        end: Instant,
    ) {
        let at_nanos = end.saturating_duration_since(self.epoch).as_nanos() as u64;
        let e = SpanEvent {
            at_nanos,
            dur_nanos,
            kind,
            a,
            b,
        };
        self.lanes[lane % self.lanes.len()].lock().push(e);
    }

    /// Empties every ring, returning each lane's events oldest-first.
    pub fn drain(&self) -> Vec<Vec<SpanEvent>> {
        self.lanes
            .iter()
            .map(|l| l.lock().buf.drain(..).collect())
            .collect()
    }

    /// `(recorded, overwritten)` counters for `lane` — overwritten
    /// events were lost to ring wraparound before a drain saw them.
    pub fn lane_stats(&self, lane: usize) -> (u64, u64) {
        let ring = self.lanes[lane % self.lanes.len()].lock();
        (ring.recorded, ring.overwritten)
    }

    /// Drains every ring and renders the events as Chrome
    /// `chrome://tracing` JSON (load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_from(&self.drain())
    }
}

/// Renders per-lane event lists (lane index = Chrome `tid`) as a Chrome
/// trace. Duration-carrying events become complete (`"X"`) slices whose
/// `ts` is the span *start*; the rest become instants.
pub fn chrome_trace_from(lanes: &[Vec<SpanEvent>]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, _) in lanes.iter().enumerate() {
        let name = if tid == 0 {
            "control".to_string()
        } else {
            format!("worker {}", tid - 1)
        };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for (tid, events) in lanes.iter().enumerate() {
        for e in events {
            let (ka, kb) = e.kind.arg_names();
            let args = format!("{{\"{ka}\":{},\"{kb}\":{}}}", e.a, e.b);
            out.push(',');
            if e.dur_nanos > 0 {
                let start = e.at_nanos.saturating_sub(e.dur_nanos);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"ec\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                    e.kind.name(),
                    start as f64 / 1_000.0,
                    e.dur_nanos as f64 / 1_000.0,
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"ec\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                     \"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                    e.kind.name(),
                    e.at_nanos as f64 / 1_000.0,
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Checks a Chrome trace produced by [`chrome_trace_from`] for
/// well-formedness: balanced JSON structure, and every event carrying
/// `name`, `ph`, `pid`, `tid` and a non-negative numeric `ts`. Returns
/// the number of events (including thread-name metadata).
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let body = json
        .strip_prefix("{\"traceEvents\":[")
        .ok_or("missing traceEvents prefix")?;
    let end = body.rfind(']').ok_or("missing closing bracket")?;
    // Balance check over the whole document, string-aware.
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for c in json.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced braces".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced document".into());
    }
    let events_src = &body[..end];
    if events_src.trim().is_empty() {
        return Ok(0);
    }
    // Events are flat objects with one nested `args` object — split on
    // top-level commas.
    let mut events = Vec::new();
    let (mut start, mut depth) = (0usize, 0i64);
    for (i, c) in events_src.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            ',' if depth == 0 => {
                events.push(&events_src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    events.push(&events_src[start..]);
    for (i, ev) in events.iter().enumerate() {
        let ev = ev.trim();
        if !ev.starts_with('{') || !ev.ends_with('}') {
            return Err(format!("event {i} is not an object: {ev}"));
        }
        for key in ["\"name\":", "\"ph\":", "\"pid\":", "\"tid\":", "\"ts\":"] {
            if !ev.contains(key) {
                return Err(format!("event {i} missing {key}: {ev}"));
            }
        }
        let ts = ev
            .split("\"ts\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .ok_or_else(|| format!("event {i} has malformed ts"))?;
        let ts: f64 = ts
            .trim()
            .parse()
            .map_err(|_| format!("event {i} ts is not numeric: {ts}"))?;
        if ts < 0.0 {
            return Err(format!("event {i} ts is negative"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let r = FlightRecorder::new(1, 8);
        for i in 0..20u64 {
            r.record(0, SpanKind::Exec, i, 0);
        }
        let lanes = r.drain();
        let kept: Vec<u64> = lanes[0].iter().map(|e| e.a).collect();
        assert_eq!(kept, (12..20).collect::<Vec<_>>());
        let (recorded, overwritten) = r.lane_stats(0);
        assert_eq!(recorded, 20);
        assert_eq!(overwritten, 12);
    }

    #[test]
    fn lane_timestamps_are_monotonic() {
        let r = FlightRecorder::new(2, 64);
        for i in 0..50u64 {
            r.record(i as usize % 2, SpanKind::Park, i, 0);
        }
        for lane in r.drain() {
            for w in lane.windows(2) {
                assert!(w[0].at_nanos <= w[1].at_nanos);
            }
        }
    }

    #[test]
    fn drain_empties_the_rings() {
        let r = FlightRecorder::new(1, 8);
        r.record(0, SpanKind::Wake, 1, 0);
        assert_eq!(r.drain()[0].len(), 1);
        assert_eq!(r.drain()[0].len(), 0);
    }

    #[test]
    fn chrome_trace_validates() {
        let r = FlightRecorder::new(3, 32);
        r.record_span(1, SpanKind::Exec, 4, 2, 1500);
        r.record(0, SpanKind::PhaseAdmitted, 4, 0);
        r.record_span(0, SpanKind::WalCommit, 16, 0, 90_000);
        r.record(2, SpanKind::Steal, 1, 8);
        let json = r.chrome_trace();
        let n = validate_chrome_trace(&json).expect("well-formed");
        assert_eq!(n, 3 + 4); // 3 thread-name metadata + 4 events
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"wal_commit\""));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{]}").is_err());
    }

    #[test]
    fn empty_trace_validates() {
        let json = chrome_trace_from(&[]);
        assert_eq!(validate_chrome_trace(&json), Ok(0));
    }
}
