//! Lock-free log2-bucketed latency histograms.
//!
//! The engine's hot paths cannot afford a sorted reservoir or a mutex:
//! a [`LogHistogram::record`] is one `leading_zeros` and three relaxed
//! atomic adds. Resolution is one power of two — plenty to tell a 2 µs
//! execution from a 200 µs seal stall — and percentiles are recovered
//! from the bucket counts on demand, off the hot path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
/// 64 value buckets cover the whole `u64` range.
const BUCKETS: usize = 65;

/// A lock-free histogram of `u64` samples (typically nanoseconds) in
/// log2 buckets.
///
/// Writers call [`record`](Self::record) concurrently; a reader takes a
/// [`snapshot`](Self::snapshot) whenever it likes. All orderings are
/// relaxed — a snapshot is a racy-but-complete view, which is all
/// observability needs.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Index of the bucket holding `value`.
    #[inline]
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample. Lock-free: one `leading_zeros` plus three
    /// relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// A point-in-time copy of the counts (racy across buckets, exact
    /// per bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// One histogram per worker lane, so concurrent recorders never share a
/// counter; [`snapshot`](Self::snapshot) merges the lanes.
#[derive(Debug)]
pub struct HistogramBank {
    lanes: Vec<LogHistogram>,
}

impl HistogramBank {
    /// A bank of `lanes` independent histograms (clamped to at least 1).
    pub fn new(lanes: usize) -> HistogramBank {
        HistogramBank {
            lanes: (0..lanes.max(1)).map(|_| LogHistogram::new()).collect(),
        }
    }

    /// Records into `lane` (wrapped into range, so any worker index is
    /// safe).
    #[inline]
    pub fn record(&self, lane: usize, value: u64) {
        self.lanes[lane % self.lanes.len()].record(value);
    }

    /// Merges every lane into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for lane in &self.lanes {
            merged.merge(&lane.snapshot());
        }
        merged
    }
}

/// An owned copy of a [`LogHistogram`]'s counts, with percentile
/// accessors. Integer-only, so it keeps `Eq` and survives hand-rolled
/// JSON round trips exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[0]` = zeros, `buckets[i]` =
    /// samples in `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`, as the upper bound of the
    /// bucket the quantile falls in (capped at [`max`](Self::max), which
    /// is exact). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Hand-rolled JSON object with count, sum, max and the standard
    /// percentiles, all in nanoseconds.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum_nanos\":{},\"max_nanos\":{},\"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}",
            self.count(),
            self.sum,
            self.max,
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 1);
        assert_eq!(LogHistogram::bucket(2), 2);
        assert_eq!(LogHistogram::bucket(3), 2);
        assert_eq!(LogHistogram::bucket(4), 3);
        assert_eq!(LogHistogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 falls in bucket [32,64) → upper bound 63.
        assert_eq!(s.p50(), 63);
        // p99 and the max live in the top bucket [64,128) → capped at
        // the exact max.
        assert_eq!(s.p99(), 100);
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn bank_merges_lanes() {
        let bank = HistogramBank::new(4);
        bank.record(0, 10);
        bank.record(1, 20);
        bank.record(7, 30); // wraps into lane 3
        let s = bank.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum, 60);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn merge_is_additive() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        b.record(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum, 505);
        assert_eq!(m.max, 500);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = LogHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4000);
    }

    #[test]
    fn json_shape_is_stable() {
        let h = LogHistogram::new();
        h.record(7);
        let j = h.snapshot().to_json();
        assert!(j.starts_with("{\"count\":1,"), "{j}");
        assert!(j.contains("\"p99_nanos\":7"), "{j}");
    }
}
