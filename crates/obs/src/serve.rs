//! A minimal std-only TCP `/metrics` endpoint.
//!
//! One listener thread, one connection at a time, `Connection: close` —
//! exactly enough HTTP for a Prometheus scraper or `curl`, with no
//! framework and no dependency. The server owns nothing but a render
//! closure: every request re-renders the page, so scrapes always see
//! live numbers. Binding port 0 picks a free port
//! ([`local_addr`](MetricsServer::local_addr) reports it), which is how
//! tests avoid collisions.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders the `/metrics` page on demand.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A `(path, content_type, render)` route table entry for
/// [`MetricsServer::bind_routes`].
pub type Route = (&'static str, &'static str, RenderFn);

/// Prometheus text exposition content type (the `/metrics` default).
pub const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// JSON content type, used by `/healthz`.
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// A background thread serving `GET` routes over plain HTTP/1.1.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// serves `render()` to every `GET /metrics` until
    /// [`stop`](Self::stop) or drop.
    pub fn bind(addr: &str, render: RenderFn) -> io::Result<MetricsServer> {
        Self::bind_routes(
            addr,
            vec![
                ("/metrics", CONTENT_TYPE_PROM, Arc::clone(&render)),
                ("/", CONTENT_TYPE_PROM, render),
            ],
        )
    }

    /// Binds `addr` and serves a table of `GET` routes; each request
    /// re-renders its route's page. Unknown paths get a 404 listing the
    /// known routes.
    pub fn bind_routes(addr: &str, routes: Vec<Route>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ec-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = serve_one(stream, &routes);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Answers one request: a known route gets its rendered page, anything
/// else a 404.
fn serve_one(mut stream: TcpStream, routes: &[Route]) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
            break;
        }
    }
    let request_line = String::from_utf8_lossy(&req);
    let path = request_line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match routes.iter().find(|(p, _, _)| *p == path) {
        Some((_, content_type, render)) => ("200 OK", *content_type, render()),
        None => (
            "404 Not Found",
            CONTENT_TYPE_PROM,
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A matching minimal HTTP client: fetches `path` from `addr` and
/// returns the body of a 200 response. Used by `ec top` and tests.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(io::Error::other(format!("unexpected status: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_the_rendered_page() {
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            Arc::new(|| "# TYPE ec_up gauge\nec_up 1\n".to_string()),
        )
        .expect("bind");
        let addr = server.local_addr().to_string();
        let body = http_get(&addr, "/metrics").expect("fetch");
        assert_eq!(body, "# TYPE ec_up gauge\nec_up 1\n");
        assert_eq!(crate::validate_exposition(&body), Ok(1));
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = MetricsServer::bind("127.0.0.1:0", Arc::new(String::new)).expect("bind");
        let addr = server.local_addr().to_string();
        let err = http_get(&addr, "/nope").expect_err("404");
        assert!(err.to_string().contains("404"), "{err}");
    }

    #[test]
    fn routes_dispatch_by_path() {
        let server = MetricsServer::bind_routes(
            "127.0.0.1:0",
            vec![
                (
                    "/metrics",
                    CONTENT_TYPE_PROM,
                    Arc::new(|| "metrics-page\n".to_string()),
                ),
                (
                    "/healthz",
                    CONTENT_TYPE_JSON,
                    Arc::new(|| "{\"verdict\":\"ok\"}".to_string()),
                ),
            ],
        )
        .expect("bind");
        let addr = server.local_addr().to_string();
        assert_eq!(http_get(&addr, "/metrics").unwrap(), "metrics-page\n");
        assert_eq!(http_get(&addr, "/healthz").unwrap(), "{\"verdict\":\"ok\"}");
        assert!(http_get(&addr, "/").is_err());
    }

    #[test]
    fn stop_joins_and_is_idempotent() {
        let mut server =
            MetricsServer::bind("127.0.0.1:0", Arc::new(|| "x".to_string())).expect("bind");
        let addr = server.local_addr().to_string();
        assert!(http_get(&addr, "/metrics").is_ok());
        server.stop();
        server.stop();
        assert!(http_get(&addr, "/metrics").is_err());
    }

    #[test]
    fn every_scrape_re_renders() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let render_hits = Arc::clone(&hits);
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            Arc::new(move || {
                let n = render_hits.fetch_add(1, SeqCst) + 1;
                format!("# TYPE ec_scrapes counter\nec_scrapes {n}\n")
            }),
        )
        .expect("bind");
        let addr = server.local_addr().to_string();
        assert!(http_get(&addr, "/metrics")
            .unwrap()
            .contains("ec_scrapes 1"));
        assert!(http_get(&addr, "/metrics")
            .unwrap()
            .contains("ec_scrapes 2"));
    }
}
