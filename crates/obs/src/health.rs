//! A watchdog that turns raw progress counters into a health verdict.
//!
//! [`HealthMonitor`] is deliberately engine-agnostic: a driver (the
//! runtime's delivery loop, a session-pool sampler thread, a test with
//! a synthetic clock) periodically feeds it an [`Observation`] — the
//! admitted/retired frontier plus per-source queue depths and
//! per-lane event totals — and it maintains a rolling [`HealthReport`]
//! answering three questions:
//!
//! 1. **Is retirement stalled?** Phases are inflight but the retired
//!    frontier has not advanced for [`HealthConfig::stall_after`].
//! 2. **Is ingest wedged, and by whom?** A source queue sits at
//!    capacity with its producer wait count climbing while no phase is
//!    admitted — the report blames that source by name.
//! 3. **Did throughput collapse?** Each lane's event rate is compared
//!    against a half-life-decayed baseline; a drop beyond
//!    [`HealthConfig::collapse_ratio`] while demand exists (queued
//!    input or inflight phases) flags the lane as degraded.
//!
//! The monitor never reads a clock itself — every call takes an
//! explicit `now: Instant`, so tests drive it with a mock timeline and
//! production drivers pass `Instant::now()`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Overall health classification, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Progress looks normal.
    Ok,
    /// Making progress, but a tracked baseline collapsed.
    Degraded,
    /// No progress where progress is owed: retirement or ingest wedged.
    Stalled,
}

impl Verdict {
    /// Stable lowercase name used in JSON reports and `ec doctor`.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Stalled => "stalled",
        }
    }
}

/// Tuning knobs for [`HealthMonitor`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// How long the retired frontier (or a wedged full source) may sit
    /// still before the verdict flips to [`Verdict::Stalled`].
    pub stall_after: Duration,
    /// Fractional drop vs. the decayed baseline that flags a lane as
    /// collapsed: `0.8` means "flag when the rate falls below 20% of
    /// baseline".
    pub collapse_ratio: f64,
    /// Half-life of the per-lane rate baseline decay.
    pub halflife: Duration,
    /// A lane must have committed at least this many events before its
    /// baseline is trusted enough to flag a collapse.
    pub min_events: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_after: Duration::from_secs(2),
            collapse_ratio: 0.8,
            halflife: Duration::from_secs(10),
            min_events: 1_000,
        }
    }
}

/// One source's queue state at observation time.
#[derive(Debug, Clone)]
pub struct SourceObs {
    /// Source name (spec name, not index).
    pub name: String,
    /// Events currently queued in the source's ingest buffer.
    pub depth: usize,
    /// The buffer's capacity.
    pub capacity: usize,
    /// Cumulative producer waits/bounces against this source's buffer.
    pub waits: u64,
}

/// One throughput lane (a tenant session, or the whole runtime) at
/// observation time.
#[derive(Debug, Clone)]
pub struct LaneObs {
    /// Lane name (tenant/session name, or `"runtime"`).
    pub name: String,
    /// Cumulative committed events on this lane.
    pub events: u64,
}

/// A point-in-time progress sample fed to [`HealthMonitor::observe`].
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Phases admitted so far (monotone).
    pub admitted: u64,
    /// Phases retired so far (monotone, `<= admitted`).
    pub retired: u64,
    /// Per-source queue state.
    pub sources: Vec<SourceObs>,
    /// Per-lane cumulative event totals.
    pub lanes: Vec<LaneObs>,
    /// Active subsystem faults reported by the driver (e.g.
    /// `"degraded: wal /path: fsync failed"` when the runtime suspended
    /// durability). Any entry forces at least [`Verdict::Degraded`] and
    /// its text is surfaced verbatim as a reason.
    pub faults: Vec<String>,
}

#[derive(Debug, Clone)]
struct LaneBaseline {
    /// Events at the previous observation.
    last_events: u64,
    /// Half-life-decayed events/sec baseline.
    baseline: f64,
    /// Most recently observed events/sec.
    rate: f64,
}

#[derive(Debug)]
struct State {
    last: Option<(Instant, Observation)>,
    /// When the retired frontier last advanced (or monitoring began).
    retired_progress_at: Instant,
    /// When the admitted frontier last advanced (or monitoring began).
    admitted_progress_at: Instant,
    /// Per-source wait count at the last observation, by name.
    last_waits: HashMap<String, u64>,
    lanes: HashMap<String, LaneBaseline>,
    report: HealthReport,
}

/// A rolling watchdog over engine progress counters.
///
/// Thread-safe: `observe` and `report` take `&self`.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    state: Mutex<State>,
}

/// One lane's throughput summary inside a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct LaneHealth {
    /// Lane name.
    pub name: String,
    /// Cumulative committed events.
    pub events: u64,
    /// Most recent events/sec.
    pub rate: f64,
    /// Decayed events/sec baseline.
    pub baseline: f64,
}

/// The structured verdict rendered on `/healthz` and by `ec doctor`.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Overall verdict (worst of all detections).
    pub verdict: Verdict,
    /// Human-readable reasons for any non-Ok verdict.
    pub reasons: Vec<String>,
    /// Phases admitted at the last observation.
    pub admitted: u64,
    /// Phases retired at the last observation.
    pub retired: u64,
    /// Per-source queue state at the last observation.
    pub sources: Vec<SourceObs>,
    /// Per-lane throughput summaries.
    pub lanes: Vec<LaneHealth>,
}

impl Default for HealthReport {
    fn default() -> Self {
        HealthReport {
            verdict: Verdict::Ok,
            reasons: Vec::new(),
            admitted: 0,
            retired: 0,
            sources: Vec::new(),
            lanes: Vec::new(),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl HealthReport {
    /// Renders the report as a JSON object. `verdict` is the first key
    /// so even the simplest scraper finds it.
    pub fn to_json(&self) -> String {
        let reasons = self
            .reasons
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect::<Vec<_>>()
            .join(",");
        let sources = self
            .sources
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"depth\":{},\"capacity\":{},\"waits\":{}}}",
                    json_escape(&s.name),
                    s.depth,
                    s.capacity,
                    s.waits
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                format!(
                    "{{\"name\":\"{}\",\"events\":{},\"rate\":{:.1},\"baseline\":{:.1}}}",
                    json_escape(&l.name),
                    l.events,
                    l.rate,
                    l.baseline
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"verdict\":\"{}\",\"reasons\":[{}],\"admitted\":{},\"retired\":{},\
             \"inflight\":{},\"sources\":[{}],\"lanes\":[{}]}}",
            self.verdict.name(),
            reasons,
            self.admitted,
            self.retired,
            self.admitted.saturating_sub(self.retired),
            sources,
            lanes
        )
    }
}

impl HealthMonitor {
    /// Creates a monitor; `start` anchors the stall timers (pass
    /// `Instant::now()` in production).
    pub fn new(cfg: HealthConfig, start: Instant) -> HealthMonitor {
        HealthMonitor {
            cfg,
            state: Mutex::new(State {
                last: None,
                retired_progress_at: start,
                admitted_progress_at: start,
                last_waits: HashMap::new(),
                lanes: HashMap::new(),
                report: HealthReport::default(),
            }),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Feeds one progress sample and recomputes the report.
    pub fn observe(&self, now: Instant, obs: Observation) {
        let mut st = self.state.lock().unwrap();
        let st = &mut *st;
        let mut reasons = Vec::new();
        let mut verdict = Verdict::Ok;

        // Progress timers.
        if let Some((_, prev)) = &st.last {
            if obs.retired > prev.retired {
                st.retired_progress_at = now;
            }
            if obs.admitted > prev.admitted {
                st.admitted_progress_at = now;
            }
        } else if obs.retired > 0 {
            st.retired_progress_at = now;
        }

        // 1. Retirement stall: work inflight, frontier frozen.
        let inflight = obs.admitted.saturating_sub(obs.retired);
        let retired_idle = now.saturating_duration_since(st.retired_progress_at);
        if inflight > 0 && retired_idle >= self.cfg.stall_after {
            verdict = verdict.max(Verdict::Stalled);
            reasons.push(format!(
                "phase retirement stalled: {} phase(s) inflight, retired frontier \
                 stuck at {} for {:.1}s",
                inflight,
                obs.retired,
                retired_idle.as_secs_f64()
            ));
        }

        // 2. Ingest wedge: a full source with climbing producer waits
        // while nothing is admitted — blame the source.
        let admit_idle = now.saturating_duration_since(st.admitted_progress_at);
        if admit_idle >= self.cfg.stall_after {
            for s in &obs.sources {
                let prev_waits = st.last_waits.get(&s.name).copied().unwrap_or(0);
                if s.capacity > 0 && s.depth >= s.capacity && s.waits > prev_waits {
                    verdict = verdict.max(Verdict::Stalled);
                    reasons.push(format!(
                        "ingest wedged: source \"{}\" full ({}/{}) with producers \
                         waiting ({} waits) and no phase admitted for {:.1}s",
                        s.name,
                        s.depth,
                        s.capacity,
                        s.waits,
                        admit_idle.as_secs_f64()
                    ));
                }
            }
        }

        // 3. Throughput collapse vs. decayed baseline, only while
        // demand exists (otherwise an idle-but-healthy lane would be
        // flagged whenever traffic legitimately ends).
        let demand = inflight > 0 || obs.sources.iter().any(|s| s.depth > 0);
        let dt = st
            .last
            .as_ref()
            .map(|(t, _)| now.saturating_duration_since(*t).as_secs_f64())
            .unwrap_or(0.0);
        let mut lane_health = Vec::with_capacity(obs.lanes.len());
        for lane in &obs.lanes {
            let entry = st
                .lanes
                .entry(lane.name.clone())
                .or_insert_with(|| LaneBaseline {
                    last_events: lane.events,
                    baseline: 0.0,
                    rate: 0.0,
                });
            if dt > 0.0 {
                let delta = lane.events.saturating_sub(entry.last_events) as f64;
                let rate = delta / dt;
                let alpha = 0.5_f64.powf(dt / self.cfg.halflife.as_secs_f64().max(1e-9));
                entry.baseline = if entry.baseline == 0.0 {
                    rate
                } else {
                    alpha * entry.baseline + (1.0 - alpha) * rate
                };
                entry.rate = rate;
                entry.last_events = lane.events;
                if demand
                    && lane.events >= self.cfg.min_events
                    && entry.baseline > 0.0
                    && rate < entry.baseline * (1.0 - self.cfg.collapse_ratio)
                {
                    verdict = verdict.max(Verdict::Degraded);
                    reasons.push(format!(
                        "throughput collapse on lane \"{}\": {:.0} ev/s vs \
                         baseline {:.0} ev/s",
                        lane.name, rate, entry.baseline
                    ));
                }
            }
            lane_health.push(LaneHealth {
                name: lane.name.clone(),
                events: lane.events,
                rate: entry.rate,
                baseline: entry.baseline,
            });
        }

        // 4. Driver-reported subsystem faults (suspended durability,
        // failing store, …): making progress, but a promise is broken.
        for fault in &obs.faults {
            verdict = verdict.max(Verdict::Degraded);
            reasons.push(fault.clone());
        }

        st.last_waits = obs
            .sources
            .iter()
            .map(|s| (s.name.clone(), s.waits))
            .collect();
        st.report = HealthReport {
            verdict,
            reasons,
            admitted: obs.admitted,
            retired: obs.retired,
            sources: obs.sources.clone(),
            lanes: lane_health,
        };
        st.last = Some((now, obs));
    }

    /// The most recent report (default/Ok before the first
    /// observation).
    pub fn report(&self) -> HealthReport {
        self.state.lock().unwrap().report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            stall_after: Duration::from_millis(100),
            collapse_ratio: 0.8,
            halflife: Duration::from_secs(10),
            min_events: 100,
        }
    }

    fn obs(admitted: u64, retired: u64) -> Observation {
        Observation {
            admitted,
            retired,
            ..Observation::default()
        }
    }

    #[test]
    fn idle_monitor_is_ok() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        assert_eq!(mon.report().verdict, Verdict::Ok);
        mon.observe(t0 + Duration::from_secs(5), obs(0, 0));
        assert_eq!(mon.report().verdict, Verdict::Ok);
    }

    #[test]
    fn steady_progress_is_ok() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        for i in 1..=10u64 {
            mon.observe(t0 + Duration::from_millis(50 * i), obs(i * 10, i * 10 - 1));
        }
        let r = mon.report();
        assert_eq!(r.verdict, Verdict::Ok, "{:?}", r.reasons);
    }

    #[test]
    fn frozen_retirement_with_inflight_is_stalled() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        mon.observe(t0 + Duration::from_millis(10), obs(5, 2));
        mon.observe(t0 + Duration::from_millis(250), obs(5, 2));
        let r = mon.report();
        assert_eq!(r.verdict, Verdict::Stalled);
        assert!(
            r.reasons.iter().any(|m| m.contains("retirement stalled")),
            "{:?}",
            r.reasons
        );
        // Progress clears the stall.
        mon.observe(t0 + Duration::from_millis(300), obs(5, 5));
        assert_eq!(mon.report().verdict, Verdict::Ok);
    }

    #[test]
    fn driver_fault_forces_degraded_and_surfaces_verbatim() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        let fault = "degraded: wal /tmp/store: fsync failed".to_string();
        mon.observe(
            t0 + Duration::from_millis(10),
            Observation {
                admitted: 10,
                retired: 10,
                faults: vec![fault.clone()],
                ..Observation::default()
            },
        );
        let r = mon.report();
        assert_eq!(r.verdict, Verdict::Degraded);
        assert!(r.reasons.contains(&fault), "{:?}", r.reasons);
        // The fault clearing restores Ok.
        mon.observe(t0 + Duration::from_millis(20), obs(11, 11));
        assert_eq!(mon.report().verdict, Verdict::Ok);
    }

    #[test]
    fn full_source_with_climbing_waits_blames_the_source() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        let src = |waits| Observation {
            sources: vec![SourceObs {
                name: "ticks".into(),
                depth: 8,
                capacity: 8,
                waits,
            }],
            ..Observation::default()
        };
        mon.observe(t0 + Duration::from_millis(10), src(5));
        mon.observe(t0 + Duration::from_millis(250), src(20));
        let r = mon.report();
        assert_eq!(r.verdict, Verdict::Stalled);
        assert!(
            r.reasons.iter().any(|m| m.contains("\"ticks\"")),
            "{:?}",
            r.reasons
        );
    }

    #[test]
    fn full_source_without_new_waits_is_not_blamed() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        let src = Observation {
            admitted: 0,
            retired: 0,
            sources: vec![SourceObs {
                name: "ticks".into(),
                depth: 8,
                capacity: 8,
                waits: 5,
            }],
            ..Observation::default()
        };
        mon.observe(t0 + Duration::from_millis(10), src.clone());
        mon.observe(t0 + Duration::from_millis(250), src);
        assert_eq!(mon.report().verdict, Verdict::Ok);
    }

    #[test]
    fn rate_collapse_under_demand_is_degraded() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        let lane = |events, depth| Observation {
            admitted: 100,
            retired: 100,
            sources: vec![SourceObs {
                name: "s".into(),
                depth,
                capacity: 64,
                waits: 0,
            }],
            lanes: vec![LaneObs {
                name: "tenant-a".into(),
                events,
            }],
            ..Observation::default()
        };
        // Warm a ~1000 ev/s baseline.
        for i in 1..=5u64 {
            mon.observe(t0 + Duration::from_secs(i), lane(i * 1000, 10));
        }
        assert_eq!(mon.report().verdict, Verdict::Ok);
        // Collapse to ~10 ev/s with input still queued.
        mon.observe(t0 + Duration::from_secs(6), lane(5010, 10));
        let r = mon.report();
        assert_eq!(r.verdict, Verdict::Degraded, "{:?}", r.reasons);
        assert!(
            r.reasons.iter().any(|m| m.contains("tenant-a")),
            "{:?}",
            r.reasons
        );
        // The same collapse with no queued demand is a quiet period,
        // not a degradation.
        let mon2 = HealthMonitor::new(cfg(), t0);
        for i in 1..=5u64 {
            mon2.observe(t0 + Duration::from_secs(i), lane(i * 1000, 10));
        }
        mon2.observe(t0 + Duration::from_secs(6), lane(5010, 0));
        assert_eq!(mon2.report().verdict, Verdict::Ok);
    }

    #[test]
    fn report_json_shape() {
        let t0 = Instant::now();
        let mon = HealthMonitor::new(cfg(), t0);
        mon.observe(
            t0 + Duration::from_millis(10),
            Observation {
                admitted: 7,
                retired: 4,
                sources: vec![SourceObs {
                    name: "a\"b".into(),
                    depth: 1,
                    capacity: 8,
                    waits: 2,
                }],
                lanes: vec![LaneObs {
                    name: "t0".into(),
                    events: 9,
                }],
                ..Observation::default()
            },
        );
        let json = mon.report().to_json();
        assert!(json.starts_with("{\"verdict\":\"ok\""), "{json}");
        assert!(json.contains("\"inflight\":3"), "{json}");
        assert!(json.contains("a\\\"b"), "{json}");
        let (mut depth, mut max_depth) = (0i32, 0i32);
        for c in json.chars() {
            match c {
                '{' | '[' => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced: {json}");
        assert!(max_depth >= 3);
    }

    #[test]
    fn verdict_ordering_takes_the_worst() {
        assert!(Verdict::Stalled > Verdict::Degraded);
        assert!(Verdict::Degraded > Verdict::Ok);
        assert_eq!(Verdict::Ok.name(), "ok");
        assert_eq!(Verdict::Stalled.name(), "stalled");
    }
}
