//! Observability primitives for the event-correlation stack.
//!
//! The paper's performance argument (§4) is about *distributions* — how
//! deep the phase pipeline runs, where the time between an epoch seal
//! and its retirement goes — but an engine under load cannot afford the
//! instrumentation cost of a general tracing framework. This crate is
//! the deliberately narrow substrate the rest of the workspace threads
//! through:
//!
//! * [`LogHistogram`] — a lock-free log2-bucketed histogram. One
//!   `leading_zeros` plus three relaxed atomic adds per `record`; p50 /
//!   p95 / p99 / max come out of a [`HistogramSnapshot`] after the
//!   fact. [`HistogramBank`] stripes one histogram per worker so the
//!   hot path never shares a cache line, merging at snapshot time.
//! * [`FlightRecorder`] — per-worker fixed-capacity ring buffers of
//!   timestamped [`SpanEvent`]s. Recording is one `Instant` read plus
//!   one ring write under an uncontended per-lane lock; the ring
//!   overwrites its oldest entries, so the recorder always holds the
//!   *newest* window of activity. [`FlightRecorder::chrome_trace`]
//!   renders the drained rings as Chrome `chrome://tracing` JSON.
//! * [`PromText`] — a tiny Prometheus text-exposition builder (plus
//!   [`validate_exposition`], used by tests and CI to keep the output
//!   well-formed), and [`MetricsServer`] — a minimal std-only TCP
//!   endpoint serving whatever render closures it is given (`/metrics`,
//!   and `/healthz` when a watchdog is wired in).
//! * [`HealthMonitor`] — a watchdog that turns raw progress counters
//!   (admitted/retired frontiers, source queue depths and waits,
//!   per-lane event totals) into a structured [`HealthReport`] with an
//!   Ok / Degraded / Stalled [`Verdict`] and blame-carrying reasons.
//!
//! Nothing here knows about engines or runtimes: `ec-core` and
//! `ec-runtime` own *what* is recorded; this crate owns *how cheaply*.

#![warn(missing_docs)]

mod health;
mod hist;
mod prom;
mod recorder;
mod serve;

pub use health::{
    HealthConfig, HealthMonitor, HealthReport, LaneHealth, LaneObs, Observation, SourceObs, Verdict,
};
pub use hist::{HistogramBank, HistogramSnapshot, LogHistogram};
pub use prom::{validate_exposition, PromText};
pub use recorder::{chrome_trace_from, validate_chrome_trace, FlightRecorder, SpanEvent, SpanKind};
pub use serve::{http_get, MetricsServer, RenderFn, Route, CONTENT_TYPE_JSON, CONTENT_TYPE_PROM};
