//! Prometheus text-exposition rendering (format 0.0.4) and a strict
//! validator for it.
//!
//! The renderer is a plain string builder — no registry of live
//! handles, no background state. Whoever owns the numbers (the runtime,
//! a session pool) renders them fresh on every scrape; [`PromText`]
//! only guarantees the *format* is right. [`validate_exposition`] is
//! the other half of that guarantee: tests and the CI smoke job run
//! every rendered page through it.

use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// A builder for one `/metrics` page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    /// Metric families already announced with `# TYPE` (a family may
    /// gain samples from several sources, but must be announced once).
    announced: Vec<String>,
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn announce(&mut self, name: &str, kind: &str, help: &str) {
        if self.announced.iter().any(|a| a == name) {
            return;
        }
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self.announced.push(name.to_string());
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {}", fmt_value(value));
            return;
        }
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        let _ = writeln!(
            self.out,
            "{name}{{{}}} {}",
            rendered.join(","),
            fmt_value(value)
        );
    }

    /// Adds a counter sample (monotonically increasing total).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.announce(name, "counter", help);
        self.sample(name, labels, value as f64);
    }

    /// Adds a gauge sample (instantaneous value).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.announce(name, "gauge", help);
        self.sample(name, labels, value);
    }

    /// Adds a latency summary from a histogram snapshot: p50/p95/p99
    /// quantile samples plus `_sum` and `_count`, in **seconds** (the
    /// snapshot's values are nanoseconds).
    pub fn latency_summary(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &HistogramSnapshot,
    ) {
        self.announce(name, "summary", help);
        for (q, v) in [
            ("0.5", h.p50()),
            ("0.95", h.p95()),
            ("0.99", h.p99()),
            ("1", h.max),
        ] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", q));
            self.sample(name, &with_q, v as f64 / 1e9);
        }
        let sum = format!("{name}_sum");
        let count = format!("{name}_count");
        self.sample(&sum, labels, h.sum as f64 / 1e9);
        self.sample(&count, labels, h.count() as f64);
    }

    /// The finished page.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Validates a Prometheus text-exposition page: every line is a `# HELP`
/// / `# TYPE` comment or a `name{labels} value` sample with a legal
/// metric name and a parseable value, every sample's family has a `#
/// TYPE` announcement, and no family is announced twice. Returns the
/// number of samples.
pub fn validate_exposition(page: &str) -> Result<usize, String> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in page.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" | "TYPE" => {
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad metric name {name:?}"));
                    }
                    if keyword == "TYPE" {
                        if typed.iter().any(|t| t == name) {
                            return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                        }
                        match parts.next() {
                            Some("counter" | "gauge" | "summary" | "histogram" | "untyped") => {}
                            other => {
                                return Err(format!("line {lineno}: bad TYPE {other:?}"));
                            }
                        }
                        typed.push(name.to_string());
                    }
                }
                _ => return Err(format!("line {lineno}: unknown comment {keyword:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated labels"))?;
                validate_labels(&line[i + 1..close]).map_err(|e| format!("line {lineno}: {e}"))?;
                (&line[..i], line[close + 1..].trim())
            }
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(format!("line {lineno}: sample without value: {line:?}")),
        };
        if !valid_name(name_part) {
            return Err(format!("line {lineno}: bad sample name {name_part:?}"));
        }
        value_part
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: bad value {value_part:?}"))?;
        let family = name_part
            .strip_suffix("_sum")
            .or_else(|| name_part.strip_suffix("_count"))
            .unwrap_or(name_part);
        if !typed.iter().any(|t| t == family || t == name_part) {
            return Err(format!("line {lineno}: sample {name_part} has no TYPE"));
        }
        samples += 1;
    }
    Ok(samples)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn validate_labels(body: &str) -> Result<(), String> {
    if body.is_empty() {
        return Ok(());
    }
    // k="v",k="v" — values may contain escaped quotes.
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        if !valid_name(&rest[..eq]) {
            return Err(format!("bad label name {:?}", &rest[..eq]));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value: {after:?}"));
        }
        let mut end = None;
        let bytes = after.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end.ok_or("unterminated label value")?;
        rest = &after[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| format!("junk after label value: {rest:?}"))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let h = LogHistogram::new();
        h.record(1_000);
        h.record(2_000_000);
        let mut p = PromText::new();
        p.counter("ec_executions_total", "Vertex executions.", &[], 42);
        p.gauge("ec_queue_depth", "Tasks queued.", &[("worker", "0")], 3.0);
        p.latency_summary("ec_exec_seconds", "Exec latency.", &[], &h.snapshot());
        let page = p.render();
        let n = validate_exposition(&page).expect("valid page");
        assert_eq!(n, 1 + 1 + 6);
        assert!(page.contains("ec_executions_total 42"));
        assert!(page.contains("ec_queue_depth{worker=\"0\"} 3"));
        assert!(page.contains("ec_exec_seconds{quantile=\"0.99\"}"));
        assert!(page.contains("ec_exec_seconds_count 2"));
    }

    #[test]
    fn families_are_announced_once_across_sources() {
        let mut p = PromText::new();
        p.counter("ec_x_total", "X.", &[("t", "a")], 1);
        p.counter("ec_x_total", "X.", &[("t", "b")], 2);
        let page = p.render();
        assert_eq!(page.matches("# TYPE ec_x_total").count(), 1);
        assert_eq!(validate_exposition(&page), Ok(2));
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        assert!(validate_exposition("ec_orphan 1").is_err()); // no TYPE
        assert!(validate_exposition("# TYPE ec_x counter\nec_x notanumber").is_err());
        assert!(validate_exposition("# TYPE ec_x counter\n9bad_name 1").is_err());
        assert!(validate_exposition("# TYPE ec_x counter\nec_x{l=unquoted} 1").is_err());
        assert!(validate_exposition("# TYPE ec_x counter\n# TYPE ec_x counter\nec_x 1").is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.gauge("ec_g", "G.", &[("name", "a\"b\\c")], 1.0);
        let page = p.render();
        assert!(page.contains("name=\"a\\\"b\\\\c\""));
        assert_eq!(validate_exposition(&page), Ok(1));
    }
}
