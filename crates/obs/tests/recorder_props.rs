//! Property tests for the flight recorder: randomized concurrent
//! record/drain interleavings conserve every event exactly (in the
//! style of the runtime's `ingest_props.rs` ingest reconciliation).
//!
//! Each case runs one producer thread per lane — the engine's
//! single-writer-per-lane discipline — racing a drainer thread that
//! empties the rings at random moments. The reconciliation is exact,
//! not statistical:
//!
//! * every recorded event is either drained exactly once or counted as
//!   overwritten by ring wraparound: `recorded == drained + overwritten`
//!   once the final drain has run;
//! * drained events leave each lane oldest-first, so the concatenation
//!   of successive drains is strictly increasing in sequence number and
//!   non-decreasing in timestamp;
//! * whatever survives renders into well-formed Chrome trace JSON with
//!   non-negative, per-lane monotonic timestamps.

use ec_obs::{chrome_trace_from, validate_chrome_trace, FlightRecorder, SpanEvent, SpanKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

const KINDS: [SpanKind; 5] = [
    SpanKind::Exec,
    SpanKind::PhaseAdmitted,
    SpanKind::PhaseRetired,
    SpanKind::Steal,
    SpanKind::Park,
];

/// Records `events` sequence-numbered events into every lane from one
/// thread per lane while a drainer empties the rings at random moments;
/// returns the per-lane concatenation of everything drained.
fn race_record_drain(
    recorder: &FlightRecorder,
    events: u64,
    seed: u64,
    drains: usize,
) -> Vec<Vec<SpanEvent>> {
    let lanes = recorder.lanes();
    let mut drained: Vec<Vec<SpanEvent>> = vec![Vec::new(); lanes];
    let stop = AtomicBool::new(false);
    let mid_drains = std::thread::scope(|scope| {
        let producers: Vec<_> = (0..lanes)
            .map(|lane| {
                let recorder = &recorder;
                scope.spawn(move || {
                    for k in 0..events {
                        let kind = KINDS[(k as usize + lane) % KINDS.len()];
                        recorder.record_span(lane, kind, k, lane as u64, k % 7);
                        if k % 32 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let drainer = {
            let recorder = &recorder;
            let stop = &stop;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut collected: Vec<Vec<SpanEvent>> = Vec::new();
                for _ in 0..drains {
                    if stop.load(Relaxed) {
                        break;
                    }
                    for _ in 0..rng.gen_range(0..50u32) {
                        std::thread::yield_now();
                    }
                    collected.push(recorder.drain().into_iter().flatten().collect());
                }
                collected
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        stop.store(true, Relaxed);
        drainer.join().unwrap()
    });
    // Mid-run drains interleave lanes; rebucket by payload lane tag
    // (word `b` carries the producing lane).
    for batch in mid_drains {
        for e in batch {
            drained[e.b as usize].push(e);
        }
    }
    // The final drain sees quiesced rings: whatever wraparound spared.
    for (lane, events) in recorder.drain().into_iter().enumerate() {
        drained[lane].extend(events);
    }
    drained
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sequential wraparound: a ring of capacity `cap` that saw
    /// `events` records holds exactly the newest `min(cap, events)`,
    /// in order, and accounts for every overwrite.
    #[test]
    fn wraparound_keeps_the_newest_window(cap in 8usize..64, events in 0u64..400) {
        let r = FlightRecorder::new(1, cap);
        for k in 0..events {
            r.record(0, SpanKind::Exec, k, 0);
        }
        let kept: Vec<u64> = r.drain().remove(0).iter().map(|e| e.a).collect();
        let expect_len = (events as usize).min(cap);
        let first = events - expect_len as u64;
        prop_assert_eq!(kept, (first..events).collect::<Vec<_>>());
        let (recorded, overwritten) = r.lane_stats(0);
        prop_assert_eq!(recorded, events);
        prop_assert_eq!(overwritten, events - expect_len as u64);
    }

    /// Concurrent producers vs a racing drainer: exact conservation
    /// (`recorded == drained + overwritten`), FIFO drain order, and
    /// monotonic per-lane timestamps.
    #[test]
    fn concurrent_record_drain_reconciles(
        seed in 0u64..10_000,
        lanes in 1usize..5,
        cap in 8usize..64,
        events in 50u64..400,
        drains in 0usize..8,
    ) {
        let recorder = FlightRecorder::new(lanes, cap);
        let drained = race_record_drain(&recorder, events, seed, drains);
        for (lane, got) in drained.iter().enumerate() {
            let (recorded, overwritten) = recorder.lane_stats(lane);
            prop_assert_eq!(recorded, events, "lane {} recorded", lane);
            prop_assert_eq!(
                got.len() as u64 + overwritten,
                recorded,
                "lane {}: drained + overwritten != recorded", lane
            );
            // FIFO: sequence numbers strictly increase across the
            // concatenated drains (overwrites only drop a prefix of
            // what each drain would have seen), timestamps never
            // run backwards.
            for w in got.windows(2) {
                prop_assert!(w[0].a < w[1].a, "lane {} out of order", lane);
                prop_assert!(w[0].at_nanos <= w[1].at_nanos, "lane {} time warp", lane);
            }
        }
    }

    /// Whatever a concurrent run leaves in the rings renders as
    /// well-formed Chrome trace JSON: validated structure, one metadata
    /// record per lane, and every span starting at a non-negative time.
    #[test]
    fn chrome_trace_is_well_formed_after_a_race(
        seed in 0u64..10_000,
        lanes in 1usize..4,
        events in 20u64..200,
    ) {
        let recorder = FlightRecorder::new(lanes, 32);
        // Race producers against 2 drains, then record a little more so
        // the trace is non-trivial.
        race_record_drain(&recorder, events, seed, 2);
        for lane in 0..lanes {
            recorder.record_span(lane, SpanKind::Exec, 1, lane as u64, 500);
        }
        let survivors = recorder.drain();
        let n_events: usize = survivors.iter().map(Vec::len).sum();
        for lane in &survivors {
            for w in lane.windows(2) {
                prop_assert!(w[0].at_nanos <= w[1].at_nanos);
            }
        }
        let json = chrome_trace_from(&survivors);
        prop_assert_eq!(validate_chrome_trace(&json), Ok(lanes + n_events));
    }
}
