//! Writes `BENCH_runtime.json`: a machine-readable throughput baseline
//! for the streaming runtime, so successive PRs can compare against a
//! recorded trajectory instead of re-running ad-hoc benchmarks.
//!
//! Runs the same workload as the `runtime_throughput` Criterion bench
//! (two live sources, shared aggregation spine, history off) at 1, 4
//! and 8 worker threads, and records events/second for each.
//!
//! ```text
//! cargo run --release -p ec-bench --bin record [-- OUTPUT_PATH [EVENTS]]
//! ```
//!
//! Defaults: `BENCH_runtime.json` in the current directory, 20_000
//! events per timed run. Each configuration runs one warmup pass and
//! three timed passes; the median is reported.

use ec_bench::{drive_runtime, runtime_workload, RUNTIME_EPOCH};
use std::io::Write;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 4, 8];
const DEFAULT_EVENTS: u64 = 20_000;
const TIMED_RUNS: usize = 3;

fn measure(threads: usize, events: u64) -> f64 {
    // Warmup: one full pass, untimed (thread spawn, allocator, caches).
    {
        let rt = runtime_workload(threads);
        drive_runtime(&rt, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let verbose = std::env::var_os("EC_BENCH_VERBOSE").is_some();
    let mut rates: Vec<f64> = (0..TIMED_RUNS)
        .map(|_| {
            let rt = runtime_workload(threads);
            let start = Instant::now();
            drive_runtime(&rt, events);
            let elapsed = start.elapsed().as_secs_f64();
            if verbose {
                let m = rt.metrics();
                eprintln!(
                    "  execs={} enq={} steals={} parks={} wakes={} \
                     lock_wait={}us crit={}us exec={}us depth~{:.1}",
                    m.executions,
                    m.enqueued,
                    m.steals,
                    m.parks,
                    m.wakes,
                    m.lock_wait_nanos / 1_000,
                    m.critical_nanos / 1_000,
                    m.exec_nanos / 1_000,
                    m.mean_concurrent_phases(),
                );
            }
            rt.shutdown().expect("clean shutdown");
            events as f64 / elapsed
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_runtime.json".into());
    let events: u64 = args
        .next()
        .map(|s| s.parse().expect("EVENTS must be an integer"))
        .unwrap_or(DEFAULT_EVENTS);

    let mut entries = Vec::new();
    for &threads in &THREADS {
        let rate = measure(threads, events);
        eprintln!("threads={threads}: {rate:.0} events/s");
        entries.push(format!(
            "    {{\"threads\": {threads}, \"events_per_sec\": {rate:.1}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"runtime_throughput\",\n  \"events\": {events},\n  \
         \"epoch\": {RUNTIME_EPOCH},\n  \"timed_runs\": {TIMED_RUNS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out_path}");
}
