//! Appends to `BENCH_runtime.json`: a machine-readable throughput
//! *trajectory* for the streaming runtime, so successive PRs accumulate
//! comparable data points instead of overwriting each other.
//!
//! Each invocation measures two workloads and appends one entry:
//!
//! * `results` — the single-runtime workload of the
//!   `runtime_throughput` Criterion bench (two live sources, shared
//!   aggregation spine, history off) at 1, 4 and 8 worker threads;
//! * `sessions` — the multi-tenant workload: 8 copies of the same
//!   graph as tenant sessions on one shared `SessionPool`, at 4 and 8
//!   workers, reporting aggregate events/second;
//! * `metrics` — the full `MetricsSnapshot` of the last 4-thread run
//!   (scheduler counters, ingest counters, latency percentiles);
//! * `store` — durability costs: per-commit WAL append latency against
//!   a real segmented store (default batched-fsync cadence) and the
//!   full-vs-delta snapshot cost through a durable runtime;
//! * `wire` — the `ec serve` TCP path: the same tenant graph served by
//!   a `WireServer` on an ephemeral port and loaded by real
//!   `WireClient` producers (framing, CRC, striped ingest), at 1 and 4
//!   tenants, with the 4-tenant run's merged end-to-end latency
//!   percentiles;
//! * `obs` — the observability overhead A/B: the 4-thread workload
//!   with the flight recorder + `/metrics` endpoint + default causal
//!   trace sampling on vs fully off, runs interleaved, with the
//!   instrumented run's snapshot and its merged end-to-end latency
//!   percentiles (`e2e_us`: p50/p95/p99 in microseconds). CI gates
//!   `overhead_pct` at 5.
//!
//! ```text
//! cargo run --release -p ec-bench --bin record [-- OUTPUT_PATH [EVENTS]]
//! ```
//!
//! The output file is a JSON array of entries (oldest first). A legacy
//! single-object file from earlier revisions is migrated in place by
//! wrapping it as the first entry. Defaults: `BENCH_runtime.json` in
//! the current directory, 20_000 events per timed run. Each
//! configuration runs one warmup pass and three timed passes; the
//! median is reported.

use ec_bench::{
    drive_runtime, drive_runtime_parallel, drive_sessions, drive_wire, ingest_workload,
    runtime_workload, runtime_workload_observed, session_workload, wire_workload, INGEST_EPOCH,
    RUNTIME_EPOCH, WIRE_BATCH,
};
use std::io::Write;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 4, 8];
/// Thread count of the observability overhead A/B (and of the embedded
/// metrics sample) — the middle of [`THREADS`].
const OBS_THREADS: usize = 4;
const SESSION_THREADS: [usize; 2] = [4, 8];
const INGEST_PRODUCERS: [usize; 4] = [1, 2, 4, 8];
const INGEST_THREADS: usize = 4;
const SESSION_TENANTS: usize = 8;
const WIRE_TENANTS: [usize; 2] = [1, 4];
const WIRE_THREADS: usize = 4;
const DEFAULT_EVENTS: u64 = 20_000;
const TIMED_RUNS: usize = 3;
/// Paired rounds of the observability A/B. More than [`TIMED_RUNS`]
/// because the A/B gates CI at a ±5% threshold, well inside the
/// round-to-round drift of a shared container — medians over nine
/// interleaved pairs keep the comparison honest.
const OBS_AB_RUNS: usize = 9;

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// One timed pass of the workload built by `build`: events/second plus
/// the run's full metrics snapshot.
fn time_once<F>(build: &F, events: u64) -> (f64, ec_core::MetricsSnapshot)
where
    F: Fn() -> ec_runtime::StreamRuntime,
{
    let rt = build();
    let start = Instant::now();
    drive_runtime(&rt, events);
    let elapsed = start.elapsed().as_secs_f64();
    let m = rt.metrics();
    if std::env::var_os("EC_BENCH_VERBOSE").is_some() {
        eprintln!(
            "  execs={} enq={} steals={} parks={} wakes={} \
             lock_wait={}us crit={}us exec={}us depth~{:.1}",
            m.executions,
            m.enqueued,
            m.scheduler.steals,
            m.scheduler.parks,
            m.scheduler.wakes,
            m.lock_wait_nanos / 1_000,
            m.critical_nanos / 1_000,
            m.exec_nanos / 1_000,
            m.mean_concurrent_phases(),
        );
    }
    rt.shutdown().expect("clean shutdown");
    (events as f64 / elapsed, m)
}

/// Measures the single-runtime workload built by `build`: one warmup
/// pass, [`TIMED_RUNS`] timed passes, median rate. Also returns the
/// final run's full metrics snapshot (counters + latency percentiles),
/// which main() embeds in the trajectory entry.
fn measure_built<F>(build: F, events: u64) -> (f64, ec_core::MetricsSnapshot)
where
    F: Fn() -> ec_runtime::StreamRuntime,
{
    // Warmup: one full pass, untimed (thread spawn, allocator, caches).
    {
        let rt = build();
        drive_runtime(&rt, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let mut sample = ec_core::MetricsSnapshot::default();
    let rates = (0..TIMED_RUNS)
        .map(|_| {
            let (rate, m) = time_once(&build, events);
            sample = m;
            rate
        })
        .collect();
    (median(rates), sample)
}

fn measure(threads: usize, events: u64) -> (f64, ec_core::MetricsSnapshot) {
    measure_built(|| runtime_workload(threads), events)
}

/// The observability overhead A/B: the same workload with and without
/// the flight recorder + `/metrics` endpoint, runs *interleaved*
/// (base, obs, base, obs, …) so container drift between arms reads as
/// noise, not overhead. Returns `(base median, obs median, obs
/// sample)`.
fn measure_obs_ab(events: u64) -> (f64, f64, ec_core::MetricsSnapshot) {
    let base = || runtime_workload(OBS_THREADS);
    let observed = || runtime_workload_observed(OBS_THREADS);
    let warmups: [&dyn Fn() -> ec_runtime::StreamRuntime; 2] = [&base, &observed];
    for build in warmups {
        let rt = build();
        drive_runtime(&rt, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let mut base_rates = Vec::new();
    let mut obs_rates = Vec::new();
    let mut obs_sample = ec_core::MetricsSnapshot::default();
    for _ in 0..OBS_AB_RUNS {
        base_rates.push(time_once(&base, events).0);
        let (rate, m) = time_once(&observed, events);
        obs_rates.push(rate);
        obs_sample = m;
    }
    (median(base_rates), median(obs_rates), obs_sample)
}

fn measure_ingest(producers: usize, events: u64) -> f64 {
    {
        let rt = ingest_workload(INGEST_THREADS, producers);
        drive_runtime_parallel(&rt, producers, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let verbose = std::env::var_os("EC_BENCH_VERBOSE").is_some();
    median(
        (0..TIMED_RUNS)
            .map(|_| {
                let rt = ingest_workload(INGEST_THREADS, producers);
                let start = Instant::now();
                drive_runtime_parallel(&rt, producers, events);
                let elapsed = start.elapsed().as_secs_f64();
                if verbose {
                    let m = rt.metrics();
                    eprintln!(
                        "  waits={} seals={} mean_batch={:.1} lock_wait={}us crit={}us \
                         exec={}us parks={} wakes={} phases={}",
                        m.ingest.waits,
                        m.ingest.seal_batches,
                        m.mean_seal_batch(),
                        m.lock_wait_nanos / 1_000,
                        m.critical_nanos / 1_000,
                        m.exec_nanos / 1_000,
                        m.scheduler.parks,
                        m.scheduler.wakes,
                        m.phases_started,
                    );
                }
                rt.shutdown().expect("clean shutdown");
                events as f64 / elapsed
            })
            .collect(),
    )
}

fn measure_sessions(threads: usize, tenants: usize, events: u64) -> f64 {
    {
        let (_pool, sessions) = session_workload(threads, tenants);
        drive_sessions(&sessions, events.min(2_000));
        for s in sessions {
            s.close().expect("clean shutdown");
        }
    }
    median(
        (0..TIMED_RUNS)
            .map(|_| {
                let (_pool, sessions) = session_workload(threads, tenants);
                let start = Instant::now();
                drive_sessions(&sessions, events);
                let elapsed = start.elapsed().as_secs_f64();
                for s in sessions {
                    s.close().expect("clean shutdown");
                }
                events as f64 / elapsed
            })
            .collect(),
    )
}

/// The wire-serving path over real TCP: per-pass server + producer
/// connections, rate measured over the events the server acked. Also
/// returns the final pass's tenant-0 metrics snapshot, whose merged
/// end-to-end percentiles cover the socket→retire path.
fn measure_wire(tenants: usize, events: u64) -> (f64, ec_core::MetricsSnapshot) {
    {
        let server = wire_workload(WIRE_THREADS, tenants);
        drive_wire(&server, events.min(2_000));
        for (name, report) in server.shutdown() {
            report.unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
    let mut sample = ec_core::MetricsSnapshot::default();
    let rates = (0..TIMED_RUNS)
        .map(|_| {
            let server = wire_workload(WIRE_THREADS, tenants);
            let start = Instant::now();
            let acked = drive_wire(&server, events);
            let elapsed = start.elapsed().as_secs_f64();
            sample = server.tenant("tenant-0").expect("tenant exists").metrics();
            for (name, report) in server.shutdown() {
                report.unwrap_or_else(|e| panic!("{name}: {e}"));
            }
            acked as f64 / elapsed
        })
        .collect();
    (median(rates), sample)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Durability costs for the trajectory entry: per-commit WAL append
/// latency against a raw segmented store, then full-vs-delta snapshot
/// latency through a durable runtime (`snapshot_full_every(4)` makes
/// checkpoints 0, 4, 8 full and the rest deltas).
fn measure_store(events: u64) -> String {
    use ec_events::Value;

    let root = std::env::temp_dir().join(format!("ec-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // WAL append cost: n single-row group commits, timed one by one,
    // fsync at the writer's default batched cadence — the shape the
    // runtime's seal path produces.
    let mut wal =
        ec_store::WalWriter::create(&root.join("wal"), &["s".to_string()]).expect("create store");
    let n = events.min(5_000) as usize;
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        wal.stage_row(&[Some(Value::Float(i as f64))]);
        let t = Instant::now();
        wal.commit().expect("wal commit");
        lat.push(t.elapsed().as_nanos() as u64);
    }
    drop(wal);
    lat.sort_unstable();

    // Snapshot cost: push a batch, flush, checkpoint, 12 rounds.
    const FULL_EVERY: u64 = 4;
    let mut b = ec_runtime::StreamRuntime::builder();
    let s = b.live_source("s");
    b.add(
        "sum",
        ec_fusion::operators::aggregate::Aggregate::sum(),
        &[s],
    );
    let rt = b
        .durable(root.join("snap"))
        .snapshot_full_every(FULL_EVERY as u32)
        .build()
        .expect("durable runtime");
    let h = rt.handle(s).expect("live handle");
    let mut full_lat = Vec::new();
    let mut delta_lat = Vec::new();
    for k in 0..12u64 {
        for _ in 0..32 {
            h.push(1.0).expect("push");
        }
        rt.flush().expect("flush");
        let t = Instant::now();
        rt.checkpoint().expect("checkpoint");
        let us = t.elapsed().as_nanos() as u64 / 1_000;
        if k % FULL_EVERY == 0 {
            full_lat.push(us);
        } else {
            delta_lat.push(us);
        }
    }
    rt.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);

    let full_us = median(full_lat.iter().map(|&v| v as f64).collect());
    let delta_us = median(delta_lat.iter().map(|&v| v as f64).collect());
    eprintln!(
        "store: wal commit p50={}ns p99={}ns; snapshot full={full_us:.0}us delta={delta_us:.0}us",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
    );
    format!(
        "{{\"wal_commit_ns\": {{\"count\": {n}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
         \"snapshot_us\": {{\"full_every\": {FULL_EVERY}, \"full\": {full_us:.1}, \
         \"delta\": {delta_us:.1}}}}}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
    )
}

/// Appends `entry` to the JSON-array trajectory at `path`, migrating a
/// legacy single-object file by wrapping it as the first element.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let body = if existing.is_empty() {
        format!("[\n{entry}\n]\n")
    } else if existing.ends_with(']') {
        // Already a trajectory array: splice the new entry in before
        // the closing bracket.
        let inner = existing[..existing.len() - 1].trim_end();
        if inner.ends_with('[') {
            format!("{inner}\n{entry}\n]\n") // degenerate empty array
        } else {
            format!("{inner},\n{entry}\n]\n")
        }
    } else {
        // Legacy single-object file: wrap it as the first entry.
        let indented: String = existing
            .lines()
            .map(|l| format!("  {l}\n"))
            .collect::<String>();
        format!("[\n{},\n{entry}\n]\n", indented.trim_end())
    };
    // Write-then-rename: an interrupt mid-write must not destroy the
    // accumulated trajectory the file exists to preserve.
    let tmp = format!("{path}.tmp-{}", std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_runtime.json".into());
    let events: u64 = args
        .next()
        .map(|s| s.parse().expect("EVENTS must be an integer"))
        .unwrap_or(DEFAULT_EVENTS);

    let mut results = Vec::new();
    let mut metrics_sample = ec_core::MetricsSnapshot::default();
    for &threads in &THREADS {
        let (rate, sample) = measure(threads, events);
        eprintln!("threads={threads}: {rate:.0} events/s");
        results.push(format!(
            "      {{\"threads\": {threads}, \"events_per_sec\": {rate:.1}}}"
        ));
        if threads == OBS_THREADS {
            metrics_sample = sample;
        }
    }
    // The observability A/B: same workload, same thread count, with the
    // flight recorder and a live /metrics endpoint switched on. CI
    // gates overhead_pct at 5.
    let (base_rate, obs_rate, obs_sample) = measure_obs_ab(events);
    let e2e = obs_sample.latency.e2e_merged();
    let overhead_pct = if obs_rate > 0.0 && base_rate.is_finite() {
        (base_rate / obs_rate - 1.0) * 100.0
    } else {
        0.0
    };
    eprintln!(
        "obs A/B: threads={OBS_THREADS} instrumented={obs_rate:.0} \
         uninstrumented={base_rate:.0} events/s overhead={overhead_pct:.2}%"
    );
    let mut ingest = Vec::new();
    for &producers in &INGEST_PRODUCERS {
        let rate = measure_ingest(producers, events);
        eprintln!("ingest: producers={producers} threads={INGEST_THREADS}: {rate:.0} events/s");
        ingest.push(format!(
            "      {{\"producers\": {producers}, \"threads\": {INGEST_THREADS}, \
             \"events_per_sec\": {rate:.1}}}"
        ));
    }
    let store = measure_store(events);
    let mut wire = Vec::new();
    let mut wire_sample = ec_core::MetricsSnapshot::default();
    for &tenants in &WIRE_TENANTS {
        let (rate, sample) = measure_wire(tenants, events);
        eprintln!("wire: tenants={tenants} threads={WIRE_THREADS}: {rate:.0} events/s over TCP");
        wire.push(format!(
            "      {{\"tenants\": {tenants}, \"threads\": {WIRE_THREADS}, \
             \"events_per_sec\": {rate:.1}}}"
        ));
        wire_sample = sample;
    }
    let wire_e2e = wire_sample.latency.e2e_merged();
    let mut sessions = Vec::new();
    for &threads in &SESSION_THREADS {
        let rate = measure_sessions(threads, SESSION_TENANTS, events);
        eprintln!(
            "sessions: threads={threads} tenants={SESSION_TENANTS}: {rate:.0} events/s aggregate"
        );
        sessions.push(format!(
            "      {{\"threads\": {threads}, \"tenants\": {SESSION_TENANTS}, \
             \"events_per_sec\": {rate:.1}}}"
        ));
    }

    let entry = format!(
        "  {{\n    \"bench\": \"runtime_throughput\",\n    \"events\": {events},\n    \
         \"epoch\": {RUNTIME_EPOCH},\n    \"ingest_epoch\": {INGEST_EPOCH},\n    \
         \"timed_runs\": {TIMED_RUNS},\n    \
         \"results\": [\n{}\n    ],\n    \"ingest\": [\n{}\n    ],\n    \
         \"sessions\": [\n{}\n    ],\n    \
         \"wire\": {{\"batch\": {WIRE_BATCH}, \"results\": [\n{}\n    ], \
         \"e2e_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}}},\n    \
         \"store\": {store},\n    \
         \"metrics\": {},\n    \
         \"obs\": {{\"threads\": {OBS_THREADS}, \"ab_runs\": {OBS_AB_RUNS}, \
         \"instrumented_events_per_sec\": {obs_rate:.1}, \
         \"uninstrumented_events_per_sec\": {base_rate:.1}, \
         \"overhead_pct\": {overhead_pct:.2}, \
         \"e2e_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}, \
         \"metrics\": {}}}\n  }}",
        results.join(",\n"),
        ingest.join(",\n"),
        sessions.join(",\n"),
        wire.join(",\n"),
        wire_e2e.count(),
        wire_e2e.p50() / 1_000,
        wire_e2e.p95() / 1_000,
        wire_e2e.p99() / 1_000,
        metrics_sample.to_json(),
        e2e.count(),
        e2e.p50() / 1_000,
        e2e.p95() / 1_000,
        e2e.p99() / 1_000,
        obs_sample.to_json()
    );
    append_entry(&out_path, &entry).expect("write output");
    eprintln!("appended to {out_path}");
}
