//! Appends to `BENCH_runtime.json`: a machine-readable throughput
//! *trajectory* for the streaming runtime, so successive PRs accumulate
//! comparable data points instead of overwriting each other.
//!
//! Each invocation measures two workloads and appends one entry:
//!
//! * `results` — the single-runtime workload of the
//!   `runtime_throughput` Criterion bench (two live sources, shared
//!   aggregation spine, history off) at 1, 4 and 8 worker threads;
//! * `sessions` — the multi-tenant workload: 8 copies of the same
//!   graph as tenant sessions on one shared `SessionPool`, at 4 and 8
//!   workers, reporting aggregate events/second.
//!
//! ```text
//! cargo run --release -p ec-bench --bin record [-- OUTPUT_PATH [EVENTS]]
//! ```
//!
//! The output file is a JSON array of entries (oldest first). A legacy
//! single-object file from earlier revisions is migrated in place by
//! wrapping it as the first entry. Defaults: `BENCH_runtime.json` in
//! the current directory, 20_000 events per timed run. Each
//! configuration runs one warmup pass and three timed passes; the
//! median is reported.

use ec_bench::{
    drive_runtime, drive_runtime_parallel, drive_sessions, ingest_workload, runtime_workload,
    session_workload, INGEST_EPOCH, RUNTIME_EPOCH,
};
use std::io::Write;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 4, 8];
const SESSION_THREADS: [usize; 2] = [4, 8];
const INGEST_PRODUCERS: [usize; 4] = [1, 2, 4, 8];
const INGEST_THREADS: usize = 4;
const SESSION_TENANTS: usize = 8;
const DEFAULT_EVENTS: u64 = 20_000;
const TIMED_RUNS: usize = 3;

fn median(mut rates: Vec<f64>) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn measure(threads: usize, events: u64) -> f64 {
    // Warmup: one full pass, untimed (thread spawn, allocator, caches).
    {
        let rt = runtime_workload(threads);
        drive_runtime(&rt, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let verbose = std::env::var_os("EC_BENCH_VERBOSE").is_some();
    median(
        (0..TIMED_RUNS)
            .map(|_| {
                let rt = runtime_workload(threads);
                let start = Instant::now();
                drive_runtime(&rt, events);
                let elapsed = start.elapsed().as_secs_f64();
                if verbose {
                    let m = rt.metrics();
                    eprintln!(
                        "  execs={} enq={} steals={} parks={} wakes={} \
                         lock_wait={}us crit={}us exec={}us depth~{:.1}",
                        m.executions,
                        m.enqueued,
                        m.steals,
                        m.parks,
                        m.wakes,
                        m.lock_wait_nanos / 1_000,
                        m.critical_nanos / 1_000,
                        m.exec_nanos / 1_000,
                        m.mean_concurrent_phases(),
                    );
                }
                rt.shutdown().expect("clean shutdown");
                events as f64 / elapsed
            })
            .collect(),
    )
}

fn measure_ingest(producers: usize, events: u64) -> f64 {
    {
        let rt = ingest_workload(INGEST_THREADS, producers);
        drive_runtime_parallel(&rt, producers, events.min(2_000));
        rt.shutdown().expect("clean shutdown");
    }
    let verbose = std::env::var_os("EC_BENCH_VERBOSE").is_some();
    median(
        (0..TIMED_RUNS)
            .map(|_| {
                let rt = ingest_workload(INGEST_THREADS, producers);
                let start = Instant::now();
                drive_runtime_parallel(&rt, producers, events);
                let elapsed = start.elapsed().as_secs_f64();
                if verbose {
                    let m = rt.metrics();
                    eprintln!(
                        "  waits={} seals={} mean_batch={:.1} lock_wait={}us crit={}us \
                         exec={}us parks={} wakes={} phases={}",
                        m.ingest_waits,
                        m.seal_batches,
                        m.mean_seal_batch(),
                        m.lock_wait_nanos / 1_000,
                        m.critical_nanos / 1_000,
                        m.exec_nanos / 1_000,
                        m.parks,
                        m.wakes,
                        m.phases_started,
                    );
                }
                rt.shutdown().expect("clean shutdown");
                events as f64 / elapsed
            })
            .collect(),
    )
}

fn measure_sessions(threads: usize, tenants: usize, events: u64) -> f64 {
    {
        let (_pool, sessions) = session_workload(threads, tenants);
        drive_sessions(&sessions, events.min(2_000));
        for s in sessions {
            s.close().expect("clean shutdown");
        }
    }
    median(
        (0..TIMED_RUNS)
            .map(|_| {
                let (_pool, sessions) = session_workload(threads, tenants);
                let start = Instant::now();
                drive_sessions(&sessions, events);
                let elapsed = start.elapsed().as_secs_f64();
                for s in sessions {
                    s.close().expect("clean shutdown");
                }
                events as f64 / elapsed
            })
            .collect(),
    )
}

/// Appends `entry` to the JSON-array trajectory at `path`, migrating a
/// legacy single-object file by wrapping it as the first element.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let body = if existing.is_empty() {
        format!("[\n{entry}\n]\n")
    } else if existing.ends_with(']') {
        // Already a trajectory array: splice the new entry in before
        // the closing bracket.
        let inner = existing[..existing.len() - 1].trim_end();
        if inner.ends_with('[') {
            format!("{inner}\n{entry}\n]\n") // degenerate empty array
        } else {
            format!("{inner},\n{entry}\n]\n")
        }
    } else {
        // Legacy single-object file: wrap it as the first entry.
        let indented: String = existing
            .lines()
            .map(|l| format!("  {l}\n"))
            .collect::<String>();
        format!("[\n{},\n{entry}\n]\n", indented.trim_end())
    };
    // Write-then-rename: an interrupt mid-write must not destroy the
    // accumulated trajectory the file exists to preserve.
    let tmp = format!("{path}.tmp-{}", std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_runtime.json".into());
    let events: u64 = args
        .next()
        .map(|s| s.parse().expect("EVENTS must be an integer"))
        .unwrap_or(DEFAULT_EVENTS);

    let mut results = Vec::new();
    for &threads in &THREADS {
        let rate = measure(threads, events);
        eprintln!("threads={threads}: {rate:.0} events/s");
        results.push(format!(
            "      {{\"threads\": {threads}, \"events_per_sec\": {rate:.1}}}"
        ));
    }
    let mut ingest = Vec::new();
    for &producers in &INGEST_PRODUCERS {
        let rate = measure_ingest(producers, events);
        eprintln!("ingest: producers={producers} threads={INGEST_THREADS}: {rate:.0} events/s");
        ingest.push(format!(
            "      {{\"producers\": {producers}, \"threads\": {INGEST_THREADS}, \
             \"events_per_sec\": {rate:.1}}}"
        ));
    }
    let mut sessions = Vec::new();
    for &threads in &SESSION_THREADS {
        let rate = measure_sessions(threads, SESSION_TENANTS, events);
        eprintln!(
            "sessions: threads={threads} tenants={SESSION_TENANTS}: {rate:.0} events/s aggregate"
        );
        sessions.push(format!(
            "      {{\"threads\": {threads}, \"tenants\": {SESSION_TENANTS}, \
             \"events_per_sec\": {rate:.1}}}"
        ));
    }

    let entry = format!(
        "  {{\n    \"bench\": \"runtime_throughput\",\n    \"events\": {events},\n    \
         \"epoch\": {RUNTIME_EPOCH},\n    \"ingest_epoch\": {INGEST_EPOCH},\n    \
         \"timed_runs\": {TIMED_RUNS},\n    \
         \"results\": [\n{}\n    ],\n    \"ingest\": [\n{}\n    ],\n    \
         \"sessions\": [\n{}\n    ]\n  }}",
        results.join(",\n"),
        ingest.join(",\n"),
        sessions.join(",\n")
    );
    append_entry(&out_path, &entry).expect("write output");
    eprintln!("appended to {out_path}");
}
