//! # ec-bench — shared workload builders for the benchmark harness
//!
//! Each Criterion bench regenerates one figure/table of the paper (see
//! DESIGN.md §4 and EXPERIMENTS.md). This library holds the workload
//! constructors they share so every experiment runs the same graphs and
//! module mixes.

use ec_core::{
    BarrierParallel, Engine, MetricsSnapshot, Module, PassThrough, Sequential, SourceModule,
    Workload,
};
use ec_events::sources::{Counter, RandomWalk, Sparse};
use ec_fusion::operators::aggregate::Aggregate;
use ec_graph::Dag;

/// Modules for a graph where every vertex does `spin` iterations of
/// synthetic work: sources count, interior vertices forward.
pub fn relay_modules(dag: &Dag, spin: u64) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(Workload::new(SourceModule::new(Counter::new()), spin))
            } else {
                Box::new(Workload::new(PassThrough, spin))
            }
        })
        .collect()
}

/// Modules for fusion workloads: sources are random walks, interior
/// vertices aggregate, all with `spin` synthetic work.
pub fn fusion_modules(dag: &Dag, spin: u64) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(Workload::new(
                    SourceModule::new(RandomWalk::new(10.0, 1.0, v.0 as u64)),
                    spin,
                ))
            } else {
                Box::new(Workload::new(Aggregate::sum(), spin))
            }
        })
        .collect()
}

/// Modules where sources emit with probability `p` per phase — the
/// sparse-anomaly workload of experiment E5.
pub fn sparse_modules(dag: &Dag, p: f64, spin: u64) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(Workload::new(
                    SourceModule::new(Sparse::counter(p, v.0 as u64 + 1)),
                    spin,
                ))
            } else {
                Box::new(Workload::new(PassThrough, spin))
            }
        })
        .collect()
}

/// Runs the parallel engine over `phases` phases and returns metrics.
pub fn run_engine(
    dag: &Dag,
    modules: Vec<Box<dyn Module>>,
    threads: usize,
    phases: u64,
) -> MetricsSnapshot {
    let mut engine = Engine::builder(dag.clone(), modules)
        .threads(threads)
        .max_inflight(32)
        .record_history(false)
        .build()
        .expect("engine builds");
    engine.run(phases).expect("run succeeds").metrics
}

/// Runs the sequential baseline.
pub fn run_sequential(dag: &Dag, modules: Vec<Box<dyn Module>>, phases: u64) -> (u64, u64) {
    let mut seq = Sequential::new(dag, modules).expect("sequential builds");
    seq.run(phases).expect("run succeeds");
    (seq.executions, seq.messages_sent)
}

/// Runs the phase-barrier baseline.
pub fn run_barrier(
    dag: &Dag,
    modules: Vec<Box<dyn Module>>,
    threads: usize,
    phases: u64,
) -> (u64, u64) {
    let mut bar = BarrierParallel::new(dag, modules, threads).expect("barrier builds");
    bar.run(phases).expect("run succeeds");
    (bar.executions, bar.messages_sent)
}

/// Events per sealed epoch in the streaming-runtime workload (per
/// source, alternating pushes).
pub const RUNTIME_EPOCH: usize = 16;

/// The streaming-runtime throughput workload: two live sources feeding
/// a shared aggregation spine, history recording off — the graph the
/// `runtime_throughput` bench and the `record` baseline writer share.
pub fn runtime_workload(threads: usize) -> ec_runtime::StreamRuntime {
    runtime_workload_inner(threads, false)
}

/// [`runtime_workload`] with the full observability plane switched on:
/// a flight recorder (4096-event rings), an ephemeral `/metrics`
/// endpoint, and causal trace sampling at the default 1-in-64 rate.
/// The instrumented arm of the overhead A/B that the `record` baseline
/// writer measures and CI gates at ≤5%.
pub fn runtime_workload_observed(threads: usize) -> ec_runtime::StreamRuntime {
    runtime_workload_inner(threads, true)
}

fn runtime_workload_inner(threads: usize, observed: bool) -> ec_runtime::StreamRuntime {
    use ec_fusion::operators::moving::MovingAverage;
    use ec_fusion::operators::threshold::Threshold;
    let mut b = ec_runtime::StreamRuntime::builder()
        .threads(threads)
        .epoch_policy(ec_runtime::EpochPolicy::ByCount(RUNTIME_EPOCH))
        .record_history(false)
        .record_script(false)
        .max_inflight(64);
    if observed {
        // Default trace sampling (1 in 64) stays on: the A/B overhead
        // gate covers the causal-tracing path, not just the recorder.
        b = b.flight_recorder(4096).metrics_addr("127.0.0.1:0");
    } else {
        b = b.trace_sampling(0);
    }
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(8), &[sum]);
    let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
    b.build().expect("runtime builds")
}

/// Pushes `events` events through the workload (alternating sources)
/// and waits until every sealed phase has completed.
pub fn drive_runtime(rt: &ec_runtime::StreamRuntime, events: u64) {
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    for i in 0..events {
        let handle = if i % 2 == 0 { &s1 } else { &s2 };
        handle.push((i % 1000) as f64).expect("push accepted");
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("completes");
}

/// Events buffered per producer before the epoch seals in the
/// multi-producer ingest workload.
pub const INGEST_EPOCH: usize = 8;

/// The multi-producer ingest workload: `producers` live sources feeding
/// one aggregation spine, one source per producer thread — the front-end
/// contention case. Epochs seal every [`INGEST_EPOCH`] events per
/// producer, so phase granularity stays constant as producers scale.
pub fn ingest_workload(threads: usize, producers: usize) -> ec_runtime::StreamRuntime {
    use ec_fusion::operators::moving::MovingAverage;
    use ec_fusion::operators::threshold::Threshold;
    let mut b = ec_runtime::StreamRuntime::builder()
        .threads(threads)
        .epoch_policy(ec_runtime::EpochPolicy::ByCount(INGEST_EPOCH * producers))
        .record_history(false)
        .record_script(false)
        .max_inflight(64);
    let sources: Vec<_> = (0..producers)
        .map(|p| b.live_source(format!("p{p}")))
        .collect();
    let sum = b.add("sum", Aggregate::sum(), &sources);
    let avg = b.add("avg", MovingAverage::new(8), &[sum]);
    let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
    b.build().expect("runtime builds")
}

/// Drives [`ingest_workload`] with one thread per producer, each
/// pushing `events / producers` events into its own source, then seals
/// the remainder and waits for every phase to complete.
pub fn drive_runtime_parallel(rt: &ec_runtime::StreamRuntime, producers: usize, events: u64) {
    let per_producer = events / producers as u64;
    std::thread::scope(|scope| {
        for p in 0..producers {
            let handle = rt.handle_by_name(&format!("p{p}")).unwrap();
            scope.spawn(move || {
                for i in 0..per_producer {
                    handle.push((i % 1000) as f64).expect("push accepted");
                }
            });
        }
    });
    rt.flush().expect("flush");
    rt.wait_idle().expect("completes");
}

/// The multi-tenant workload: `tenants` copies of the
/// [`runtime_workload`] graph opened as sessions on one shared
/// [`SessionPool`](ec_runtime::SessionPool) with `threads` workers.
pub fn session_workload(
    threads: usize,
    tenants: usize,
) -> (ec_runtime::SessionPool, Vec<ec_runtime::Session>) {
    use ec_fusion::operators::moving::MovingAverage;
    use ec_fusion::operators::threshold::Threshold;
    let pool = ec_runtime::SessionPool::builder()
        .threads(threads)
        .max_sessions(tenants)
        .build();
    let sessions = (0..tenants)
        .map(|t| {
            let mut b = ec_runtime::StreamRuntime::builder()
                .epoch_policy(ec_runtime::EpochPolicy::ByCount(RUNTIME_EPOCH))
                .record_history(false)
                .record_script(false)
                .max_inflight(64);
            let s1 = b.live_source("s1");
            let s2 = b.live_source("s2");
            let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
            let avg = b.add("avg", MovingAverage::new(8), &[sum]);
            let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
            pool.open(format!("tenant-{t}"), b).expect("session opens")
        })
        .collect();
    (pool, sessions)
}

/// Pushes `events` events round-robin across the sessions (alternating
/// sources within each) and waits until every tenant is idle.
pub fn drive_sessions(sessions: &[ec_runtime::Session], events: u64) {
    let handles: Vec<_> = sessions
        .iter()
        .flat_map(|s| {
            [
                s.handle_by_name("s1").unwrap(),
                s.handle_by_name("s2").unwrap(),
            ]
        })
        .collect();
    for i in 0..events {
        handles[(i % handles.len() as u64) as usize]
            .push((i % 1000) as f64)
            .expect("push accepted");
    }
    for s in sessions {
        s.flush().expect("flush");
        s.wait_idle().expect("completes");
    }
}

/// Events per `PushBatch` frame in the wire loadgen — the wire-level
/// batching that amortizes the per-frame round trip.
pub const WIRE_BATCH: usize = 64;

/// The wire-serving workload: `tenants` copies of the
/// [`runtime_workload`] graph opened on one shared pool and exposed
/// over TCP by a [`WireServer`](ec_runtime::WireServer) on an
/// ephemeral port — the full `ec serve` path (framing, CRC, striped
/// ingest, epoch seals) that [`drive_wire`] loads from real sockets.
pub fn wire_workload(threads: usize, tenants: usize) -> ec_runtime::WireServer {
    use ec_fusion::operators::moving::MovingAverage;
    use ec_fusion::operators::threshold::Threshold;
    let pool = ec_runtime::SessionPool::builder()
        .threads(threads)
        .max_sessions(tenants)
        .build();
    let sessions = (0..tenants)
        .map(|t| {
            let mut b = ec_runtime::StreamRuntime::builder()
                .epoch_policy(ec_runtime::EpochPolicy::ByCount(RUNTIME_EPOCH))
                .record_history(false)
                .record_script(false)
                .max_inflight(64);
            let s1 = b.live_source("s1");
            let s2 = b.live_source("s2");
            let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
            let avg = b.add("avg", MovingAverage::new(8), &[sum]);
            let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
            pool.open(format!("tenant-{t}"), b).expect("session opens")
        })
        .collect();
    ec_runtime::WireServer::builder()
        .bind("127.0.0.1:0", pool, sessions)
        .expect("wire server binds")
}

/// Drives a [`wire_workload`] server over real TCP: one producer
/// connection per tenant, `events` split evenly, pushed as
/// [`WIRE_BATCH`]-event frames alternating between the two sources,
/// with a final seal per tenant. Blocks until every tenant has
/// retired all committed phases; returns the total events the server
/// acked.
pub fn drive_wire(server: &ec_runtime::WireServer, events: u64) -> u64 {
    use ec_runtime::serve::Role;
    use std::sync::atomic::{AtomicU64, Ordering};
    let addr = server.local_addr().to_string();
    let names = server.tenant_names();
    let per_tenant = events / names.len() as u64;
    let acked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for name in &names {
            let (addr, acked) = (&addr, &acked);
            scope.spawn(move || {
                let mut client =
                    ec_runtime::WireClient::connect(addr.as_str(), "", name, Role::Producer)
                        .expect("producer connects");
                let s1 = client.source_index("s1").unwrap();
                let s2 = client.source_index("s2").unwrap();
                let mut batch = Vec::with_capacity(WIRE_BATCH);
                let mut sent = 0u64;
                let mut source = s1;
                while sent < per_tenant {
                    batch.clear();
                    while batch.len() < WIRE_BATCH && sent < per_tenant {
                        batch.push(ec_events::Value::Float((sent % 1000) as f64));
                        sent += 1;
                    }
                    let got = client.push_batch(source, &batch).expect("batch acked");
                    acked.fetch_add(got as u64, Ordering::Relaxed);
                    source = if source == s1 { s2 } else { s1 };
                }
                client.seal().expect("final seal");
            });
        }
    });
    for name in &names {
        server
            .tenant(name)
            .expect("tenant exists")
            .wait_idle()
            .expect("tenant drains");
    }
    acked.load(std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph::generators;

    #[test]
    fn workload_builders_run() {
        let dag = generators::layered(3, 2, 2, 1);
        let m = run_engine(&dag, relay_modules(&dag, 0), 2, 5);
        assert_eq!(m.phases_completed, 5);
        let m = run_engine(&dag, fusion_modules(&dag, 0), 2, 5);
        assert_eq!(m.phases_completed, 5);
        let m = run_engine(&dag, sparse_modules(&dag, 0.5, 0), 2, 20);
        assert_eq!(m.phases_completed, 20);
    }

    #[test]
    fn ingest_workload_runs() {
        let rt = ingest_workload(2, 4);
        drive_runtime_parallel(&rt, 4, 400);
        assert_eq!(rt.events_committed(), 400);
        let m = rt.metrics();
        assert_eq!(m.ingest.depths.len(), 4);
        assert_eq!(m.ingest.depths.iter().sum::<u64>(), 0, "all drained");
        assert!(m.ingest.seal_batches > 0);
        assert_eq!(m.ingest.seal_events, 400);
        assert!(m.mean_seal_batch() > 0.0);
        rt.shutdown().unwrap();
    }

    #[test]
    fn session_workload_runs() {
        let (pool, sessions) = session_workload(2, 3);
        drive_sessions(&sessions, 300);
        let rows = pool.metrics();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.events_committed == 100));
        for s in sessions {
            s.close().unwrap();
        }
    }

    #[test]
    fn wire_workload_runs() {
        let server = wire_workload(2, 2);
        let acked = drive_wire(&server, 400);
        assert_eq!(acked, 400);
        let stats = server.stats();
        assert_eq!(stats.events_in, 400);
        assert_eq!(stats.connections_total, 2);
        for (name, report) in server.shutdown() {
            report.unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn baselines_run() {
        let dag = generators::chain(4);
        let (ex, msgs) = run_sequential(&dag, relay_modules(&dag, 0), 10);
        assert_eq!(ex, 40);
        assert_eq!(msgs, 30);
        let (ex, msgs) = run_barrier(&dag, relay_modules(&dag, 0), 2, 10);
        assert_eq!(ex, 40);
        assert_eq!(msgs, 30);
    }
}
