//! E7 (ablation): bookkeeping overhead vs per-vertex compute.
//!
//! §4 predicts near-linear speedup "as long as the computations
//! performed by the vertices take significantly more time than the
//! computations performed to maintain the data structures". Sweeping
//! per-vertex compute from zero upward at a fixed thread count shows
//! where the crossover lies; the printed bookkeeping ratio (lock wait +
//! critical section time over module compute time) quantifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_bench::{relay_modules, run_engine};
use ec_graph::generators;

const PHASES: u64 = 60;
const THREADS: usize = 4;

fn bench_overhead(c: &mut Criterion) {
    let dag = generators::layered(4, 4, 2, 11);

    // Print the bookkeeping ratio per spin level, once.
    for &spin in &[0u64, 1_000, 10_000, 100_000] {
        let m = run_engine(&dag, relay_modules(&dag, spin), THREADS, PHASES);
        println!(
            "spin {spin:>6}: bookkeeping/compute ratio {:.3} \
             (lock wait {} µs, critical {} µs, exec {} µs)",
            m.bookkeeping_ratio(),
            m.lock_wait_nanos / 1_000,
            m.critical_nanos / 1_000,
            m.exec_nanos / 1_000,
        );
    }

    let mut group = c.benchmark_group("ablation-overhead");
    group.sample_size(10);
    for &spin in &[0u64, 1_000, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("threads4", spin), &spin, |b, &spin| {
            b.iter(|| run_engine(&dag, relay_modules(&dag, spin), THREADS, PHASES))
        });
        group.bench_with_input(BenchmarkId::new("threads1", spin), &spin, |b, &spin| {
            b.iter(|| run_engine(&dag, relay_modules(&dag, spin), 1, PHASES))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
