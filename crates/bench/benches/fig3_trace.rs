//! E3 (Figure 3): execution tracing.
//!
//! The figure itself is regenerated deterministically by
//! `tests/fig3_trace.rs`; this bench measures what recording those
//! set-membership snapshots costs, so tracing can be judged safe to
//! enable in production debugging.

use criterion::{criterion_group, criterion_main, Criterion};
use ec_bench::relay_modules;
use ec_core::Engine;
use ec_graph::generators;

const PHASES: u64 = 200;

fn bench_trace_overhead(c: &mut Criterion) {
    let dag = generators::fig3_graph();
    let mut group = c.benchmark_group("fig3/trace-overhead");
    group.sample_size(10);
    for (label, trace) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut engine = Engine::builder(dag.clone(), relay_modules(&dag, 1_000))
                    .threads(4)
                    .trace(trace)
                    .record_history(false)
                    .build()
                    .unwrap();
                engine.run(PHASES).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
