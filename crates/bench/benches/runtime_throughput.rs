//! Sustained throughput of the streaming runtime.
//!
//! Measures end-to-end events/sec through [`StreamRuntime`] — push,
//! epoch seal, pipelined execution, retirement — at 1, 2, 4 and 8
//! worker threads, so future scaling PRs (sharding, lock splitting,
//! batched admission) have a baseline to beat. Uses a fan-in graph
//! (two live sources, shared aggregation spine) with history recording
//! off, matching how a production service would run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::moving::MovingAverage;
use ec_fusion::operators::threshold::Threshold;
use ec_runtime::{EpochPolicy, StreamRuntime};

const EVENTS: u64 = 2_000;
/// Events per sealed epoch (per source, alternating pushes).
const EPOCH: usize = 16;

fn build_runtime(threads: usize) -> StreamRuntime {
    let mut b = StreamRuntime::builder()
        .threads(threads)
        .epoch_policy(EpochPolicy::ByCount(EPOCH))
        .record_history(false)
        .max_inflight(64);
    let s1 = b.live_source("s1");
    let s2 = b.live_source("s2");
    let sum = b.add("sum", Aggregate::sum(), &[s1, s2]);
    let avg = b.add("avg", MovingAverage::new(8), &[sum]);
    let _alarm = b.add("alarm", Threshold::above(900.0), &[avg]);
    b.build().expect("runtime builds")
}

fn drive(rt: &StreamRuntime, events: u64) {
    let s1 = rt.handle_by_name("s1").unwrap();
    let s2 = rt.handle_by_name("s2").unwrap();
    for i in 0..events {
        let handle = if i % 2 == 0 { &s1 } else { &s2 };
        handle.push((i % 1000) as f64).expect("push accepted");
    }
    rt.flush().expect("flush");
    rt.wait_idle().expect("completes");
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS));
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let rt = build_runtime(threads);
                    drive(&rt, EVENTS);
                    rt.shutdown().expect("clean shutdown").phases
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_throughput);
criterion_main!(benches);
