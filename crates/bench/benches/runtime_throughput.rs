//! Sustained throughput of the streaming runtime.
//!
//! Measures end-to-end events/sec through [`StreamRuntime`] — push,
//! epoch seal, pipelined execution, retirement — at 1, 2, 4 and 8
//! worker threads, so future scaling PRs (sharding, lock splitting,
//! batched admission) have a baseline to beat. Uses a fan-in graph
//! (two live sources, shared aggregation spine) with history recording
//! off, matching how a production service would run.
//!
//! The workload is shared with the `record` binary
//! ([`ec_bench::runtime_workload`]), which writes the same measurement
//! to `BENCH_runtime.json` for the machine-readable perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ec_bench::{drive_runtime, runtime_workload};

const EVENTS: u64 = 2_000;

fn bench_runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS));
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let rt = runtime_workload(threads);
                    drive_runtime(&rt, EVENTS);
                    rt.shutdown().expect("clean shutdown").phases
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_throughput);
criterion_main!(benches);
