//! X1 (§6 extension): partitioning strategies for multi-machine
//! deployment.
//!
//! Prints the inter-machine traffic (the quantity a real deployment
//! pays for) of balanced vs cut-minimising contiguous partitions at
//! several machine counts, and measures the simulation's execution
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_bench::fusion_modules;
use ec_core::DistributedSim;
use ec_graph::{generators, partition_balanced, partition_min_cut, Numbering};

const PHASES: u64 = 40;

fn bench_partition(c: &mut Criterion) {
    let dag = generators::layered(6, 4, 2, 99);
    let numbering = Numbering::compute(&dag);

    // Print the traffic comparison once.
    for k in [2u32, 3, 4] {
        for (label, partition) in [
            ("balanced", partition_balanced(&dag, &numbering, k)),
            ("min-cut", partition_min_cut(&dag, &numbering, k, 0.5)),
        ] {
            let mut sim = DistributedSim::new(&dag, fusion_modules(&dag, 0), &partition).unwrap();
            sim.run(PHASES).unwrap();
            println!(
                "partition k={k} {label:>8}: edge cut {:>2}, remote {:>5}, local {:>5}",
                partition.quality(&dag).edge_cut,
                sim.remote_messages(),
                sim.local_messages()
            );
        }
    }

    let mut group = c.benchmark_group("ablation-partition/sim");
    group.sample_size(10);
    for k in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let partition = partition_min_cut(&dag, &numbering, k, 0.5);
            b.iter(|| {
                let mut sim =
                    DistributedSim::new(&dag, fusion_modules(&dag, 1_000), &partition).unwrap();
                sim.run(PHASES).unwrap();
                sim.remote_messages()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation-partition/plan");
    for k in [2u32, 4, 8] {
        let big = generators::layered(40, 10, 3, 5);
        let big_numbering = Numbering::compute(&big);
        group.bench_with_input(BenchmarkId::new("min-cut-400v", k), &k, |b, &k| {
            b.iter(|| partition_min_cut(&big, &big_numbering, k, 0.5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
