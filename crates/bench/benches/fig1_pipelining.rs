//! E1 (Figure 1): multiple phases executing concurrently on the
//! 10-node graph.
//!
//! Measures end-to-end throughput of the pipelined engine on the
//! Figure 1 graph and prints the observed pipeline depth (max/mean
//! distinct phases executing at once) — the quantity the figure
//! illustrates with 5 in-flight phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_bench::{relay_modules, run_engine};
use ec_graph::generators;

const PHASES: u64 = 100;
const SPIN: u64 = 20_000;

fn bench_fig1(c: &mut Criterion) {
    let dag = generators::fig1_graph();

    // Report pipelining depth once, outside the timed loop.
    let metrics = run_engine(&dag, relay_modules(&dag, SPIN), 8, PHASES);
    println!(
        "fig1: pipeline depth over {PHASES} phases — max {} / mean {:.2} concurrent phases",
        metrics.max_concurrent_phases,
        metrics.mean_concurrent_phases()
    );

    let mut group = c.benchmark_group("fig1/throughput");
    group.sample_size(10);
    for &inflight_cap in &[1u64, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("inflight", inflight_cap),
            &inflight_cap,
            |b, &cap| {
                b.iter(|| {
                    let mut engine =
                        ec_core::Engine::builder(dag.clone(), relay_modules(&dag, SPIN))
                            .threads(8)
                            .max_inflight(cap)
                            .record_history(false)
                            .build()
                            .unwrap();
                    engine.run(PHASES).unwrap().metrics
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
