//! E6 (ablation): pipelined Δ-dataflow vs phase-barrier vs sequential.
//!
//! §2 offers the phase-at-a-time execution as the simple solution and
//! the pipelined algorithm as "a more efficient solution". This bench
//! quantifies the difference across graph shapes: deep chains (where
//! pipelining is everything) and wide layers (where within-phase
//! parallelism suffices and the barrier baseline is competitive).

use criterion::{criterion_group, criterion_main, Criterion};
use ec_bench::{relay_modules, run_barrier, run_engine, run_sequential};
use ec_graph::generators;

const PHASES: u64 = 60;
const SPIN: u64 = 30_000;
const THREADS: usize = 4;

fn bench_ablation(c: &mut Criterion) {
    let shapes: Vec<(&str, ec_graph::Dag)> = vec![
        ("deep-chain-12", generators::chain(12)),
        ("wide-3x8", generators::layered(3, 8, 2, 7)),
        ("square-5x5", generators::layered(5, 5, 2, 7)),
    ];
    for (name, dag) in shapes {
        let mut group = c.benchmark_group(format!("ablation-pipeline/{name}"));
        group.sample_size(10);
        group.bench_function("pipelined", |b| {
            b.iter(|| run_engine(&dag, relay_modules(&dag, SPIN), THREADS, PHASES))
        });
        group.bench_function("barrier", |b| {
            b.iter(|| run_barrier(&dag, relay_modules(&dag, SPIN), THREADS, PHASES))
        });
        group.bench_function("sequential", |b| {
            b.iter(|| run_sequential(&dag, relay_modules(&dag, SPIN), PHASES))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
