//! E4 ("Table 1", the measurement of §4): speedup vs computation threads.
//!
//! The paper: "identical computations see a speedup of approximately
//! 50% when two computation threads are running, compared to the speed
//! when a single computation thread is running … we predict that as
//! long as the computations performed by the vertices take
//! significantly more time than the computations performed to maintain
//! the data structures, the speedup will be close to linear in the
//! number of processors".
//!
//! We sweep threads ∈ {1, 2, 4, 8} at two per-vertex compute costs:
//! `heavy` (compute ≫ bookkeeping — the paper's prediction regime) and
//! `light` (compute ≈ bookkeeping — where speedup collapses).
//! EXPERIMENTS.md records the measured speedups against the paper's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_bench::{fusion_modules, run_engine};
use ec_graph::generators;

const PHASES: u64 = 60;

fn bench_speedup(c: &mut Criterion) {
    // A 4-layer × 6-wide fusion graph: enough width to keep 8 workers busy.
    let dag = generators::layered(4, 6, 2, 42);

    for (label, spin) in [("heavy", 120_000u64), ("light", 500u64)] {
        let mut group = c.benchmark_group(format!("table1/{label}"));
        group.sample_size(10);
        for &threads in &[1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    b.iter(|| run_engine(&dag, fusion_modules(&dag, spin), threads, PHASES))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
