//! E2 (Figure 2): vertex-numbering construction and verification.
//!
//! Regenerates the figure's S-tables (printed once at startup) and
//! measures the cost of computing serial-prefix numberings on graphs
//! from 100 to 10,000 vertices — the setup cost an adopter pays once
//! per graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_graph::{generators, Numbering};
use std::hint::black_box;

fn print_figure2_tables() {
    let dag = generators::fig2_graph();
    let good = Numbering::from_assignment(&dag, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
    println!("=== Figure 2(b): satisfactory numbering ===");
    for v in 0..=7u32 {
        println!("S({v}) = {:?}", good.s_set(&dag, v));
    }
    println!("m-sequence: {:?}", good.m_table());
    let bad = Numbering::from_assignment(&dag, &[1, 2, 3, 5, 4, 6, 7]);
    println!(
        "=== Figure 2(a): unsatisfactory numbering rejected: {} ===",
        bad.unwrap_err()
    );
}

fn bench_numbering(c: &mut Criterion) {
    print_figure2_tables();

    let mut group = c.benchmark_group("fig2/compute");
    for &n in &[100usize, 1_000, 10_000] {
        let random = generators::random_dag(n, (8.0 / n as f64).min(0.5), true, 42);
        group.bench_with_input(BenchmarkId::new("random", n), &random, |b, dag| {
            b.iter(|| Numbering::compute(black_box(dag)))
        });
        let layered = generators::layered(n / 10, 10, 3, 42);
        group.bench_with_input(BenchmarkId::new("layered", n), &layered, |b, dag| {
            b.iter(|| Numbering::compute(black_box(dag)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig2/verify");
    for &n in &[100usize, 1_000] {
        let dag = generators::random_dag(n, (8.0 / n as f64).min(0.5), true, 42);
        let numbering = Numbering::compute(&dag);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| numbering.verify(black_box(&dag)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_numbering);
criterion_main!(benches);
