//! E5 (§1's rate argument): change-only emission vs always-emit.
//!
//! "If one in a million transactions is anomalous then the rate of
//! events generated using the second option is only a millionth of
//! that generated using the first option."
//!
//! For anomaly probabilities 1/10, 1/1000 and 1/100000 we run the same
//! graph in Δ-dataflow mode and densified (always-emit) mode, printing
//! the message counts and measuring runtimes. The message ratio should
//! track ~1/p; the runtime gap grows with sparsity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ec_bench::{run_engine, sparse_modules};
use ec_core::densify;
use ec_graph::generators;

const PHASES: u64 = 400;

fn bench_sparse(c: &mut Criterion) {
    // Three sensor chains feeding one fusion vertex.
    let dag = generators::fan(3, 1);

    // Print message-count comparison once per sparsity level.
    for &p in &[0.1f64, 0.001, 0.00001] {
        let delta = run_engine(&dag, sparse_modules(&dag, p, 200), 4, PHASES);
        let dense = run_engine(&dag, densify(sparse_modules(&dag, p, 200)), 4, PHASES);
        println!(
            "sparse p={p:e}: delta messages {} vs dense {} ({}x fewer), \
             executions {} vs {}",
            delta.messages_sent,
            dense.messages_sent,
            dense.messages_sent / delta.messages_sent.max(1),
            delta.executions,
            dense.executions,
        );
    }

    let mut group = c.benchmark_group("sparse/runtime");
    group.sample_size(10);
    for &p in &[0.1f64, 0.001] {
        group.bench_with_input(BenchmarkId::new("delta", p), &p, |b, &p| {
            b.iter(|| run_engine(&dag, sparse_modules(&dag, p, 200), 4, PHASES))
        });
        group.bench_with_input(BenchmarkId::new("dense", p), &p, |b, &p| {
            b.iter(|| run_engine(&dag, densify(sparse_modules(&dag, p, 200)), 4, PHASES))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse);
criterion_main!(benches);
