//! # ec-spec — XML computation specifications
//!
//! The paper's prototype "takes as input an XML specification file for a
//! computation, which includes a specification of the computation graph
//! … The specification file also contains simulation parameters, such as
//! the number of timesteps to run and random seeds" (§4).
//!
//! This crate reproduces that interface:
//!
//! * [`xml`] — a minimal, dependency-free XML parser.
//! * [`schema`] — the `<computation>` / `<node>` / `<input>` schema.
//! * [`loader`] — instantiation of specs into runnable correlators.
//!
//! ```
//! let doc = r#"
//! <computation phases="10" threads="2">
//!   <node id="tx" type="counter"/>
//!   <node id="big" type="threshold" level="5"><input ref="tx"/></node>
//! </computation>"#;
//! let loaded = ec_spec::load_str(doc).unwrap();
//! let big = loaded.handles["big"];
//! let mut engine = loaded.engine().build().unwrap();
//! let history = engine.run(10).unwrap().history.unwrap();
//! // The threshold flips from false to true when the counter passes 5.
//! assert_eq!(history.sink_outputs_of(big.vertex()).len(), 2);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod loader;
pub mod schema;
pub mod writer;
pub mod xml;

pub use error::SpecError;
pub use loader::{load_spec, load_spec_live, load_str, load_str_live, LiveLoadedSpec, LoadedSpec};
pub use schema::{ComputationSpec, NodeSpec, RunSettings};
pub use writer::{spec_to_xml, write_element};

/// Loads a spec from a file path.
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<LoadedSpec, SpecError> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| SpecError::Structure(format!("cannot read spec file: {e}")))?;
    load_str(&doc)
}
