//! The computation-spec schema.
//!
//! A spec file mirrors what the paper's §4 describes: "a specification
//! of the computation graph with vertices as instances of … classes
//! conforming to well-defined guidelines … also … simulation parameters,
//! such as the number of timesteps to run and random seeds".
//!
//! ```xml
//! <?xml version="1.0"?>
//! <computation phases="100" threads="4" max-inflight="32">
//!   <node id="temp" type="diurnal" mean="20" amplitude="10"
//!         period="24" noise="0.5" seed="1"/>
//!   <node id="avg" type="moving-average" window="6">
//!     <input ref="temp"/>
//!   </node>
//!   <node id="alarm" type="threshold" mode="above" level="25">
//!     <input ref="avg"/>
//!   </node>
//! </computation>
//! ```
//!
//! Nodes without `<input>` children are sources. Inputs must reference
//! nodes defined earlier in the file; since edges always point from an
//! earlier to a later node, a well-formed spec is acyclic by
//! construction (the same argument as the builder's).
//!
//! An optional `<durability dir="..." snapshot-every="..."
//! on-flush="..."/>` element enables the `ec-store` write-ahead log for
//! live (`ec stream`) execution: committed epochs are logged to `dir`
//! and operator state is snapshotted every `snapshot-every` phases
//! and/or on every explicit flush.

use crate::error::SpecError;
use crate::xml::XmlElement;
use std::collections::HashMap;

/// Engine settings from the `<computation>` attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSettings {
    /// Number of phases to run.
    pub phases: u64,
    /// Computation threads.
    pub threads: usize,
    /// In-flight phase bound.
    pub max_inflight: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            phases: 100,
            threads: 2,
            max_inflight: 64,
        }
    }
}

/// The `<durability>` element: where (and how eagerly) a live run
/// persists its committed epochs and operator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilitySpec {
    /// Store directory for the WAL and snapshots.
    pub dir: String,
    /// Snapshot automatically every this many admitted phases.
    pub snapshot_every: Option<u64>,
    /// Snapshot after every explicit flush.
    pub on_flush: bool,
}

/// One `<node>` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Unique id.
    pub id: String,
    /// Module/source type name (see the loader's registry).
    pub type_name: String,
    /// All other attributes, as raw strings.
    pub params: HashMap<String, String>,
    /// Referenced input node ids, in order.
    pub inputs: Vec<String>,
}

impl NodeSpec {
    /// A required string parameter.
    pub fn param(&self, key: &str) -> Result<&str, SpecError> {
        self.params
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| SpecError::MissingParam {
                node: self.id.clone(),
                param: key.to_string(),
            })
    }

    /// An optional string parameter.
    pub fn param_opt(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// A required `f64` parameter.
    pub fn param_f64(&self, key: &str) -> Result<f64, SpecError> {
        parse_num(self.param(key)?, &self.id, key)
    }

    /// An optional `f64` parameter with a default.
    pub fn param_f64_or(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.param_opt(key) {
            Some(raw) => parse_num(raw, &self.id, key),
            None => Ok(default),
        }
    }

    /// A required `u64` parameter.
    pub fn param_u64(&self, key: &str) -> Result<u64, SpecError> {
        parse_num(self.param(key)?, &self.id, key)
    }

    /// An optional `u64` parameter with a default.
    pub fn param_u64_or(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        match self.param_opt(key) {
            Some(raw) => parse_num(raw, &self.id, key),
            None => Ok(default),
        }
    }

    /// An optional `usize` parameter with a default.
    pub fn param_usize_or(&self, key: &str, default: usize) -> Result<usize, SpecError> {
        match self.param_opt(key) {
            Some(raw) => parse_num(raw, &self.id, key),
            None => Ok(default),
        }
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, node: &str, key: &str) -> Result<T, SpecError> {
    raw.parse().map_err(|_| SpecError::BadParam {
        node: node.to_string(),
        param: key.to_string(),
        value: raw.to_string(),
    })
}

/// A parsed computation spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputationSpec {
    /// Run settings.
    pub settings: RunSettings,
    /// Nodes in definition order.
    pub nodes: Vec<NodeSpec>,
    /// Durability settings for live execution, if any.
    pub durability: Option<DurabilitySpec>,
}

impl ComputationSpec {
    /// Extracts a spec from a parsed `<computation>` element.
    pub fn from_element(root: &XmlElement) -> Result<ComputationSpec, SpecError> {
        if root.name != "computation" {
            return Err(SpecError::Structure(format!(
                "expected <computation> root, found <{}>",
                root.name
            )));
        }
        let mut settings = RunSettings::default();
        if let Some(p) = root.attr("phases") {
            settings.phases = parse_num(p, "computation", "phases")?;
        }
        if let Some(t) = root.attr("threads") {
            settings.threads = parse_num(t, "computation", "threads")?;
        }
        if let Some(m) = root.attr("max-inflight") {
            settings.max_inflight = parse_num(m, "computation", "max-inflight")?;
        }

        let mut nodes = Vec::new();
        let mut durability: Option<DurabilitySpec> = None;
        let mut seen = std::collections::HashSet::new();
        for el in root.elements() {
            if el.name == "durability" {
                if durability.is_some() {
                    return Err(SpecError::Structure(
                        "more than one <durability> element".into(),
                    ));
                }
                let dir = el
                    .attr("dir")
                    .ok_or_else(|| SpecError::Structure("<durability> missing dir".into()))?
                    .to_string();
                let snapshot_every = match el.attr("snapshot-every") {
                    Some(raw) => Some(parse_num(raw, "durability", "snapshot-every")?),
                    None => None,
                };
                let on_flush = match el.attr("on-flush") {
                    None => false,
                    Some("true") => true,
                    Some("false") => false,
                    Some(other) => {
                        return Err(SpecError::BadParam {
                            node: "durability".into(),
                            param: "on-flush".into(),
                            value: other.into(),
                        })
                    }
                };
                durability = Some(DurabilitySpec {
                    dir,
                    snapshot_every,
                    on_flush,
                });
                continue;
            }
            if el.name != "node" {
                return Err(SpecError::Structure(format!(
                    "unexpected element <{}> inside <computation>",
                    el.name
                )));
            }
            let id = el
                .attr("id")
                .ok_or_else(|| SpecError::Structure("<node> missing id".into()))?
                .to_string();
            if !seen.insert(id.clone()) {
                return Err(SpecError::DuplicateId(id));
            }
            let type_name = el
                .attr("type")
                .ok_or_else(|| SpecError::Structure(format!("<node id=\"{id}\"> missing type")))?
                .to_string();
            let params: HashMap<String, String> = el
                .attrs
                .iter()
                .filter(|(k, _)| k != "id" && k != "type")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let mut inputs = Vec::new();
            for child in el.elements() {
                if child.name != "input" {
                    return Err(SpecError::Structure(format!(
                        "unexpected element <{}> inside <node id=\"{id}\">",
                        child.name
                    )));
                }
                let r = child.attr("ref").ok_or_else(|| {
                    SpecError::Structure(format!("<input> in node {id} missing ref"))
                })?;
                if !seen.contains(r) {
                    return Err(SpecError::UnknownRef {
                        node: id.clone(),
                        reference: r.to_string(),
                    });
                }
                inputs.push(r.to_string());
            }
            nodes.push(NodeSpec {
                id,
                type_name,
                params,
                inputs,
            });
        }
        if nodes.is_empty() {
            return Err(SpecError::Structure("spec defines no nodes".into()));
        }
        Ok(ComputationSpec {
            settings,
            nodes,
            durability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<computation phases="50" threads="3" max-inflight="8">
  <node id="t" type="diurnal" mean="20" amplitude="10" period="24" noise="0.5" seed="1"/>
  <node id="avg" type="moving-average" window="6"><input ref="t"/></node>
</computation>"#;

    fn spec(doc: &str) -> Result<ComputationSpec, SpecError> {
        ComputationSpec::from_element(&xml::parse(doc).unwrap())
    }

    #[test]
    fn durability_element_parses() {
        let doc = r#"<computation>
          <durability dir="/var/lib/ec/store" snapshot-every="64" on-flush="true"/>
          <node id="a" type="counter"/>
        </computation>"#;
        let s = spec(doc).unwrap();
        let d = s.durability.expect("durability parsed");
        assert_eq!(d.dir, "/var/lib/ec/store");
        assert_eq!(d.snapshot_every, Some(64));
        assert!(d.on_flush);

        // Minimal form: dir only.
        let doc = r#"<computation>
          <durability dir="store"/>
          <node id="a" type="counter"/>
        </computation>"#;
        let d = spec(doc).unwrap().durability.unwrap();
        assert_eq!(d.snapshot_every, None);
        assert!(!d.on_flush);
    }

    #[test]
    fn durability_element_validated() {
        let doc = r#"<computation>
          <durability snapshot-every="4"/>
          <node id="a" type="counter"/>
        </computation>"#;
        assert!(matches!(spec(doc).unwrap_err(), SpecError::Structure(_)));
        let doc = r#"<computation>
          <durability dir="d" on-flush="maybe"/>
          <node id="a" type="counter"/>
        </computation>"#;
        assert!(matches!(spec(doc).unwrap_err(), SpecError::BadParam { .. }));
        let doc = r#"<computation>
          <durability dir="d"/>
          <durability dir="e"/>
          <node id="a" type="counter"/>
        </computation>"#;
        assert!(matches!(spec(doc).unwrap_err(), SpecError::Structure(_)));
    }

    #[test]
    fn parses_sample() {
        let s = spec(SAMPLE).unwrap();
        assert_eq!(
            s.settings,
            RunSettings {
                phases: 50,
                threads: 3,
                max_inflight: 8
            }
        );
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.nodes[0].id, "t");
        assert_eq!(s.nodes[0].type_name, "diurnal");
        assert!(s.nodes[0].inputs.is_empty());
        assert_eq!(s.nodes[1].inputs, vec!["t"]);
        assert_eq!(s.nodes[1].param_u64("window").unwrap(), 6);
    }

    #[test]
    fn defaults_apply() {
        let s = spec(r#"<computation><node id="a" type="counter"/></computation>"#).unwrap();
        assert_eq!(s.settings, RunSettings::default());
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(
            spec("<graph/>").unwrap_err(),
            SpecError::Structure(_)
        ));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let doc = r#"<computation>
          <node id="a" type="counter"/>
          <node id="a" type="counter"/>
        </computation>"#;
        assert!(matches!(spec(doc).unwrap_err(), SpecError::DuplicateId(id) if id == "a"));
    }

    #[test]
    fn rejects_forward_references() {
        let doc = r#"<computation>
          <node id="b" type="pass-through"><input ref="a"/></node>
          <node id="a" type="counter"/>
        </computation>"#;
        assert!(matches!(
            spec(doc).unwrap_err(),
            SpecError::UnknownRef { .. }
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        let doc = r#"<computation phases="lots"><node id="a" type="counter"/></computation>"#;
        assert!(matches!(spec(doc).unwrap_err(), SpecError::BadParam { .. }));
    }

    #[test]
    fn param_accessors() {
        let s = spec(SAMPLE).unwrap();
        let n = &s.nodes[0];
        assert_eq!(n.param("mean").unwrap(), "20");
        assert!(matches!(
            n.param("nope").unwrap_err(),
            SpecError::MissingParam { .. }
        ));
        assert_eq!(n.param_f64("mean").unwrap(), 20.0);
        assert_eq!(n.param_f64_or("nope", 1.5).unwrap(), 1.5);
        assert_eq!(n.param_u64_or("seed", 0).unwrap(), 1);
        assert_eq!(n.param_usize_or("nope", 7).unwrap(), 7);
    }
}
