//! XML serialisation: the inverse of [`crate::xml::parse`].
//!
//! Lets programmatically-built computations be saved as spec files
//! (e.g. a [`ComputationSpec`] captured from a running system), and
//! gives the parser a round-trip property to be tested against.

use crate::schema::{ComputationSpec, NodeSpec};
use crate::xml::{XmlElement, XmlNode};
use std::fmt::Write;

/// Escapes text content.
fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Escapes attribute values (double-quoted).
fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

/// Renders an element tree as indented XML.
pub fn write_element(root: &XmlElement) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n");
    write_into(&mut out, root, 0);
    out
}

fn write_into(out: &mut String, el: &XmlElement, depth: usize) {
    let pad = "  ".repeat(depth);
    write!(out, "{pad}<{}", el.name).unwrap();
    for (k, v) in &el.attrs {
        write!(out, " {k}=\"{}\"", escape_attr(v)).unwrap();
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Text-only elements render inline; mixed/element content indents.
    let only_text = el.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
    if only_text {
        out.push('>');
        for c in &el.children {
            if let XmlNode::Text(t) = c {
                out.push_str(&escape_text(t));
            }
        }
        writeln!(out, "</{}>", el.name).unwrap();
        return;
    }
    out.push_str(">\n");
    for c in &el.children {
        match c {
            XmlNode::Element(e) => write_into(out, e, depth + 1),
            XmlNode::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    writeln!(out, "{pad}  {}", escape_text(trimmed)).unwrap();
                }
            }
        }
    }
    writeln!(out, "{pad}</{}>", el.name).unwrap();
}

/// Renders a [`ComputationSpec`] as a spec document parseable by
/// [`crate::load_str`].
pub fn spec_to_xml(spec: &ComputationSpec) -> String {
    let mut root = XmlElement {
        name: "computation".into(),
        attrs: vec![
            ("phases".into(), spec.settings.phases.to_string()),
            ("threads".into(), spec.settings.threads.to_string()),
            (
                "max-inflight".into(),
                spec.settings.max_inflight.to_string(),
            ),
        ],
        children: Vec::new(),
    };
    if let Some(d) = &spec.durability {
        let mut attrs = vec![("dir".to_string(), d.dir.clone())];
        if let Some(every) = d.snapshot_every {
            attrs.push(("snapshot-every".into(), every.to_string()));
        }
        if d.on_flush {
            attrs.push(("on-flush".into(), "true".into()));
        }
        root.children.push(XmlNode::Element(XmlElement {
            name: "durability".into(),
            attrs,
            children: Vec::new(),
        }));
    }
    for node in &spec.nodes {
        root.children.push(XmlNode::Element(node_to_element(node)));
    }
    write_element(&root)
}

fn node_to_element(node: &NodeSpec) -> XmlElement {
    let mut attrs = vec![
        ("id".to_string(), node.id.clone()),
        ("type".to_string(), node.type_name.clone()),
    ];
    // Deterministic attribute order for stable output.
    let mut params: Vec<(&String, &String)> = node.params.iter().collect();
    params.sort();
    for (k, v) in params {
        attrs.push((k.clone(), v.clone()));
    }
    let children = node
        .inputs
        .iter()
        .map(|r| {
            XmlNode::Element(XmlElement {
                name: "input".into(),
                attrs: vec![("ref".into(), r.clone())],
                children: Vec::new(),
            })
        })
        .collect();
    XmlElement {
        name: "node".into(),
        attrs,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RunSettings;
    use crate::xml;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn element_roundtrip() {
        let doc = r#"<a x="1 &amp; 2"><b/><c>text &lt;here&gt;</c></a>"#;
        let parsed = xml::parse(doc).unwrap();
        let written = write_element(&parsed);
        let reparsed = xml::parse(&written).unwrap();
        assert_eq!(strip_ws(&parsed), strip_ws(&reparsed));
    }

    /// Whitespace-only text nodes are formatting artefacts; remove them
    /// before comparing round-tripped trees.
    fn strip_ws(el: &XmlElement) -> XmlElement {
        XmlElement {
            name: el.name.clone(),
            attrs: el.attrs.clone(),
            children: el
                .children
                .iter()
                .filter_map(|c| match c {
                    XmlNode::Element(e) => Some(XmlNode::Element(strip_ws(e))),
                    XmlNode::Text(t) => {
                        let trimmed = t.trim().to_string();
                        (!trimmed.is_empty()).then_some(XmlNode::Text(trimmed))
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn spec_roundtrip() {
        let spec = ComputationSpec {
            settings: RunSettings {
                phases: 42,
                threads: 3,
                max_inflight: 9,
            },
            durability: Some(crate::schema::DurabilitySpec {
                dir: "store/dir".into(),
                snapshot_every: Some(16),
                on_flush: false,
            }),
            nodes: vec![
                NodeSpec {
                    id: "src".into(),
                    type_name: "counter".into(),
                    params: HashMap::new(),
                    inputs: vec![],
                },
                NodeSpec {
                    id: "thr".into(),
                    type_name: "threshold".into(),
                    params: HashMap::from([
                        ("level".to_string(), "5".to_string()),
                        ("mode".to_string(), "above".to_string()),
                    ]),
                    inputs: vec!["src".into()],
                },
            ],
        };
        let doc = spec_to_xml(&spec);
        let parsed = ComputationSpec::from_element(&xml::parse(&doc).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        // And the written spec actually loads and runs.
        let loaded = crate::load_str(&doc).unwrap();
        let mut seq = loaded.sequential().unwrap();
        seq.run(5).unwrap();
    }

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_-]{0,8}".prop_map(|s| s)
    }

    fn value_strategy() -> impl Strategy<Value = String> {
        // Printable text including the characters that need escaping.
        "[ -~]{0,12}".prop_map(|s| s)
    }

    fn element_strategy() -> impl Strategy<Value = XmlElement> {
        let leaf = (
            name_strategy(),
            proptest::collection::vec((name_strategy(), value_strategy()), 0..4),
        )
            .prop_map(|(name, mut attrs)| {
                attrs.sort();
                attrs.dedup_by(|a, b| a.0 == b.0);
                XmlElement {
                    name,
                    attrs,
                    children: Vec::new(),
                }
            });
        leaf.prop_recursive(3, 16, 4, |inner| {
            (
                name_strategy(),
                proptest::collection::vec((name_strategy(), value_strategy()), 0..4),
                proptest::collection::vec(inner, 0..4),
            )
                .prop_map(|(name, mut attrs, kids)| {
                    attrs.sort();
                    attrs.dedup_by(|a, b| a.0 == b.0);
                    XmlElement {
                        name,
                        attrs,
                        children: kids.into_iter().map(XmlNode::Element).collect(),
                    }
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// write → parse is the identity on arbitrary element trees.
        #[test]
        fn arbitrary_tree_roundtrips(el in element_strategy()) {
            let written = write_element(&el);
            let reparsed = xml::parse(&written)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{written}"));
            prop_assert_eq!(strip_ws(&el), strip_ws(&reparsed));
        }
    }
}
