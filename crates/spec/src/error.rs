//! Spec-layer errors.

use crate::xml::XmlError;
use std::fmt;

/// Errors loading a computation spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// XML syntax error.
    Xml(XmlError),
    /// Structural problem (wrong elements/attributes).
    Structure(String),
    /// A node id appears twice.
    DuplicateId(String),
    /// An `<input ref>` names a node not defined earlier.
    UnknownRef {
        /// The referring node.
        node: String,
        /// The unresolved reference.
        reference: String,
    },
    /// Unknown node type.
    UnknownType {
        /// The node with the unknown type.
        node: String,
        /// The type name.
        type_name: String,
    },
    /// A required parameter is absent.
    MissingParam {
        /// The node.
        node: String,
        /// The parameter.
        param: String,
    },
    /// A parameter failed to parse.
    BadParam {
        /// The node.
        node: String,
        /// The parameter.
        param: String,
        /// The raw value.
        value: String,
    },
    /// Source/module arity mismatch (e.g. a source with inputs).
    Arity {
        /// The node.
        node: String,
        /// Description of the mismatch.
        message: String,
    },
    /// Engine construction failed downstream.
    Engine(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Xml(e) => write!(f, "{e}"),
            SpecError::Structure(msg) => write!(f, "spec structure: {msg}"),
            SpecError::DuplicateId(id) => write!(f, "duplicate node id {id:?}"),
            SpecError::UnknownRef { node, reference } => write!(
                f,
                "node {node:?} references {reference:?}, which is not defined earlier"
            ),
            SpecError::UnknownType { node, type_name } => {
                write!(f, "node {node:?} has unknown type {type_name:?}")
            }
            SpecError::MissingParam { node, param } => {
                write!(f, "node {node:?} is missing parameter {param:?}")
            }
            SpecError::BadParam { node, param, value } => {
                write!(
                    f,
                    "node {node:?} parameter {param:?} has bad value {value:?}"
                )
            }
            SpecError::Arity { node, message } => write!(f, "node {node:?}: {message}"),
            SpecError::Engine(msg) => write!(f, "engine construction failed: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<XmlError> for SpecError {
    fn from(e: XmlError) -> Self {
        SpecError::Xml(e)
    }
}
