//! A minimal, dependency-free XML subset parser.
//!
//! The paper's prototype "takes as input an XML specification file for a
//! computation" (§4). This module implements the subset of XML such
//! spec files need: elements, attributes, text content, comments, an
//! optional XML declaration, self-closing tags and the five predefined
//! entities. It does not implement namespaces, DTDs, processing
//! instructions beyond the declaration, or CDATA — spec files do not
//! use them.
//!
//! Errors carry line/column positions for usable diagnostics.

use std::fmt;

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// An element: name, attributes and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

/// A node: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(XmlElement),
    /// Text content (entity-decoded, whitespace preserved).
    Text(String),
}

impl XmlElement {
    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> + '_ {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Child elements with a given tag name.
    pub fn elements_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// The first child element with a given tag name.
    pub fn first_named(&self, name: &str) -> Option<&XmlElement> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

/// Parses a document and returns its root element.
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_ws_and_comments()?;
    if !p.at_end() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.starts_with("<!--") {
            return Ok(false);
        }
        self.bump_n(4);
        loop {
            if self.at_end() {
                return Err(self.err("unterminated comment"));
            }
            if self.starts_with("-->") {
                self.bump_n(3);
                return Ok(true);
            }
            self.bump();
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if !self.skip_comment()? {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            while !self.at_end() && !self.starts_with("?>") {
                self.bump();
            }
            if self.at_end() {
                return Err(self.err("unterminated XML declaration"));
            }
            self.bump_n(2);
        }
        self.skip_ws_and_comments()
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => out.push(self.parse_entity()?),
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = &self.bytes[start..self.pos];
                self.bump();
                return match name {
                    b"lt" => Ok('<'),
                    b"gt" => Ok('>'),
                    b"amp" => Ok('&'),
                    b"quot" => Ok('"'),
                    b"apos" => Ok('\''),
                    _ if name.first() == Some(&b'#') => {
                        let s = String::from_utf8_lossy(&name[1..]);
                        let code = if let Some(hex) = s.strip_prefix('x') {
                            u32::from_str_radix(hex, 16)
                        } else {
                            s.parse::<u32>()
                        }
                        .map_err(|_| self.err("bad character reference"))?;
                        char::from_u32(code).ok_or_else(|| self.err("bad character reference"))
                    }
                    _ => Err(self.err(format!(
                        "unknown entity &{};",
                        String::from_utf8_lossy(name)
                    ))),
                };
            }
            if !b.is_ascii_alphanumeric() && b != b'#' {
                return Err(self.err("malformed entity"));
            }
            self.bump();
        }
        Err(self.err("unterminated entity"))
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.bump();
        let name = self.parse_name()?;
        let mut attrs = Vec::new();

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.bump();
                    return Ok(XmlElement {
                        name,
                        attrs,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute {key}")));
                    }
                    self.bump();
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if attrs.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(format!("duplicate attribute {key}")));
                    }
                    attrs.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content until matching close tag.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{name}>"))),
                Some(b'<') => {
                    if !text.is_empty() {
                        children.push(XmlNode::Text(std::mem::take(&mut text)));
                    }
                    if self.skip_comment()? {
                        continue;
                    }
                    if self.starts_with("</") {
                        self.bump_n(2);
                        let close = self.parse_name()?;
                        if close != name {
                            return Err(self.err(format!(
                                "mismatched close tag: expected </{name}>, got </{close}>"
                            )));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in close tag"));
                        }
                        self.bump();
                        return Ok(XmlElement {
                            name,
                            attrs,
                            children,
                        });
                    }
                    children.push(XmlNode::Element(self.parse_element()?));
                }
                Some(b'&') => text.push(self.parse_entity()?),
                Some(b) => {
                    self.bump();
                    text.push(b as char);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_element() {
        let e = parse("<root/>").unwrap();
        assert_eq!(e.name, "root");
        assert!(e.attrs.is_empty());
        assert!(e.children.is_empty());
    }

    #[test]
    fn parses_attributes() {
        let e = parse(r#"<node id="a" level='2.5'/>"#).unwrap();
        assert_eq!(e.attr("id"), Some("a"));
        assert_eq!(e.attr("level"), Some("2.5"));
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn parses_nested_elements() {
        let e = parse("<a><b x=\"1\"/><c><d/></c></a>").unwrap();
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.first_named("b").unwrap().attr("x"), Some("1"));
        assert_eq!(e.first_named("c").unwrap().elements().count(), 1);
        assert!(e.first_named("zzz").is_none());
    }

    #[test]
    fn parses_text_content() {
        let e = parse("<msg>  hello &amp; goodbye  </msg>").unwrap();
        assert_eq!(e.text(), "hello & goodbye");
    }

    #[test]
    fn entities_in_attributes() {
        let e = parse(r#"<n v="a&lt;b&gt;c&quot;d&apos;e"/>"#).unwrap();
        assert_eq!(e.attr("v"), Some("a<b>c\"d'e"));
    }

    #[test]
    fn numeric_character_references() {
        let e = parse("<n>&#65;&#x42;</n>").unwrap();
        assert_eq!(e.text(), "AB");
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- top --><root><!-- inner --><a/></root>";
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "root");
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched close tag"), "{err}");
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
    }

    #[test]
    fn error_on_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate attribute"));
    }

    #[test]
    fn error_on_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing content"));
    }

    #[test]
    fn error_on_unknown_entity() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"));
    }

    #[test]
    fn error_on_unterminated_comment() {
        let err = parse("<a><!-- oops</a>").unwrap_err();
        assert!(err.message.contains("unterminated comment"));
    }

    #[test]
    fn whitespace_tolerant_tags() {
        let e = parse("<a  x = \"1\"  ></a >").unwrap();
        assert_eq!(e.attr("x"), Some("1"));
    }

    #[test]
    fn mixed_content_order_preserved() {
        let e = parse("<a>one<b/>two</a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert!(matches!(&e.children[0], XmlNode::Text(t) if t == "one"));
        assert!(matches!(&e.children[1], XmlNode::Element(el) if el.name == "b"));
        assert!(matches!(&e.children[2], XmlNode::Text(t) if t == "two"));
    }
}
