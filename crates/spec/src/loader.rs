//! Instantiates a [`ComputationSpec`] into a runnable correlator.
//!
//! The loader maps spec `type` names to sources and operator modules.
//! Source types (no `<input>` children): `constant`, `counter`,
//! `random-walk`, `diurnal`, `sparse-counter`, `step-change`, `bursty`.
//! Module types: `pass-through`, `sum`, `moving-average`, `ewma`,
//! `threshold`, `hysteresis`, `zscore-anomaly`, `regression-outlier`,
//! `change-detector`, `debounce`, `sample-hold`, `aggregate`, `arith`,
//! `all-of`, `any-of`, `true-count`, `rate-monitor`,
//! `pair-correlation`, `coincidence-join`.

use crate::error::SpecError;
use crate::schema::{ComputationSpec, DurabilitySpec, NodeSpec, RunSettings};
use crate::xml;
use ec_core::{EngineBuilder, Module, PassThrough, Sequential, SumModule};
use ec_events::csv::CsvReplay;
use ec_events::sources::{Bursty, Constant, Counter, Diurnal, RandomWalk, Sparse, StepChange};
use ec_events::{EventSource, Phase, Value};
use ec_fusion::models::{BoilerModel, GbmMarket, KMeansTracker};
use ec_fusion::operators::aggregate::Aggregate;
use ec_fusion::operators::anomaly::{RegressionOutlier, ZScoreAnomaly};
use ec_fusion::operators::arith::{Arith, ArithOp};
use ec_fusion::operators::delta::{ChangeDetector, Debounce, SampleHold};
use ec_fusion::operators::hysteresis::Hysteresis;
use ec_fusion::operators::join::{CoincidenceJoin, PairCorrelation};
use ec_fusion::operators::logic::{AllOf, AnyOf, TrueCount};
use ec_fusion::operators::moving::{EwmaSmoother, MovingAverage};
use ec_fusion::operators::rate::RateMonitor;
use ec_fusion::operators::threshold::Threshold;
use ec_fusion::{CorrelatorBuilder, NodeHandle};
use std::collections::HashMap;

/// A loaded correlator: builder plus settings plus name→handle map.
pub struct LoadedSpec {
    /// The assembled graph + modules.
    pub builder: CorrelatorBuilder,
    /// Run settings from the spec.
    pub settings: RunSettings,
    /// Node handles by spec id (for history lookups).
    pub handles: HashMap<String, NodeHandle>,
}

impl std::fmt::Debug for LoadedSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedSpec")
            .field("settings", &self.settings)
            .field("nodes", &self.builder.len())
            .finish()
    }
}

impl LoadedSpec {
    /// Finishes into a parallel-engine builder configured with the
    /// spec's thread count and in-flight bound.
    pub fn engine(self) -> EngineBuilder {
        let settings = self.settings;
        self.builder
            .engine()
            .threads(settings.threads)
            .max_inflight(settings.max_inflight)
    }

    /// Finishes into the sequential reference executor.
    pub fn sequential(self) -> Result<Sequential, SpecError> {
        self.builder
            .sequential()
            .map_err(|e| SpecError::Engine(e.to_string()))
    }
}

/// A correlator loaded for **live** (streaming) execution: source nodes
/// of type `live` became runtime-fed feeds instead of scripted
/// generators. Feed writers are returned in spec order so a streaming
/// runtime can register them (`StreamRuntimeBuilder::from_correlator`
/// in `ec-runtime`).
pub struct LiveLoadedSpec {
    /// The assembled graph + modules (live sources wired as feeds).
    pub builder: CorrelatorBuilder,
    /// Run settings from the spec.
    pub settings: RunSettings,
    /// Node handles by spec id.
    pub handles: HashMap<String, NodeHandle>,
    /// `(id, handle, writer)` per `type="live"` source, in spec order.
    pub feeds: Vec<(String, NodeHandle, ec_events::FeedWriter)>,
    /// Durability settings from the spec's `<durability>` element.
    pub durability: Option<DurabilitySpec>,
}

/// Parses and instantiates a spec for live execution (see
/// [`LiveLoadedSpec`]): source nodes of type `live` are fed at runtime,
/// all other node types behave exactly as in [`load_str`]. A spec with
/// no `live` sources is still valid — the runtime just drives its
/// scripted sources with (possibly empty) epochs.
pub fn load_str_live(doc: &str) -> Result<LiveLoadedSpec, SpecError> {
    let root = xml::parse(doc)?;
    let spec = ComputationSpec::from_element(&root)?;
    load_spec_live(&spec)
}

/// Instantiates an already-parsed spec for live execution.
pub fn load_spec_live(spec: &ComputationSpec) -> Result<LiveLoadedSpec, SpecError> {
    let (builder, handles, feeds) = instantiate(spec, true)?;
    Ok(LiveLoadedSpec {
        builder,
        settings: spec.settings.clone(),
        handles,
        feeds,
        durability: spec.durability.clone(),
    })
}

/// Parses and instantiates a spec document.
pub fn load_str(doc: &str) -> Result<LoadedSpec, SpecError> {
    let root = xml::parse(doc)?;
    let spec = ComputationSpec::from_element(&root)?;
    load_spec(&spec)
}

/// Instantiates an already-parsed spec.
pub fn load_spec(spec: &ComputationSpec) -> Result<LoadedSpec, SpecError> {
    let (builder, handles, _feeds) = instantiate(spec, false)?;
    Ok(LoadedSpec {
        builder,
        settings: spec.settings.clone(),
        handles,
    })
}

/// The shared node-instantiation loop. With `live` set, source nodes of
/// type `live` become runtime-fed feeds; without it, `live` is an
/// unknown source type (batch executors have nothing to feed them).
#[allow(clippy::type_complexity)]
fn instantiate(
    spec: &ComputationSpec,
    live: bool,
) -> Result<
    (
        CorrelatorBuilder,
        HashMap<String, NodeHandle>,
        Vec<(String, NodeHandle, ec_events::FeedWriter)>,
    ),
    SpecError,
> {
    let mut builder = CorrelatorBuilder::new();
    let mut handles: HashMap<String, NodeHandle> = HashMap::new();
    let mut feeds = Vec::new();
    for node in &spec.nodes {
        let handle = if node.inputs.is_empty() {
            if live && node.type_name == "live" {
                let (handle, writer) = builder.live_source(node.id.clone());
                feeds.push((node.id.clone(), handle, writer));
                handle
            } else {
                let source = build_source(node)?;
                builder.source_box(node.id.clone(), source)
            }
        } else {
            let module = build_module(node)?;
            let inputs: Vec<NodeHandle> = node
                .inputs
                .iter()
                .map(|r| handles[r.as_str()]) // refs validated by schema
                .collect();
            builder.add_box(node.id.clone(), module, &inputs)
        };
        handles.insert(node.id.clone(), handle);
    }
    Ok((builder, handles, feeds))
}

fn build_source(node: &NodeSpec) -> Result<Box<dyn EventSource>, SpecError> {
    let seed = node.param_u64_or("seed", 0)?;
    Ok(match node.type_name.as_str() {
        "constant" => Box::new(Constant::new(Value::Float(node.param_f64("value")?))),
        "counter" => Box::new(Counter::new()),
        "random-walk" => Box::new(RandomWalk::new(
            node.param_f64_or("start", 0.0)?,
            node.param_f64_or("step", 1.0)?,
            seed,
        )),
        "diurnal" => Box::new(Diurnal::new(
            node.param_f64_or("mean", 20.0)?,
            node.param_f64_or("amplitude", 10.0)?,
            node.param_u64_or("period", 24)?,
            node.param_f64_or("noise", 0.0)?,
            seed,
        )),
        "sparse-counter" => Box::new(Sparse::counter(node.param_f64("p")?, seed)),
        "sparse-walk" => Box::new(Sparse::new(
            Box::new(RandomWalk::new(
                node.param_f64_or("start", 0.0)?,
                node.param_f64_or("step", 1.0)?,
                seed,
            )),
            node.param_f64("p")?,
            seed.wrapping_add(1),
        )),
        "step-change" => Box::new(StepChange::new(
            Value::Float(node.param_f64("before")?),
            Value::Float(node.param_f64("after")?),
            Phase(node.param_u64("at")?),
        )),
        "bursty" => Box::new(Bursty::new(node.param_f64_or("mean", 1.0)?, seed)),
        "gbm-market" => Box::new(GbmMarket::new(
            node.param_f64_or("price", 100.0)?,
            node.param_f64_or("mu", 0.0)?,
            node.param_f64_or("sigma", 0.01)?,
            seed,
        )),
        "csv" => {
            let path = node.param("file")?;
            let text = std::fs::read_to_string(path).map_err(|e| SpecError::BadParam {
                node: node.id.clone(),
                param: "file".into(),
                value: format!("{path}: {e}"),
            })?;
            let col = node.param_usize_or("column", 0)?;
            let header = node.param_opt("header").is_none_or(|h| h == "true");
            let replay =
                CsvReplay::from_csv(&text, col, header).map_err(|e| SpecError::BadParam {
                    node: node.id.clone(),
                    param: "file".into(),
                    value: e.to_string(),
                })?;
            if node.param_opt("loop") == Some("true") {
                Box::new(replay.looping())
            } else {
                Box::new(replay)
            }
        }
        other => {
            return Err(SpecError::UnknownType {
                node: node.id.clone(),
                type_name: other.to_string(),
            })
        }
    })
}

fn build_module(node: &NodeSpec) -> Result<Box<dyn Module>, SpecError> {
    let arity = node.inputs.len();
    let need = |n: usize, what: &str| -> Result<(), SpecError> {
        if arity != n {
            Err(SpecError::Arity {
                node: node.id.clone(),
                message: format!("{what} needs exactly {n} input(s), got {arity}"),
            })
        } else {
            Ok(())
        }
    };
    Ok(match node.type_name.as_str() {
        "pass-through" => Box::new(PassThrough),
        "sum" => Box::new(SumModule),
        "moving-average" => Box::new(MovingAverage::new(node.param_usize_or("window", 8)?)),
        "ewma" => Box::new(EwmaSmoother::new(node.param_f64_or("alpha", 0.5)?)),
        "threshold" => {
            let level = node.param_f64("level")?;
            match node.param_opt("mode").unwrap_or("above") {
                "above" => Box::new(Threshold::above(level)),
                "below" => Box::new(Threshold::below(level)),
                other => {
                    return Err(SpecError::BadParam {
                        node: node.id.clone(),
                        param: "mode".into(),
                        value: other.into(),
                    })
                }
            }
        }
        "zscore-anomaly" => Box::new(ZScoreAnomaly::new(
            node.param_usize_or("window", 32)?,
            node.param_f64_or("z", 3.0)?,
        )),
        "regression-outlier" => Box::new(RegressionOutlier::new(
            node.param_usize_or("window", 32)?,
            node.param_f64_or("sigma", 2.0)?,
        )),
        "change-detector" => Box::new(ChangeDetector::new(node.param_f64_or("epsilon", 0.0)?)),
        "debounce" => Box::new(Debounce::new(node.param_u64_or("hold", 1)?)),
        "sample-hold" => {
            need(2, "sample-hold")?;
            Box::new(SampleHold::new())
        }
        "aggregate" => match node.param_opt("kind").unwrap_or("sum") {
            "sum" => Box::new(Aggregate::sum()),
            "mean" => Box::new(Aggregate::mean()),
            "min" => Box::new(Aggregate::min()),
            "max" => Box::new(Aggregate::max()),
            other => {
                return Err(SpecError::BadParam {
                    node: node.id.clone(),
                    param: "kind".into(),
                    value: other.into(),
                })
            }
        },
        "arith" => {
            need(2, "arith")?;
            let op = match node.param_opt("op").unwrap_or("add") {
                "add" => ArithOp::Add,
                "sub" => ArithOp::Sub,
                "mul" => ArithOp::Mul,
                "div" => ArithOp::Div,
                "absdiff" => ArithOp::AbsDiff,
                other => {
                    return Err(SpecError::BadParam {
                        node: node.id.clone(),
                        param: "op".into(),
                        value: other.into(),
                    })
                }
            };
            Box::new(Arith::new(op))
        }
        "hysteresis" => {
            let low = node.param_f64("low")?;
            let high = node.param_f64("high")?;
            if low > high {
                return Err(SpecError::BadParam {
                    node: node.id.clone(),
                    param: "low".into(),
                    value: format!("{low} > high {high}"),
                });
            }
            Box::new(Hysteresis::new(low, high))
        }
        "boiler" => {
            need(2, "boiler (ambient, power)")?;
            Box::new(BoilerModel::new(
                node.param_f64_or("initial", 20.0)?,
                node.param_f64_or("capacity", 10.0)?,
                node.param_f64_or("loss", 1.0)?,
                node.param_f64_or("band", 0.0)?,
            ))
        }
        "kmeans" => Box::new(KMeansTracker::new(
            node.param_usize_or("k", 2)?,
            node.param_f64_or("eps", 0.1)?,
        )),
        "all-of" => Box::new(AllOf::new()),
        "any-of" => Box::new(AnyOf::new()),
        "true-count" => Box::new(TrueCount::new()),
        "rate-monitor" => Box::new(RateMonitor::new(
            node.param_u64_or("window", 10)?,
            node.param_usize_or("limit", 0)?,
        )),
        "pair-correlation" => {
            need(2, "pair-correlation")?;
            Box::new(PairCorrelation::new(node.param_usize_or("window", 16)?))
        }
        "coincidence-join" => {
            need(2, "coincidence-join")?;
            Box::new(CoincidenceJoin::new(node.param_u64_or("window", 1)?))
        }
        other => {
            return Err(SpecError::UnknownType {
                node: node.id.clone(),
                type_name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<computation phases="48" threads="2">
  <node id="temp" type="diurnal" mean="20" amplitude="10" period="24" noise="0" seed="1"/>
  <node id="avg" type="moving-average" window="4"><input ref="temp"/></node>
  <node id="hot" type="threshold" mode="above" level="25"><input ref="avg"/></node>
</computation>"#;

    #[test]
    fn loads_and_runs_sample() {
        let loaded = load_str(SAMPLE).unwrap();
        assert_eq!(loaded.settings.phases, 48);
        let hot = loaded.handles["hot"];
        let mut engine = loaded.engine().build().unwrap();
        let report = engine.run(48).unwrap();
        let history = report.history.unwrap();
        let outs = history.sink_outputs_of(hot.vertex());
        // The diurnal wave crosses 25° twice per day; with two days we
        // expect several state flips, starting with false.
        assert!(outs.len() >= 3, "got {outs:?}");
        assert_eq!(outs[0].1, Value::Bool(false));
    }

    #[test]
    fn parallel_matches_sequential_for_spec() {
        let h_par = {
            let mut engine = load_str(SAMPLE).unwrap().engine().build().unwrap();
            engine.run(48).unwrap().history.unwrap()
        };
        let h_seq = {
            let mut seq = load_str(SAMPLE).unwrap().sequential().unwrap();
            seq.run(48).unwrap();
            seq.into_history()
        };
        assert_eq!(h_seq.equivalent(&h_par), Ok(()));
    }

    #[test]
    fn live_spec_wires_feeds() {
        use ec_events::Value;
        let doc = r#"<computation threads="2">
          <node id="tx" type="live"/>
          <node id="ref" type="counter"/>
          <node id="sum" type="sum"><input ref="tx"/><input ref="ref"/></node>
        </computation>"#;
        let live = load_str_live(doc).unwrap();
        assert_eq!(live.feeds.len(), 1);
        assert_eq!(live.feeds[0].0, "tx");
        let sum = live.handles["sum"];
        // Stage two phases through the feed and run sequentially.
        live.feeds[0].2.stage(Some(Value::Float(10.0)));
        live.feeds[0].2.stage(None);
        let mut seq = live.builder.sequential().unwrap();
        seq.run(2).unwrap();
        let outs = seq.into_history().sink_outputs_of(sum.vertex());
        // Phase 1: 10 + 1; phase 2: 10 (held) + 2.
        assert_eq!(outs[0].1.as_f64().unwrap(), 11.0);
        assert_eq!(outs[1].1.as_f64().unwrap(), 12.0);
    }

    #[test]
    fn live_type_rejected_in_batch_mode() {
        let doc = r#"<computation><node id="x" type="live"/></computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::UnknownType { .. }
        ));
    }

    #[test]
    fn unknown_source_type() {
        let doc = r#"<computation><node id="x" type="telepathy"/></computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::UnknownType { .. }
        ));
    }

    #[test]
    fn unknown_module_type() {
        let doc = r#"<computation>
          <node id="a" type="counter"/>
          <node id="x" type="magic"><input ref="a"/></node>
        </computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::UnknownType { .. }
        ));
    }

    #[test]
    fn arity_enforced() {
        let doc = r#"<computation>
          <node id="a" type="counter"/>
          <node id="x" type="pair-correlation"><input ref="a"/></node>
        </computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::Arity { .. }
        ));
    }

    #[test]
    fn bad_threshold_mode() {
        let doc = r#"<computation>
          <node id="a" type="counter"/>
          <node id="x" type="threshold" level="1" mode="sideways"><input ref="a"/></node>
        </computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::BadParam { .. }
        ));
    }

    #[test]
    fn gbm_and_csv_sources_load() {
        let doc = r#"<computation>
          <node id="mkt" type="gbm-market" price="50" sigma="0.02" seed="4"/>
        </computation>"#;
        let mut seq = load_str(doc).unwrap().sequential().unwrap();
        seq.run(5).unwrap();

        let dir = std::env::temp_dir().join("ec-spec-csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, "v\n1.0\n\n3.0\n").unwrap();
        let doc = format!(
            r#"<computation>
              <node id="trace" type="csv" file="{}" column="0"/>
              <node id="out" type="pass-through"><input ref="trace"/></node>
            </computation>"#,
            path.display()
        );
        let loaded = load_str(&doc).unwrap();
        let out = loaded.handles["out"];
        let mut seq = loaded.sequential().unwrap();
        seq.run(3).unwrap();
        let hist = seq.into_history();
        assert_eq!(hist.sink_outputs_of(out.vertex()).len(), 2); // gap is silent
    }

    #[test]
    fn csv_source_missing_file_errors() {
        let doc = r#"<computation>
          <node id="t" type="csv" file="/no/such/trace.csv"/>
        </computation>"#;
        assert!(matches!(
            load_str(doc).unwrap_err(),
            SpecError::BadParam { .. }
        ));
    }

    #[test]
    fn all_source_types_instantiate() {
        for (t, extra) in [
            ("constant", r#" value="1""#),
            ("counter", ""),
            ("random-walk", ""),
            ("diurnal", ""),
            ("sparse-counter", r#" p="0.1""#),
            ("sparse-walk", r#" p="0.1""#),
            ("step-change", r#" before="1" after="2" at="3""#),
            ("bursty", ""),
        ] {
            let doc = format!(r#"<computation><node id="s" type="{t}"{extra}/></computation>"#);
            let loaded = load_str(&doc).unwrap_or_else(|e| panic!("source type {t} failed: {e}"));
            let mut seq = loaded.sequential().unwrap();
            seq.run(5).unwrap();
        }
    }

    #[test]
    fn all_module_types_instantiate() {
        for (t, extra, two_inputs) in [
            ("pass-through", "", false),
            ("sum", "", false),
            ("moving-average", "", false),
            ("ewma", "", false),
            ("threshold", r#" level="1""#, false),
            ("zscore-anomaly", "", false),
            ("regression-outlier", "", false),
            ("change-detector", "", false),
            ("debounce", "", false),
            ("sample-hold", "", true),
            ("arith", r#" op="sub""#, true),
            ("boiler", "", true),
            ("kmeans", r#" k="2""#, false),
            ("hysteresis", r#" low="1" high="2""#, false),
            ("aggregate", r#" kind="mean""#, false),
            ("all-of", "", false),
            ("any-of", "", false),
            ("true-count", "", false),
            ("rate-monitor", "", false),
            ("pair-correlation", "", true),
            ("coincidence-join", "", true),
        ] {
            let inputs = if two_inputs {
                r#"<input ref="a"/><input ref="b"/>"#
            } else {
                r#"<input ref="a"/>"#
            };
            let doc = format!(
                r#"<computation>
                  <node id="a" type="counter"/>
                  <node id="b" type="counter"/>
                  <node id="x" type="{t}"{extra}>{inputs}</node>
                </computation>"#
            );
            let loaded = load_str(&doc).unwrap_or_else(|e| panic!("module type {t} failed: {e}"));
            let mut seq = loaded.sequential().unwrap();
            seq.run(5).unwrap();
        }
    }
}
