//! `ec` — command-line front end for the event-correlation engine.
//!
//! ```text
//! ec run <spec.xml> [--threads N] [--phases N] [--sequential] [--quiet]
//! ec validate <spec.xml>
//! ec dot <spec.xml>
//! ec demo
//! ```
//!
//! `run` executes a computation spec and prints metrics and sink
//! outputs; `validate` checks the spec, graph and numbering; `dot`
//! emits Graphviz for the spec's graph; `demo` runs a built-in
//! correlator.

use event_correlation::core::EngineError;
use event_correlation::graph::{dot, Numbering, Topology};
use event_correlation::spec::{load_file, LoadedSpec};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  ec run <spec.xml> [--threads N] [--phases N] [--sequential] [--quiet]
  ec validate <spec.xml>
  ec dot <spec.xml>
  ec demo
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct RunOpts {
    spec_path: String,
    threads: Option<usize>,
    phases: Option<u64>,
    sequential: bool,
    quiet: bool,
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        spec_path: String::new(),
        threads: None,
        phases: None,
        sequential: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--phases" => {
                let v = it.next().ok_or("--phases needs a value")?;
                opts.phases = Some(v.parse().map_err(|_| format!("bad phase count {v:?}"))?);
            }
            "--sequential" => opts.sequential = true,
            "--quiet" => opts.quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => {
                if !opts.spec_path.is_empty() {
                    return Err(format!("unexpected extra argument {path:?}"));
                }
                opts.spec_path = path.to_string();
            }
        }
    }
    if opts.spec_path.is_empty() {
        return Err(format!("missing spec path\n{USAGE}"));
    }
    Ok(opts)
}

fn load(path: &str) -> Result<LoadedSpec, String> {
    load_file(path).map_err(|e| format!("loading {path:?}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_run_opts(args)?;
    let loaded = load(&opts.spec_path)?;
    let phases = opts.phases.unwrap_or(loaded.settings.phases);
    let threads = opts.threads.unwrap_or(loaded.settings.threads);
    let mut handles: Vec<(String, _)> = loaded
        .handles
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    handles.sort_by(|a, b| a.0.cmp(&b.0));

    let history = if opts.sequential {
        let mut seq = loaded
            .sequential()
            .map_err(|e| format!("building sequential executor: {e}"))?;
        seq.run(phases).map_err(fmt_engine_err)?;
        println!(
            "sequential run: {phases} phases, {} executions, {} messages",
            seq.executions, seq.messages_sent
        );
        seq.into_history()
    } else {
        let mut engine = loaded
            .engine()
            .threads(threads)
            .build()
            .map_err(fmt_engine_err)?;
        let report = engine.run(phases).map_err(fmt_engine_err)?;
        let m = &report.metrics;
        println!(
            "parallel run: {phases} phases on {threads} threads, {} executions, \
             {} messages, {} silent",
            m.executions, m.messages_sent, m.silent_executions
        );
        println!(
            "pipelining: max {} / mean {:.2} concurrent phases; \
             bookkeeping/compute ratio {:.3}",
            m.max_concurrent_phases,
            m.mean_concurrent_phases(),
            m.bookkeeping_ratio()
        );
        report.history.ok_or("history missing")?
    };

    if !opts.quiet {
        for (id, handle) in handles {
            let outs = history.sink_outputs_of(handle.vertex());
            if !outs.is_empty() {
                println!("\n{id}: {} output(s)", outs.len());
                for (phase, value) in outs.iter().take(20) {
                    println!("  phase {phase}: {value}");
                }
                if outs.len() > 20 {
                    println!("  … {} more", outs.len() - 20);
                }
            }
        }
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(format!("missing spec path\n{USAGE}"))?;
    let loaded = load(path)?;
    let dag = loaded.builder.dag();
    let numbering = Numbering::compute(dag);
    numbering
        .verify(dag)
        .map_err(|e| format!("numbering invalid (engine bug, please report): {e}"))?;
    let topo = Topology::analyze(dag);
    println!("spec OK: {path}");
    println!(
        "  {} nodes ({} sources, {} sinks), {} edges",
        dag.vertex_count(),
        dag.sources().len(),
        dag.sinks().len(),
        dag.edge_count()
    );
    println!(
        "  depth {} (max pipelinable phases), max width {}",
        topo.depth(),
        topo.max_width()
    );
    println!(
        "  settings: {} phases, {} threads, {} max in-flight",
        loaded.settings.phases, loaded.settings.threads, loaded.settings.max_inflight
    );
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(format!("missing spec path\n{USAGE}"))?;
    let loaded = load(path)?;
    let dag = loaded.builder.dag();
    let numbering = Numbering::compute(dag);
    print!("{}", dot::to_dot_numbered(dag, "computation", &numbering));
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    use event_correlation::events::sources::RandomWalk;
    use event_correlation::fusion::prelude::*;

    let mut b = CorrelatorBuilder::new();
    let sensor = b.source("sensor", RandomWalk::new(20.0, 0.5, 42));
    let avg = b.add("avg", MovingAverage::new(8), &[sensor]);
    let alarm = b.add("alarm", Threshold::above(22.0), &[avg]);
    let mut engine = b.engine().threads(4).build().map_err(fmt_engine_err)?;
    let report = engine.run(200).map_err(fmt_engine_err)?;
    let history = report.history.ok_or("history missing")?;
    println!("demo: sensor → moving-average(8) → threshold(>22), 200 phases");
    for (phase, value) in history.sink_outputs_of(alarm.vertex()) {
        println!("  phase {phase}: alarm = {value}");
    }
    Ok(())
}

fn fmt_engine_err(e: EngineError) -> String {
    e.to_string()
}
