//! `ec` — command-line front end for the event-correlation engine.
//!
//! ```text
//! ec run <spec.xml> [--threads N] [--phases N] [--sequential] [--quiet]
//! ec stream <spec.xml> [--threads N] [--epoch-count N | --epoch-ms N]
//!           [--checkpoint DIR [--snapshot-every N]]
//!           [--metrics ADDR] [--trace FILE] [--quiet]
//! ec sessions <spec.xml>... [--threads N] [--epoch-count N]
//!             [--root DIR] [--weight NAME=W] [--metrics ADDR] [--quiet]
//! ec trace <spec.xml> [stream flags] [--out FILE]
//! ec top <addr> [--interval MS] [--once]
//! ec doctor <addr> [--quiet]
//! ec recover <dir> <spec.xml> [--quiet]
//! ec validate <spec.xml>
//! ec dot <spec.xml>
//! ec demo
//! ```
//!
//! `run` executes a computation spec and prints metrics and sink
//! outputs; `stream` serves a spec live, reading CSV/NDJSON events from
//! stdin and printing sink alarms as their phases retire — with
//! `--checkpoint` the run is durable (write-ahead log + operator
//! snapshots) and restarting the same command resumes at the next
//! phase, with `--metrics` it serves live Prometheus exposition and
//! with `--trace` it records a flight-recorder timeline and writes
//! Chrome `chrome://tracing` JSON at shutdown; `sessions` serves
//! several specs as tenant sessions on one shared worker pool (events
//! are prefixed with the session name; with `--root` every tenant is
//! durable and restartable independently; `--metrics` exposes
//! per-tenant rows); `trace` is `stream` with the recorder always on,
//! writing the timeline to `--out`; `top` polls a `/metrics` endpoint
//! and renders a live one-screen summary; `doctor` fetches a runtime's
//! `/healthz` watchdog report and exits nonzero unless the verdict is
//! healthy; `recover` inspects a store,
//! prints the resumable phase and replays the logged tail through the
//! sequential oracle; `validate` checks the spec, graph and numbering;
//! `dot` emits Graphviz for the spec's graph; `demo` runs a built-in
//! correlator.

use event_correlation::core::EngineError;
use event_correlation::events::Value;
use event_correlation::graph::{dot, Numbering, Topology};
use event_correlation::runtime::{Backpressure, EpochPolicy, PushError, StreamRuntimeBuilder};
use event_correlation::spec::{load_file, LoadedSpec};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  ec run <spec.xml> [--threads N] [--phases N] [--sequential] [--quiet]
  ec stream <spec.xml> [--threads N] [--epoch-count N | --epoch-ms N]
            [--capacity N] [--reject] [--quiet]
            [--checkpoint DIR] [--snapshot-every N]
            [--metrics ADDR] [--trace FILE]
  ec sessions <spec.xml>... [--threads N] [--epoch-count N]
              [--root DIR] [--weight NAME=W] [--metrics ADDR] [--quiet]
  ec serve <spec.xml>... [--addr ADDR] [--threads N]
           [--epoch-count N | --epoch-ms N] [--capacity N] [--block]
           [--root DIR] [--weight NAME=W] [--metrics ADDR]
           [--token TOK] [--quiet]
  ec push <addr> <tenant> [--token TOK] [--batch N] [--quiet]
          [--retry N] [--session ID]
  ec trace <spec.xml> [stream flags] [--out FILE]
  ec top <addr> [--interval MS] [--once]
  ec doctor <addr> [--quiet]
  ec recover <dir> <spec.xml> [--quiet]
  ec store <dir> <inspect|verify|compact>
  ec validate <spec.xml>
  ec dot <spec.xml>
  ec demo

stream input (stdin), one event per line:
  source,value             CSV
  {\"source\": s, \"value\": v} NDJSON
  (blank line)             seal the current epoch (even an empty one)

sessions input (stdin), one event per line (session = spec file stem):
  session,source,value     CSV
  (blank line)             seal every session's epoch

durability: --checkpoint makes the stream durable (or use the spec's
  <durability dir=... snapshot-every=.../> element); rerunning the same
  command resumes at the exact next phase. `ec recover` inspects the
  store and replays the tail through the sequential oracle. `ec store`
  works on the store alone: inspect lists segments and snapshots,
  verify CRC-walks every file (nonzero exit on corruption), compact
  drops segments a snapshot already covers. For
  `ec sessions`, --root DIR namespaces an independent store per
  session under DIR; rerunning restores every tenant.

serving: `ec serve` binds a TCP wire endpoint (--addr, default
  127.0.0.1:0) in front of one session per spec (tenant = spec file
  stem) and runs until stdin closes or a client sends a Shutdown
  frame. Connections speak the length-prefixed, CRC-framed binary
  protocol (see README \"Serving\"): producers push event batches and
  get explicit FlowControl backpressure frames; subscribers stream
  retired-phase alarms in serial order. --token TOK requires clients
  to authenticate; --root DIR makes every tenant durable. `ec push`
  is the matching producer client: stdin lines as in `ec stream`
  (CSV/NDJSON, blank line seals), batched over the wire (--batch,
  default 256). With --retry N a dropped connection is redialed up to
  N times (bounded exponential backoff with jitter) under a resumable
  session (--session ID, or an auto-generated id): the client replays
  its unacked suffix and the server's per-source dedup window commits
  every acknowledged batch exactly once — reconnects never duplicate
  and never reorder a source's events. On SIGTERM/SIGINT or stdin
  EOF, `ec serve` drains instead of dropping: new sessions are
  refused, acknowledged events are flushed and committed, and
  subscribers get a Goodbye once the alarm stream is complete.

observability: --metrics ADDR (e.g. 127.0.0.1:9184, port 0 for
  ephemeral) serves Prometheus text exposition at /metrics; watch it
  live with `ec top ADDR`. The same endpoint serves the watchdog's
  health report at /healthz — `ec doctor ADDR` prints it and exits
  nonzero unless the verdict is ok. --trace FILE (or
  `ec trace ... --out FILE`) keeps a per-worker flight recorder on and
  writes the timeline as Chrome trace JSON on shutdown — open it at
  chrome://tracing.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("sessions") => cmd_sessions(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("push") => cmd_push(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct RunOpts {
    spec_path: String,
    threads: Option<usize>,
    phases: Option<u64>,
    sequential: bool,
    quiet: bool,
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        spec_path: String::new(),
        threads: None,
        phases: None,
        sequential: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = Some(v.parse().map_err(|_| format!("bad thread count {v:?}"))?);
            }
            "--phases" => {
                let v = it.next().ok_or("--phases needs a value")?;
                opts.phases = Some(v.parse().map_err(|_| format!("bad phase count {v:?}"))?);
            }
            "--sequential" => opts.sequential = true,
            "--quiet" => opts.quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => {
                if !opts.spec_path.is_empty() {
                    return Err(format!("unexpected extra argument {path:?}"));
                }
                opts.spec_path = path.to_string();
            }
        }
    }
    if opts.spec_path.is_empty() {
        return Err(format!("missing spec path\n{USAGE}"));
    }
    Ok(opts)
}

fn load(path: &str) -> Result<LoadedSpec, String> {
    load_file(path).map_err(|e| format!("loading {path:?}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_run_opts(args)?;
    let loaded = load(&opts.spec_path)?;
    let phases = opts.phases.unwrap_or(loaded.settings.phases);
    let threads = opts.threads.unwrap_or(loaded.settings.threads);
    let mut handles: Vec<(String, _)> = loaded
        .handles
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    handles.sort_by(|a, b| a.0.cmp(&b.0));

    let history = if opts.sequential {
        let mut seq = loaded
            .sequential()
            .map_err(|e| format!("building sequential executor: {e}"))?;
        seq.run(phases).map_err(fmt_engine_err)?;
        println!(
            "sequential run: {phases} phases, {} executions, {} messages",
            seq.executions, seq.messages_sent
        );
        seq.into_history()
    } else {
        let mut engine = loaded
            .engine()
            .threads(threads)
            .build()
            .map_err(fmt_engine_err)?;
        let report = engine.run(phases).map_err(fmt_engine_err)?;
        let m = &report.metrics;
        println!(
            "parallel run: {phases} phases on {threads} threads, {} executions, \
             {} messages, {} silent",
            m.executions, m.messages_sent, m.silent_executions
        );
        println!(
            "pipelining: max {} / mean {:.2} concurrent phases; \
             bookkeeping/compute ratio {:.3}",
            m.max_concurrent_phases,
            m.mean_concurrent_phases(),
            m.bookkeeping_ratio()
        );
        report.history.ok_or("history missing")?
    };

    if !opts.quiet {
        for (id, handle) in handles {
            let outs = history.sink_outputs_of(handle.vertex());
            if !outs.is_empty() {
                println!("\n{id}: {} output(s)", outs.len());
                for (phase, value) in outs.iter().take(20) {
                    println!("  phase {phase}: {value}");
                }
                if outs.len() > 20 {
                    println!("  … {} more", outs.len() - 20);
                }
            }
        }
    }
    Ok(())
}

struct StreamOpts {
    spec_path: String,
    threads: Option<usize>,
    epoch_count: Option<usize>,
    epoch_ms: Option<u64>,
    capacity: Option<usize>,
    reject: bool,
    quiet: bool,
    checkpoint: Option<String>,
    snapshot_every: Option<u64>,
    metrics: Option<String>,
    trace_out: Option<String>,
}

/// Ring capacity (events per worker lane) of the CLI flight recorder.
const TRACE_CAPACITY: usize = 8192;

fn parse_stream_opts(args: &[String]) -> Result<StreamOpts, String> {
    let mut opts = StreamOpts {
        spec_path: String::new(),
        threads: None,
        epoch_count: None,
        epoch_ms: None,
        capacity: None,
        reject: false,
        quiet: false,
        checkpoint: None,
        snapshot_every: None,
        metrics: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
        };
        match arg.as_str() {
            "--threads" => opts.threads = Some(num("--threads")? as usize),
            "--epoch-count" => opts.epoch_count = Some(num("--epoch-count")? as usize),
            "--epoch-ms" => opts.epoch_ms = Some(num("--epoch-ms")?),
            "--capacity" => opts.capacity = Some(num("--capacity")? as usize),
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a directory")?;
                opts.checkpoint = Some(v.clone());
            }
            "--snapshot-every" => opts.snapshot_every = Some(num("--snapshot-every")?),
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs an address")?;
                opts.metrics = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file")?;
                opts.trace_out = Some(v.clone());
            }
            "--reject" => opts.reject = true,
            "--quiet" => opts.quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => {
                if !opts.spec_path.is_empty() {
                    return Err(format!("unexpected extra argument {path:?}"));
                }
                opts.spec_path = path.to_string();
            }
        }
    }
    if opts.spec_path.is_empty() {
        return Err(format!("missing spec path\n{USAGE}"));
    }
    if opts.epoch_count.is_some() && opts.epoch_ms.is_some() {
        return Err("--epoch-count and --epoch-ms are mutually exclusive".into());
    }
    Ok(opts)
}

/// Parses an event line: `source,value` CSV or
/// `{"source": ..., "value": ...}` NDJSON. Returns `(source, value)`.
fn parse_event_line(line: &str) -> Result<(String, Value), String> {
    let line = line.trim();
    if line.starts_with('{') {
        let source = json_field(line, "source")?;
        let value = json_field(line, "value")?;
        Ok((unquote(&source), parse_value(&value)))
    } else {
        let (source, value) = line
            .split_once(',')
            .ok_or_else(|| format!("expected source,value: {line:?}"))?;
        Ok((source.trim().to_string(), parse_value(value.trim())))
    }
}

/// Extracts the raw text of one field from a flat JSON object. Minimal
/// by design (no external deps): handles string, number and boolean
/// values, and quoted keys in any order.
fn json_field(obj: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\"");
    let at = obj
        .find(&needle)
        .ok_or_else(|| format!("missing {key:?} in {obj:?}"))?;
    let rest = &obj[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("expected ':' after {key:?}"))?
        .trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped
            .find('"')
            .ok_or_else(|| format!("unterminated string for {key:?}"))?;
        Ok(format!("\"{}\"", &stripped[..end]))
    } else {
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated value for {key:?}"))?;
        Ok(rest[..end].trim().to_string())
    }
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

fn parse_value(raw: &str) -> Value {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        return Value::text(stripped.trim_end_matches('"'));
    }
    match raw {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    Value::text(raw)
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;

    let opts = parse_stream_opts(args)?;
    let doc = std::fs::read_to_string(&opts.spec_path)
        .map_err(|e| format!("reading {:?}: {e}", opts.spec_path))?;
    let live = event_correlation::spec::load_str_live(&doc)
        .map_err(|e| format!("loading {:?}: {e}", opts.spec_path))?;
    let settings = live.settings.clone();

    let policy = if let Some(n) = opts.epoch_count {
        EpochPolicy::ByCount(n.max(1))
    } else if let Some(ms) = opts.epoch_ms {
        EpochPolicy::ByInterval(std::time::Duration::from_millis(ms.max(1)))
    } else {
        EpochPolicy::Manual
    };
    // Durability: the --checkpoint flag wins, the spec's <durability>
    // element is the default. --snapshot-every overrides either.
    let (store_dir, mut snapshot_every, snapshot_on_flush) =
        match (&opts.checkpoint, &live.durability) {
            (Some(dir), d) => (
                Some(dir.clone()),
                d.as_ref().and_then(|d| d.snapshot_every),
                d.as_ref().is_some_and(|d| d.on_flush),
            ),
            (None, Some(d)) => (Some(d.dir.clone()), d.snapshot_every, d.on_flush),
            (None, None) => (None, None, false),
        };
    if opts.snapshot_every.is_some() {
        snapshot_every = opts.snapshot_every;
    }

    let mut builder = StreamRuntimeBuilder::from_correlator(live.builder, live.feeds)
        .threads(opts.threads.unwrap_or(settings.threads))
        .max_inflight(settings.max_inflight)
        .epoch_policy(policy)
        .record_history(false)
        .record_script(false)
        .subscribe(|e| {
            println!("[phase {}] {} = {}", e.phase, e.name, e.value);
        });
    if let Some(capacity) = opts.capacity {
        builder = builder.ingest_capacity(capacity);
    }
    if opts.reject {
        builder = builder.backpressure(Backpressure::Reject);
    }
    if let Some(addr) = &opts.metrics {
        builder = builder.metrics_addr(addr);
    }
    if opts.trace_out.is_some() {
        builder = builder.flight_recorder(TRACE_CAPACITY);
    }
    let rt = if let Some(dir) = &store_dir {
        builder = builder.durable(dir);
        if let Some(every) = snapshot_every {
            builder = builder.snapshot_every(every);
        }
        builder = builder.snapshot_on_flush(snapshot_on_flush);
        builder.build_or_restore().map_err(|e| e.to_string())?
    } else {
        builder.build().map_err(|e| e.to_string())?
    };
    if let Some(dir) = &store_dir {
        if !opts.quiet {
            eprintln!(
                "durable store {dir:?}: resuming at phase {}",
                rt.admitted() + 1
            );
        }
    }

    if let Some(addr) = rt.metrics_addr() {
        if !opts.quiet {
            eprintln!("metrics endpoint: http://{addr}/metrics (try `ec top {addr}`)");
        }
    }

    let names = rt.live_source_names();
    if !opts.quiet {
        eprintln!(
            "streaming {:?}: live sources {:?}, epoch policy {policy:?}",
            opts.spec_path, names
        );
    }
    let mut handles = std::collections::HashMap::new();
    for name in &names {
        handles.insert(
            name.clone(),
            rt.handle_by_name(name).map_err(|e| e.to_string())?,
        );
    }

    let stdin = std::io::stdin();
    let mut events: u64 = 0;
    let mut skipped: u64 = 0;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            // A blank line is an explicit epoch boundary: tick, not
            // flush, so it commits a phase even with nothing buffered
            // (scripted sources still advance).
            rt.tick().map_err(|e| e.to_string())?;
            continue;
        }
        match parse_event_line(&line) {
            Ok((source, value)) => match handles.get(&source) {
                Some(handle) => {
                    // This thread is the only sealer under the manual
                    // policy, so a full queue must be flushed here —
                    // blocking in push would deadlock the stream. Under
                    // --reject the queue is left full so overflow drops
                    // (that mode's contract).
                    if !opts.reject && handle.buffered() >= handle.capacity() {
                        rt.flush().map_err(|e| e.to_string())?;
                    }
                    match handle.push(value) {
                        Ok(()) => events += 1,
                        Err(PushError::Full) => {
                            skipped += 1;
                            eprintln!("warning: {source:?} queue full, event dropped");
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                }
                None => {
                    skipped += 1;
                    eprintln!("warning: unknown source {source:?}, event dropped");
                }
            },
            Err(msg) => {
                skipped += 1;
                eprintln!("warning: {msg}, line dropped");
            }
        }
    }
    // Dump the flight-recorder timeline before shutdown consumes the
    // runtime (draining leaves the rings empty, which is fine: the
    // process is exiting). Quiesce first so the tail of the input —
    // including its retirements — is on the timeline.
    if let Some(path) = &opts.trace_out {
        rt.flush().map_err(|e| e.to_string())?;
        rt.wait_idle().map_err(|e| e.to_string())?;
        let trace = rt.dump_trace().ok_or("flight recorder missing")?;
        std::fs::write(path, &trace).map_err(|e| format!("writing {path:?}: {e}"))?;
        if !opts.quiet {
            eprintln!(
                "trace written to {path} ({} bytes) — open chrome://tracing",
                trace.len()
            );
        }
    }
    let report = rt.shutdown().map_err(|e| e.to_string())?;
    if !opts.quiet {
        eprintln!(
            "stream done: {events} events in, {skipped} dropped, {} phases, \
             {} executions, {} sink outputs",
            report.phases, report.metrics.executions, report.metrics.sink_outputs
        );
    }
    Ok(())
}

/// `ec trace` — `ec stream` with the flight recorder always on and the
/// Chrome trace written to `--out FILE` (default `trace.json`).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut rewritten: Vec<String> = Vec::with_capacity(args.len() + 2);
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" || arg == "--trace" {
            let v = it.next().ok_or(format!("{arg} needs a file"))?;
            out = Some(v.clone());
        } else {
            rewritten.push(arg.clone());
        }
    }
    rewritten.push("--trace".into());
    rewritten.push(out.unwrap_or_else(|| "trace.json".into()));
    cmd_stream(&rewritten)
}

/// One parsed Prometheus sample from a text-exposition page.
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses Prometheus text exposition into samples, skipping comments
/// and anything unparsable (`ec top` is a viewer, not a validator).
fn parse_exposition(body: &str) -> Vec<PromSample> {
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let body = rest.strip_suffix('}').unwrap_or(rest);
                let labels = body
                    .split(',')
                    .filter_map(|kv| {
                        let (k, v) = kv.split_once('=')?;
                        Some((k.trim().to_string(), v.trim().trim_matches('"').to_string()))
                    })
                    .collect();
                (n.to_string(), labels)
            }
            None => (series.to_string(), Vec::new()),
        };
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    out
}

/// Sum of every sample named `name`, across all label sets — on a
/// session endpoint this aggregates the tenant rows.
fn prom_sum(samples: &[PromSample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Worst (largest) value of quantile `q` of the summary `name` across
/// label sets.
fn prom_quantile(samples: &[PromSample], name: &str, q: &str) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "quantile" && v == q))
        .map(|s| s.value)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
}

/// Human-readable seconds: `1.23s`, `4.5ms`, `6.7us`, `890ns`.
fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1}us", secs * 1e6)
    } else {
        format!("{:.0}ns", secs * 1e9)
    }
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut interval_ms: u64 = 2000;
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => {
                let v = it.next().ok_or("--interval needs milliseconds")?;
                interval_ms = v.parse().map_err(|_| format!("bad interval {v:?}"))?;
            }
            "--once" => once = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            a => {
                if !addr.is_empty() {
                    return Err(format!("unexpected extra argument {a:?}"));
                }
                addr = a.to_string();
            }
        }
    }
    if addr.is_empty() {
        return Err(format!("missing metrics address\n{USAGE}"));
    }

    let mut prev: Option<TopFrame> = None;
    loop {
        let body = event_correlation::obs::http_get(&addr, "/metrics").map_err(|e| {
            format!("fetching http://{addr}/metrics: {e} (is the runtime up with --metrics?)")
        })?;
        let samples = parse_exposition(&body);
        let frame = TopFrame {
            sealed: prom_sum(&samples, "ec_seal_events_total"),
            session_events: samples
                .iter()
                .filter(|s| s.name == "ec_session_events_committed_total")
                .filter_map(|s| {
                    let session = s.labels.iter().find(|(k, _)| k == "session")?;
                    Some((session.1.clone(), s.value))
                })
                .collect(),
            at: std::time::Instant::now(),
        };
        // Rates are deltas against the previous refresh, so they track
        // *current* throughput rather than the lifetime average.
        let (rate, session_rates) = match &prev {
            Some(last) => {
                let dt = frame.at.duration_since(last.at).as_secs_f64().max(1e-9);
                let per_session = frame
                    .session_events
                    .iter()
                    .map(|(name, events)| {
                        let before = last.session_events.get(name).copied().unwrap_or(0.0);
                        (name.clone(), (events - before) / dt)
                    })
                    .collect();
                (Some((frame.sealed - last.sealed) / dt), per_session)
            }
            None => (None, std::collections::HashMap::new()),
        };
        prev = Some(frame);
        render_top(&addr, &samples, rate, &session_rates);
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// Counter values remembered between `ec top` refreshes (rate deltas).
struct TopFrame {
    sealed: f64,
    session_events: std::collections::HashMap<String, f64>,
    at: std::time::Instant,
}

/// Fetches `/healthz` from a runtime's metrics endpoint, prints the
/// watchdog report and exits nonzero unless every verdict is ok.
fn cmd_doctor(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--quiet" => quiet = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            a => {
                if !addr.is_empty() {
                    return Err(format!("unexpected extra argument {a:?}"));
                }
                addr = a.to_string();
            }
        }
    }
    if addr.is_empty() {
        return Err(format!("missing metrics address\n{USAGE}"));
    }
    let body = event_correlation::obs::http_get(&addr, "/healthz").map_err(|e| {
        format!("fetching http://{addr}/healthz: {e} (is the runtime up with --metrics?)")
    })?;
    if !quiet {
        println!("{body}");
    }
    let verdict = json_field(&body, "verdict").map(|v| unquote(&v))?;
    let mut reasons = Vec::new();
    for chunk in body.split("\"reasons\":[").skip(1) {
        let end = chunk.find(']').unwrap_or(chunk.len());
        for reason in chunk[..end].split("\",\"") {
            let reason = reason.trim_matches('"');
            if !reason.is_empty() {
                reasons.push(reason.to_string());
            }
        }
    }
    match verdict.as_str() {
        "ok" => {
            println!("healthy: verdict ok");
            Ok(())
        }
        other => {
            for reason in &reasons {
                eprintln!("  - {reason}");
            }
            Err(format!("health verdict: {other}"))
        }
    }
}

/// Renders one `ec top` frame from a scraped sample set.
fn render_top(
    addr: &str,
    samples: &[PromSample],
    rate: Option<f64>,
    session_rates: &std::collections::HashMap<String, f64>,
) {
    let g = |name: &str| prom_sum(samples, name);
    let rate = rate.map_or(String::new(), |r| format!("   {r:.0} ev/s"));
    println!("ec top {addr} — {} samples", samples.len());
    println!(
        "  phases   started {:.0}   completed {:.0}   max pipeline depth {:.0}",
        g("ec_phases_started_total"),
        g("ec_phases_completed_total"),
        g("ec_pipeline_depth_max"),
    );
    println!(
        "  events   sealed {:.0}{rate}   executions {:.0} ({:.0} silent)   \
         messages {:.0}   sinks {:.0}",
        g("ec_seal_events_total"),
        g("ec_executions_total"),
        g("ec_silent_executions_total"),
        g("ec_messages_total"),
        g("ec_sink_outputs_total"),
    );
    println!(
        "  sched    steals {:.0}   parks {:.0}   wakes {:.0}   injector {:.0}",
        g("ec_steals_total"),
        g("ec_parks_total"),
        g("ec_wakes_total"),
        g("ec_injector_depth"),
    );
    println!(
        "  ingest   depth {:.0}   waits {:.0}   seal batches {:.0}",
        g("ec_ingest_depth"),
        g("ec_ingest_waits_total"),
        g("ec_seal_batches_total"),
    );
    for (label, series) in [
        ("phase", "ec_phase_seconds"),
        ("exec", "ec_exec_seconds"),
        ("wal", "ec_wal_commit_seconds"),
        ("in-wait", "ec_ingest_wait_seconds"),
        ("e2e", "ec_e2e_seconds"),
    ] {
        let count = prom_sum(samples, &format!("{series}_count"));
        if count == 0.0 {
            continue;
        }
        let q = |q: &str| prom_quantile(samples, series, q).map_or_else(|| "-".into(), fmt_secs);
        println!(
            "  {label:<8} p50 {}   p95 {}   p99 {}   max {}   (n={count:.0})",
            q("0.5"),
            q("0.95"),
            q("0.99"),
            q("1"),
        );
    }
    // Per-tenant rows, present when the endpoint is a SessionPool's.
    let mut tenants: Vec<&PromSample> = samples
        .iter()
        .filter(|s| s.name == "ec_session_events_per_sec")
        .collect();
    let session_of = |s: &PromSample| {
        s.labels
            .iter()
            .find(|(k, _)| k == "session")
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    tenants.sort_by_key(|s| session_of(s));
    for t in tenants {
        let session = session_of(t);
        let f = |name: &str| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels
                            .iter()
                            .any(|(k, v)| k == "session" && *v == session)
                })
                .map_or(0.0, |s| s.value)
        };
        // Per-tenant e2e quantiles from the merged session summary.
        let q = |q: &str| {
            samples
                .iter()
                .find(|s| {
                    s.name == "ec_session_e2e_seconds"
                        && s.labels
                            .iter()
                            .any(|(k, v)| k == "session" && *v == session)
                        && s.labels.iter().any(|(k, v)| k == "quantile" && v == q)
                })
                .map_or_else(|| "-".into(), |s| fmt_secs(s.value))
        };
        let delta = session_rates
            .get(&session)
            .map_or(String::new(), |r| format!(", {r:.0} ev/s now"));
        println!(
            "  session {session}: {:.0} phases retired, {:.0} events, {:.0} ev/s{delta}, \
             {:.0} in flight, e2e p95 {} p99 {}",
            f("ec_session_phases_retired_total"),
            f("ec_session_events_committed_total"),
            t.value,
            f("ec_session_inflight"),
            q("0.95"),
            q("0.99"),
        );
    }
    println!();
}

struct SessionsOpts {
    spec_paths: Vec<String>,
    threads: Option<usize>,
    epoch_count: Option<usize>,
    root: Option<String>,
    weights: Vec<(String, u32)>,
    metrics: Option<String>,
    quiet: bool,
}

fn parse_sessions_opts(args: &[String]) -> Result<SessionsOpts, String> {
    let mut opts = SessionsOpts {
        spec_paths: Vec::new(),
        threads: None,
        epoch_count: None,
        root: None,
        weights: Vec::new(),
        metrics: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
        };
        match arg.as_str() {
            "--threads" => opts.threads = Some(num("--threads")? as usize),
            "--epoch-count" => opts.epoch_count = Some(num("--epoch-count")? as usize),
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = Some(v.clone());
            }
            "--weight" => {
                let v = it.next().ok_or("--weight needs NAME=W")?;
                let (name, w) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--weight expects NAME=W, got {v:?}"))?;
                let w: u32 = w.parse().map_err(|_| format!("bad weight in {v:?}"))?;
                opts.weights.push((name.to_string(), w));
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs an address")?;
                opts.metrics = Some(v.clone());
            }
            "--quiet" => opts.quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => opts.spec_paths.push(path.to_string()),
        }
    }
    if opts.spec_paths.is_empty() {
        return Err(format!("missing spec paths\n{USAGE}"));
    }
    Ok(opts)
}

/// Session name for a spec path: the file stem.
fn session_name(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn cmd_sessions(args: &[String]) -> Result<(), String> {
    use event_correlation::runtime::SessionPool;
    use std::io::BufRead;

    let opts = parse_sessions_opts(args)?;
    let names: Vec<String> = opts.spec_paths.iter().map(|p| session_name(p)).collect();
    {
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != names.len() {
            return Err(format!(
                "session names (spec file stems) must be unique, got {names:?}"
            ));
        }
    }
    // A --weight for a session that does not exist is almost certainly
    // a typo; failing beats silently running with the default weight.
    for (weight_name, _) in &opts.weights {
        if !names.iter().any(|n| n == weight_name) {
            return Err(format!(
                "--weight names unknown session {weight_name:?} (sessions: {names:?})"
            ));
        }
    }

    let mut pool_builder = SessionPool::builder()
        .threads(opts.threads.unwrap_or(4))
        .max_sessions(opts.spec_paths.len());
    if let Some(root) = &opts.root {
        pool_builder = pool_builder.durable_root(root);
    }
    let pool = pool_builder.build();
    if let Some(addr) = &opts.metrics {
        let bound = pool.serve_metrics(addr).map_err(|e| e.to_string())?;
        if !opts.quiet {
            eprintln!("metrics endpoint: http://{bound}/metrics (try `ec top {bound}`)");
        }
    }

    let mut sessions = std::collections::HashMap::new();
    for (path, name) in opts.spec_paths.iter().zip(&names) {
        let doc = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
        let live = event_correlation::spec::load_str_live(&doc)
            .map_err(|e| format!("loading {path:?}: {e}"))?;
        let mut builder = StreamRuntimeBuilder::from_correlator(live.builder, live.feeds)
            .max_inflight(live.settings.max_inflight)
            .record_history(false)
            .record_script(false);
        if let Some(n) = opts.epoch_count {
            builder = builder.epoch_policy(EpochPolicy::ByCount(n.max(1)));
        }
        // Last --weight wins when a name is repeated.
        if let Some(&(_, w)) = opts.weights.iter().rev().find(|(n, _)| n == name) {
            builder = builder.pool_weight(w);
        }
        let tag = name.clone();
        builder = builder.subscribe(move |e| {
            println!("[{tag} phase {}] {} = {}", e.phase, e.name, e.value);
        });
        let session = pool
            .open(name.clone(), builder)
            .map_err(|e| format!("opening session {name:?}: {e}"))?;
        if !opts.quiet {
            eprintln!(
                "session {name:?} ({path}): live sources {:?}, resuming at phase {}",
                session.live_source_names(),
                session.admitted() + 1
            );
        }
        sessions.insert(name.clone(), session);
    }
    if !opts.quiet {
        eprintln!(
            "serving {} session(s) on {} shared worker(s)",
            sessions.len(),
            pool.threads()
        );
    }

    let stdin = std::io::stdin();
    let mut events: u64 = 0;
    let mut skipped: u64 = 0;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            for session in sessions.values() {
                session.tick().map_err(|e| e.to_string())?;
            }
            continue;
        }
        let Some((session_name, rest)) = line.split_once(',') else {
            skipped += 1;
            eprintln!("warning: expected session,source,value: {line:?}, line dropped");
            continue;
        };
        let Some(session) = sessions.get(session_name.trim()) else {
            skipped += 1;
            eprintln!("warning: unknown session {session_name:?}, event dropped");
            continue;
        };
        match parse_event_line(rest) {
            Ok((source, value)) => match session.handle_by_name(&source) {
                Ok(handle) => {
                    // The manual policy's only sealer is this thread:
                    // flush a full queue here instead of blocking.
                    if handle.buffered() >= handle.capacity() {
                        session.flush().map_err(|e| e.to_string())?;
                    }
                    handle.push(value).map_err(|e| e.to_string())?;
                    events += 1;
                }
                Err(_) => {
                    skipped += 1;
                    eprintln!("warning: unknown source {source:?}, event dropped");
                }
            },
            Err(msg) => {
                skipped += 1;
                eprintln!("warning: {msg}, line dropped");
            }
        }
    }

    // Final seal + per-tenant summary rows, then clean shutdown.
    for session in sessions.values() {
        session.flush().map_err(|e| e.to_string())?;
        session.wait_idle().map_err(|e| e.to_string())?;
    }
    if !opts.quiet {
        eprintln!("sessions done: {events} events in, {skipped} dropped");
        let mut rows = pool.metrics();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        for row in rows {
            eprintln!(
                "  {}: {} phases retired, {} events, {} executions, {:.0} ev/s",
                row.name,
                row.phases_retired,
                row.events_committed,
                row.engine.executions,
                row.events_per_sec
            );
        }
    }
    for (_, session) in sessions.drain() {
        session.close().map_err(|e| e.to_string())?;
    }
    Ok(())
}

struct ServeOpts {
    spec_paths: Vec<String>,
    addr: String,
    threads: Option<usize>,
    epoch_count: Option<usize>,
    epoch_ms: Option<u64>,
    capacity: Option<usize>,
    block: bool,
    root: Option<String>,
    weights: Vec<(String, u32)>,
    metrics: Option<String>,
    token: Option<String>,
    quiet: bool,
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts, String> {
    let mut opts = ServeOpts {
        spec_paths: Vec::new(),
        addr: "127.0.0.1:0".into(),
        threads: None,
        epoch_count: None,
        epoch_ms: None,
        capacity: None,
        block: false,
        root: None,
        weights: Vec::new(),
        metrics: None,
        token: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("bad {flag} value {v:?}"))
        };
        match arg.as_str() {
            "--addr" => {
                let v = it.next().ok_or("--addr needs an address")?;
                opts.addr = v.clone();
            }
            "--threads" => opts.threads = Some(num("--threads")? as usize),
            "--epoch-count" => opts.epoch_count = Some(num("--epoch-count")? as usize),
            "--epoch-ms" => opts.epoch_ms = Some(num("--epoch-ms")?),
            "--capacity" => opts.capacity = Some(num("--capacity")? as usize),
            "--block" => opts.block = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = Some(v.clone());
            }
            "--weight" => {
                let v = it.next().ok_or("--weight needs NAME=W")?;
                let (name, w) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--weight expects NAME=W, got {v:?}"))?;
                let w: u32 = w.parse().map_err(|_| format!("bad weight in {v:?}"))?;
                opts.weights.push((name.to_string(), w));
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs an address")?;
                opts.metrics = Some(v.clone());
            }
            "--token" => {
                let v = it.next().ok_or("--token needs a value")?;
                opts.token = Some(v.clone());
            }
            "--quiet" => opts.quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => opts.spec_paths.push(path.to_string()),
        }
    }
    if opts.spec_paths.is_empty() {
        return Err(format!("missing spec paths\n{USAGE}"));
    }
    if opts.epoch_count.is_some() && opts.epoch_ms.is_some() {
        return Err("--epoch-count and --epoch-ms are mutually exclusive".into());
    }
    Ok(opts)
}

/// Termination-signal latch for `ec serve`: SIGTERM/SIGINT set a flag
/// the serve loop polls, turning supervisor stops into graceful
/// drains. Raw `signal(2)` FFI — the handler only stores an atomic,
/// which is async-signal-safe, and no external crate is needed.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FIRED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        FIRED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn fired() -> bool {
        FIRED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}

    pub fn fired() -> bool {
        false
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use event_correlation::runtime::{SessionPool, WireServer};

    let opts = parse_serve_opts(args)?;
    let names: Vec<String> = opts.spec_paths.iter().map(|p| session_name(p)).collect();
    {
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != names.len() {
            return Err(format!(
                "tenant names (spec file stems) must be unique, got {names:?}"
            ));
        }
    }
    for (weight_name, _) in &opts.weights {
        if !names.iter().any(|n| n == weight_name) {
            return Err(format!(
                "--weight names unknown tenant {weight_name:?} (tenants: {names:?})"
            ));
        }
    }

    let mut pool_builder = SessionPool::builder()
        .threads(opts.threads.unwrap_or(4))
        .max_sessions(opts.spec_paths.len());
    if let Some(root) = &opts.root {
        pool_builder = pool_builder.durable_root(root);
    }
    let pool = pool_builder.build();

    let mut sessions = Vec::new();
    for (path, name) in opts.spec_paths.iter().zip(&names) {
        let doc = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
        let live = event_correlation::spec::load_str_live(&doc)
            .map_err(|e| format!("loading {path:?}: {e}"))?;
        let mut builder = StreamRuntimeBuilder::from_correlator(live.builder, live.feeds)
            .max_inflight(live.settings.max_inflight)
            .record_history(false)
            .record_script(false)
            // Reject turns a full source into explicit FlowControl
            // frames; --block trades that for in-server waiting.
            .backpressure(if opts.block {
                Backpressure::Block
            } else {
                Backpressure::Reject
            });
        if let Some(n) = opts.capacity {
            builder = builder.ingest_capacity(n.max(1));
        }
        if let Some(n) = opts.epoch_count {
            builder = builder.epoch_policy(EpochPolicy::ByCount(n.max(1)));
        }
        if let Some(ms) = opts.epoch_ms {
            builder = builder.epoch_policy(EpochPolicy::ByInterval(
                std::time::Duration::from_millis(ms.max(1)),
            ));
        }
        if let Some(&(_, w)) = opts.weights.iter().rev().find(|(n, _)| n == name) {
            builder = builder.pool_weight(w);
        }
        let session = pool
            .open(name.clone(), builder)
            .map_err(|e| format!("opening tenant {name:?}: {e}"))?;
        if !opts.quiet {
            eprintln!(
                "tenant {name:?} ({path}): live sources {:?}, resuming at phase {}",
                session.live_source_names(),
                session.admitted() + 1
            );
        }
        sessions.push(session);
    }

    let mut server_builder = WireServer::builder();
    if let Some(token) = &opts.token {
        server_builder = server_builder.token(token.clone());
    }
    if let Some(addr) = &opts.metrics {
        server_builder = server_builder.metrics_addr(addr.clone());
    }
    let server = server_builder
        .bind(&opts.addr, pool, sessions)
        .map_err(|e| e.to_string())?;
    // The endpoint lines go to stderr before any blocking read so a
    // harness can scrape the ephemeral ports while the server is live.
    eprintln!(
        "wire endpoint: {} (tenants: {names:?})",
        server.local_addr()
    );
    if let Some(m) = server.metrics_addr() {
        eprintln!("metrics endpoint: http://{m}/metrics (try `ec doctor {m}`)");
    }
    if !opts.quiet {
        eprintln!("serving until stdin closes or a Shutdown frame arrives");
    }

    // Serve until the process is asked to stop: stdin EOF (the
    // supervisor hung up), SIGTERM/SIGINT, or a client's Shutdown
    // frame. The first two drain — refuse new sessions, flush and
    // commit every acknowledged event, say goodbye to subscribers —
    // because the peers were given no say; a Shutdown frame is an
    // explicit client request, so it stops directly.
    term_signal::install();
    let stdin_eof = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let eof_flag = std::sync::Arc::clone(&stdin_eof);
    std::thread::spawn(move || {
        use std::io::Read;
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        eof_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let drain = loop {
        if server.stop_requested() {
            break false;
        }
        if stdin_eof.load(std::sync::atomic::Ordering::Relaxed) || term_signal::fired() {
            break true;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };

    let stats = server.stats();
    if drain && !opts.quiet {
        eprintln!("draining: refusing new sessions, flushing acked events");
    }
    let reports = if drain {
        server.drain()
    } else {
        server.shutdown()
    };
    if !opts.quiet {
        eprintln!(
            "serve done: {} connections, {} events in, {} alarms out, {} flow blocks, \
             {} refused",
            stats.connections_total,
            stats.events_in,
            stats.alarms_out,
            stats.flow_blocks,
            stats.refused
        );
    }
    let mut failed = Vec::new();
    for (name, report) in reports {
        match report {
            Ok(r) => {
                if !opts.quiet {
                    eprintln!("  {name}: {} phases committed", r.phases);
                }
            }
            Err(e) => failed.push(format!("{name}: {e}")),
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!("tenant shutdown failed: {}", failed.join("; ")))
    }
}

struct PushOpts {
    addr: String,
    tenant: String,
    token: String,
    batch: usize,
    retry: Option<u32>,
    session: Option<String>,
    quiet: bool,
}

fn parse_push_opts(args: &[String]) -> Result<PushOpts, String> {
    let mut positional = Vec::new();
    let mut token = String::new();
    let mut batch = 256usize;
    let mut retry = None;
    let mut session = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--token" => {
                token = it.next().ok_or("--token needs a value")?.clone();
            }
            "--batch" => {
                let v = it.next().ok_or("--batch needs a value")?;
                batch = v.parse().map_err(|_| format!("bad --batch value {v:?}"))?;
            }
            "--retry" => {
                let v = it.next().ok_or("--retry needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retry value {v:?}"))?;
                retry = Some(n.max(1));
            }
            "--session" => {
                session = Some(it.next().ok_or("--session needs a value")?.clone());
            }
            "--quiet" => quiet = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            _ => positional.push(arg.clone()),
        }
    }
    let [addr, tenant] = positional.as_slice() else {
        return Err(format!("usage: ec push <addr> <tenant>\n{USAGE}"));
    };
    Ok(PushOpts {
        addr: addr.clone(),
        tenant: tenant.clone(),
        token,
        batch: batch.max(1),
        retry,
        session,
        quiet,
    })
}

fn cmd_push(args: &[String]) -> Result<(), String> {
    use event_correlation::runtime::serve::Role;
    use event_correlation::runtime::{RetryPolicy, WireClient};
    use std::io::BufRead;

    let opts = parse_push_opts(args)?;
    let mut builder = WireClient::builder().token(&opts.token);
    if let Some(attempts) = opts.retry {
        builder = builder.retry(RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::default()
        });
    }
    if let Some(session) = &opts.session {
        builder = builder.session(session.clone());
    }
    let mut client = builder
        .connect(&opts.addr, &opts.tenant, Role::Producer)
        .map_err(|e| format!("connecting to {}: {e}", opts.addr))?;
    if !opts.quiet {
        eprintln!(
            "connected to {} as tenant {:?}, sources {:?}{}",
            opts.addr,
            client.tenant(),
            client.sources(),
            match client.session() {
                Some(id) => format!(", session {id:?}"),
                None => String::new(),
            }
        );
    }

    // One pending batch per source; flushed at --batch events, on a
    // blank line (followed by a Seal), and at EOF.
    let mut pending: Vec<Vec<Value>> = vec![Vec::new(); client.sources().len()];
    let mut events: u64 = 0;
    let mut acked: u64 = 0;
    let mut skipped: u64 = 0;
    let mut seals: u64 = 0;
    let flush_pending = |client: &mut WireClient,
                         pending: &mut Vec<Vec<Value>>,
                         acked: &mut u64|
     -> Result<(), String> {
        for (i, values) in pending.iter_mut().enumerate() {
            if values.is_empty() {
                continue;
            }
            let accepted = client
                .push_batch(i as u32, values)
                .map_err(|e| format!("push batch for source {i}: {e}"))?;
            *acked += accepted as u64;
            values.clear();
        }
        Ok(())
    };

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            flush_pending(&mut client, &mut pending, &mut acked)?;
            client.seal().map_err(|e| format!("seal: {e}"))?;
            seals += 1;
            continue;
        }
        match parse_event_line(&line) {
            Ok((source, value)) => match client.source_index(&source) {
                Some(i) => {
                    pending[i as usize].push(value);
                    events += 1;
                    if pending[i as usize].len() >= opts.batch {
                        flush_pending(&mut client, &mut pending, &mut acked)?;
                    }
                }
                None => {
                    skipped += 1;
                    eprintln!("warning: unknown source {source:?}, event dropped");
                }
            },
            Err(msg) => {
                skipped += 1;
                eprintln!("warning: {msg}, line dropped");
            }
        }
    }
    flush_pending(&mut client, &mut pending, &mut acked)?;
    if !opts.quiet {
        eprintln!(
            "push done: {events} events in ({acked} acked), {skipped} dropped, {seals} seals, \
             {} flow blocks, {} reconnects",
            client.blocks_seen(),
            client.reconnects()
        );
    }
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    use event_correlation::store::{Recovery, WalTail};

    let mut positional: Vec<&String> = Vec::new();
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--quiet" => quiet = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(arg),
        }
    }
    let [dir, spec_path] = positional.as_slice() else {
        return Err(format!("usage: ec recover <dir> <spec.xml>\n{USAGE}"));
    };

    let rec = Recovery::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    println!("store {dir}:");
    println!("  sources: {:?}", rec.sources);
    println!("  committed phases: {}", rec.committed_phases());
    println!(
        "  wal: {} segment(s), {} row(s) compacted away",
        rec.segments.len(),
        rec.base_rows
    );
    match &rec.tail {
        WalTail::Clean => println!("  wal tail: clean"),
        WalTail::Torn { dropped_bytes } => {
            println!("  wal tail: torn record dropped ({dropped_bytes} bytes)")
        }
        WalTail::Corrupt {
            at_row,
            dropped_bytes,
            message,
        } => println!(
            "  wal tail: CORRUPT at row {at_row} ({message}); {dropped_bytes} bytes dropped"
        ),
    }
    for (path, reason) in &rec.skipped_snapshots {
        println!("  skipped snapshot {}: {reason}", path.display());
    }
    println!(
        "  snapshot: phase {} ({} tail row(s) to replay)",
        rec.snapshot_phase(),
        rec.tail_rows().len()
    );
    println!("  resumable at phase {}", rec.resume_phase());

    // Replay the whole committed log through the sequential oracle —
    // the uninterrupted reference run — and show the tail's outputs.
    let doc =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path:?}: {e}"))?;
    let live = event_correlation::spec::load_str_live(&doc)
        .map_err(|e| format!("loading {spec_path:?}: {e}"))?;
    let live_names: Vec<&str> = live.feeds.iter().map(|(id, _, _)| id.as_str()).collect();
    let rec_names: Vec<&str> = rec.sources.iter().map(String::as_str).collect();
    if live_names != rec_names {
        return Err(format!(
            "store records live sources {rec_names:?}, spec has {live_names:?}"
        ));
    }
    if rec.base_rows > 0 {
        // The oracle needs the log from phase 1; a compacted store
        // only holds the tail — its early state lives in the snapshot
        // chain, which `restore` (not a scripted replay) reconstructs.
        println!(
            "\n{} row(s) compacted away; skipping oracle replay (state \
             comes from the snapshot chain — see `ec store {dir} inspect`)",
            rec.base_rows
        );
        return Ok(());
    }
    for row in &rec.rows {
        for ((_, _, writer), bin) in live.feeds.iter().zip(row.iter()) {
            writer.stage(bin.clone());
        }
    }
    let mut handles: Vec<(String, _)> = live.handles.iter().map(|(k, v)| (k.clone(), *v)).collect();
    handles.sort_by(|a, b| a.0.cmp(&b.0));
    let mut seq = live
        .builder
        .sequential()
        .map_err(|e| format!("building oracle: {e}"))?;
    seq.run(rec.committed_phases())
        .map_err(|e| format!("oracle replay: {e}"))?;
    let history = seq.into_history();
    if !quiet {
        let base = rec.snapshot_phase();
        println!(
            "\nreplayed tail (phases {}..={}):",
            base + 1,
            rec.committed_phases()
        );
        for (id, handle) in handles {
            let outs: Vec<_> = history
                .sink_outputs_of(handle.vertex())
                .into_iter()
                .filter(|(p, _)| p.get() > base)
                .collect();
            if outs.is_empty() {
                continue;
            }
            println!("  {id}: {} output(s)", outs.len());
            for (phase, value) in outs.iter().take(20) {
                println!("    phase {phase}: {value}");
            }
            if outs.len() > 20 {
                println!("    … {} more", outs.len() - 20);
            }
        }
    }
    Ok(())
}

fn cmd_store(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown flag {flag:?}"));
    }
    let [dir, action] = args else {
        return Err(format!(
            "usage: ec store <dir> <inspect|verify|compact>\n{USAGE}"
        ));
    };
    let dir = std::path::Path::new(dir.as_str());
    match action.as_str() {
        "inspect" => store_inspect(dir),
        "verify" => store_verify(dir),
        "compact" => store_compact(dir),
        other => Err(format!(
            "unknown store action {other:?}; expected inspect, verify or compact"
        )),
    }
}

fn store_inspect(dir: &std::path::Path) -> Result<(), String> {
    use event_correlation::store::{list_snapshot_files, Recovery, WalTail};

    let rec = Recovery::open(dir).map_err(|e| e.to_string())?;
    println!("store {}:", dir.display());
    println!(
        "  layout: {}",
        if rec.is_segmented() {
            "segmented"
        } else {
            "legacy single-file"
        }
    );
    println!("  sources: {:?}", rec.sources);
    println!(
        "  committed phases: {} ({} compacted away)",
        rec.committed_phases(),
        rec.base_rows
    );
    println!("  segments:");
    for seg in &rec.segments {
        let name = seg
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| seg.path.display().to_string());
        println!(
            "    {name}: {} row(s) after row {}, {} bytes",
            seg.rows, seg.first_row, seg.bytes
        );
    }
    let snaps = list_snapshot_files(dir).map_err(|e| e.to_string())?;
    println!("  snapshot files:");
    for f in &snaps {
        println!(
            "    phase {} ({})",
            f.phase,
            if f.delta { "delta" } else { "full" }
        );
    }
    println!(
        "  usable snapshot: phase {} ({} tail row(s) to replay)",
        rec.snapshot_phase(),
        rec.tail_rows().len()
    );
    match &rec.tail {
        WalTail::Clean => println!("  wal tail: clean"),
        WalTail::Torn { dropped_bytes } => {
            println!("  wal tail: torn record dropped ({dropped_bytes} bytes)")
        }
        WalTail::Corrupt {
            at_row,
            dropped_bytes,
            message,
        } => println!(
            "  wal tail: CORRUPT at row {at_row} ({message}); {dropped_bytes} bytes dropped"
        ),
    }
    for (path, reason) in &rec.skipped_manifests {
        println!("  skipped manifest {}: {reason}", path.display());
    }
    for (path, reason) in &rec.skipped_snapshots {
        println!("  skipped snapshot {}: {reason}", path.display());
    }
    println!("  resumable at phase {}", rec.resume_phase());
    Ok(())
}

fn store_verify(dir: &std::path::Path) -> Result<(), String> {
    use event_correlation::store::{list_snapshot_files, read_snapshot, Recovery, WalTail};

    // Recovery::open CRC-walks every WAL segment and the manifest
    // chain; list + read covers every snapshot file on disk, deltas
    // included, not just the chain recovery would pick.
    let rec = Recovery::open(dir).map_err(|e| format!("store {}: {e}", dir.display()))?;
    let mut problems = Vec::new();
    match &rec.tail {
        WalTail::Clean => {}
        // A torn final record is the expected shape of a crash;
        // recovery drops it. Report it, but it is not corruption.
        WalTail::Torn { dropped_bytes } => {
            println!("note: torn WAL tail ({dropped_bytes} bytes) — recovery will drop it")
        }
        WalTail::Corrupt {
            at_row,
            dropped_bytes,
            message,
        } => problems.push(format!(
            "WAL corrupt at row {at_row}: {message} ({dropped_bytes} bytes dropped)"
        )),
    }
    for (path, reason) in &rec.skipped_manifests {
        problems.push(format!("manifest {}: {reason}", path.display()));
    }
    let snaps = list_snapshot_files(dir).map_err(|e| e.to_string())?;
    for f in &snaps {
        if let Err(e) = read_snapshot(&f.path) {
            problems.push(format!("snapshot {}: {e}", f.path.display()));
        }
    }
    if problems.is_empty() {
        println!(
            "store {} OK: {} segment(s), {} replayable row(s), {} snapshot file(s)",
            dir.display(),
            rec.segments.len(),
            rec.rows.len(),
            snaps.len()
        );
        Ok(())
    } else {
        Err(format!(
            "store {} has {} problem(s):\n  {}",
            dir.display(),
            problems.len(),
            problems.join("\n  ")
        ))
    }
}

fn store_compact(dir: &std::path::Path) -> Result<(), String> {
    let report = event_correlation::store::compact_store(dir).map_err(|e| e.to_string())?;
    if report.changed() {
        println!(
            "compacted store {}: dropped {} segment(s) ({} bytes); log now starts at row {}",
            dir.display(),
            report.removed_segments.len(),
            report.removed_bytes,
            report.base_rows
        );
    } else {
        println!(
            "store {}: nothing to compact (log starts at row {})",
            dir.display(),
            report.base_rows
        );
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(format!("missing spec path\n{USAGE}"))?;
    let loaded = load(path)?;
    let dag = loaded.builder.dag();
    let numbering = Numbering::compute(dag);
    numbering
        .verify(dag)
        .map_err(|e| format!("numbering invalid (engine bug, please report): {e}"))?;
    let topo = Topology::analyze(dag);
    println!("spec OK: {path}");
    println!(
        "  {} nodes ({} sources, {} sinks), {} edges",
        dag.vertex_count(),
        dag.sources().len(),
        dag.sinks().len(),
        dag.edge_count()
    );
    println!(
        "  depth {} (max pipelinable phases), max width {}",
        topo.depth(),
        topo.max_width()
    );
    println!(
        "  settings: {} phases, {} threads, {} max in-flight",
        loaded.settings.phases, loaded.settings.threads, loaded.settings.max_inflight
    );
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(format!("missing spec path\n{USAGE}"))?;
    let loaded = load(path)?;
    let dag = loaded.builder.dag();
    let numbering = Numbering::compute(dag);
    print!("{}", dot::to_dot_numbered(dag, "computation", &numbering));
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    use event_correlation::events::sources::RandomWalk;
    use event_correlation::fusion::prelude::*;

    let mut b = CorrelatorBuilder::new();
    let sensor = b.source("sensor", RandomWalk::new(20.0, 0.5, 42));
    let avg = b.add("avg", MovingAverage::new(8), &[sensor]);
    let alarm = b.add("alarm", Threshold::above(22.0), &[avg]);
    let mut engine = b.engine().threads(4).build().map_err(fmt_engine_err)?;
    let report = engine.run(200).map_err(fmt_engine_err)?;
    let history = report.history.ok_or("history missing")?;
    println!("demo: sensor → moving-average(8) → threshold(>22), 200 phases");
    for (phase, value) in history.sink_outputs_of(alarm.vertex()) {
        println!("  phase {phase}: alarm = {value}");
    }
    Ok(())
}

fn fmt_engine_err(e: EngineError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parsing_handles_labels_and_comments() {
        let page = "# HELP ec_executions_total x\n# TYPE ec_executions_total counter\n\
                    ec_executions_total 42\n\
                    ec_worker_queue_depth{worker=\"0\"} 3\n\
                    ec_worker_queue_depth{worker=\"1\"} 4\n\
                    ec_phase_seconds{quantile=\"0.5\"} 0.001\n\
                    ec_phase_seconds{quantile=\"0.99\"} 0.25\n\
                    garbage line without a number x\n";
        let samples = parse_exposition(page);
        assert_eq!(samples.len(), 5);
        assert_eq!(prom_sum(&samples, "ec_executions_total"), 42.0);
        assert_eq!(prom_sum(&samples, "ec_worker_queue_depth"), 7.0);
        assert_eq!(
            prom_quantile(&samples, "ec_phase_seconds", "0.5"),
            Some(0.001)
        );
        assert_eq!(prom_quantile(&samples, "ec_phase_seconds", "0.95"), None);
    }

    #[test]
    fn quantile_takes_the_worst_tenant() {
        let page = "ec_phase_seconds{session=\"a\",quantile=\"0.5\"} 0.001\n\
                    ec_phase_seconds{session=\"b\",quantile=\"0.5\"} 0.030\n";
        let samples = parse_exposition(page);
        assert_eq!(
            prom_quantile(&samples, "ec_phase_seconds", "0.5"),
            Some(0.030)
        );
    }

    #[test]
    fn seconds_format_picks_a_sane_unit() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0042), "4.2ms");
        assert_eq!(fmt_secs(0.0000042), "4.2us");
        assert_eq!(fmt_secs(0.000000250), "250ns");
    }

    #[test]
    fn stream_opts_parse_observability_flags() {
        let args: Vec<String> = ["spec.xml", "--metrics", "127.0.0.1:0", "--trace", "t.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_stream_opts(&args).expect("parses");
        assert_eq!(opts.metrics.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
    }
}
