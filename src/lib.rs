//! # event-correlation
//!
//! A serializable Δ-dataflow engine for parallel correlation of event
//! streams — a from-scratch Rust reproduction of **Zimmerman & Chandy,
//! "A Parallel Algorithm for Correlating Event Streams" (IPPS 2005)**.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`graph`] | DAGs, serial-prefix vertex numbering (§3.1.1), generators |
//! | [`events`] | phases, timestamps, values, stream sources, windows, statistics |
//! | [`core`] | the parallel engine (Listings 1–2), sequential oracle, baselines |
//! | [`fusion`] | operator library (thresholds, anomalies, correlation) + builder |
//! | [`spec`] | XML computation specifications (§4's input format) |
//! | [`runtime`] | online streaming runtime: live ingestion, epochs, backpressure, subscriptions |
//! | [`store`] | durability: write-ahead log, operator snapshots, recovery |
//! | [`obs`] | observability: flight recorder, latency histograms, Prometheus `/metrics` |
//!
//! ## Quickstart
//!
//! ```
//! use event_correlation::fusion::prelude::*;
//! use event_correlation::events::sources::RandomWalk;
//!
//! // temperature sensor -> moving average -> over-threshold alarm
//! let mut b = CorrelatorBuilder::new();
//! let sensor = b.source("sensor", RandomWalk::new(20.0, 0.5, 42));
//! let avg = b.add("avg", MovingAverage::new(8), &[sensor]);
//! let alarm = b.add("alarm", Threshold::above(22.0), &[avg]);
//!
//! let mut engine = b.engine().threads(4).build().unwrap();
//! let report = engine.run(100).unwrap();
//! let history = report.history.unwrap();
//! println!("alarm state changes: {:?}", history.sink_outputs_of(alarm.vertex()));
//! ```

pub use ec_core as core;
pub use ec_events as events;
pub use ec_fusion as fusion;
pub use ec_graph as graph;
pub use ec_obs as obs;
pub use ec_runtime as runtime;
pub use ec_spec as spec;
pub use ec_store as store;

/// One-stop import for application code.
pub mod prelude {
    pub use ec_core::{Engine, EngineError, Module, RunReport, Sequential};
    pub use ec_fusion::prelude::*;
    pub use ec_runtime::{
        Backpressure, EpochPolicy, Session, SessionPool, SinkEmission, SourceHandle, StreamRuntime,
        StreamRuntimeBuilder,
    };
    pub use ec_spec::{load_file, load_str};
}

/// Version of the library.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
