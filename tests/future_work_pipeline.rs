//! End-to-end test of the §6 extensions working *together with* the
//! engine: noisy delivery → watermark reorder buffer → phases → the
//! parallel engine, compared against feeding the engine the ground
//! truth directly; plus partitioned execution against the engine.

use event_correlation::core::{
    DistributedSim, Engine, Module, PassThrough, Sequential, SourceModule,
};
use event_correlation::events::reorder::{DelayModel, ReorderBuffer};
use event_correlation::events::sources::Replay;
use event_correlation::events::{Timestamp, Value};
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::moving::MovingAverage;
use event_correlation::graph::{generators, partition_min_cut, Dag, Numbering};

/// Builds the ground-truth per-phase values of one sensor.
fn sensor_truth(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(seed).wrapping_add(17) % 997) as f64)
        .collect()
}

#[test]
fn reordered_delivery_feeds_engine_correctly() {
    const EVENTS: usize = 300;
    const PERIOD: u64 = 100; // µs between samples
    let truth = sensor_truth(EVENTS, 31);

    // Deliver with random delays < PERIOD·3, reorder with a watermark
    // that waits past the worst case, and reassemble phase batches.
    let mut model = DelayModel::uniform(0, 250, 5);
    let mut deliveries: Vec<_> = truth
        .iter()
        .enumerate()
        .map(|(i, &x)| model.deliver(Timestamp(i as u64 * PERIOD), Value::Float(x)))
        .collect();
    deliveries.sort_by_key(|e| e.arrival);

    let mut buf = ReorderBuffer::new(300);
    let mut batches = Vec::new();
    for e in deliveries {
        batches.extend(buf.advance(e.arrival));
        assert_eq!(
            buf.offer(e.generated, e.value),
            event_correlation::events::reorder::Offer::Accepted,
            "watermark waits past the max delay; nothing may be late"
        );
    }
    batches.extend(buf.flush());
    assert_eq!(batches.len(), EVENTS, "one batch per generation instant");

    // Batches arrive in timestamp order → replay them as engine phases.
    let script: Vec<Option<Value>> = batches
        .iter()
        .map(|b| {
            assert_eq!(b.values.len(), 1);
            Some(b.values[0].clone())
        })
        .collect();

    let mut dag = Dag::new();
    let src = dag.add_vertex("sensor");
    let avg = dag.add_vertex("avg");
    dag.add_edge(src, avg).unwrap();
    let make = |script: Vec<Option<Value>>| -> Vec<Box<dyn Module>> {
        vec![
            Box::new(SourceModule::new(Replay::new(script))),
            Box::new(MovingAverage::new(8)),
        ]
    };

    let mut engine = Engine::builder(dag.clone(), make(script.clone()))
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let via_network = engine.run(EVENTS as u64).unwrap().history.unwrap();

    // Ground truth: feed the engine directly, no network simulation.
    let direct_script: Vec<Option<Value>> = truth.iter().map(|&x| Some(Value::Float(x))).collect();
    let mut seq = Sequential::new(&dag, make(direct_script)).unwrap();
    seq.run(EVENTS as u64).unwrap();

    assert_eq!(
        seq.into_history().equivalent(&via_network),
        Ok(()),
        "delayed-but-reordered delivery must be invisible to the computation"
    );
}

#[test]
fn partitioned_execution_matches_parallel_engine() {
    let dag = generators::layered(5, 4, 2, 55);
    let numbering = Numbering::compute(&dag);
    let make = || -> Vec<Box<dyn Module>> {
        dag.vertices()
            .map(|v| -> Box<dyn Module> {
                if dag.is_source(v) {
                    Box::new(SourceModule::new(
                        event_correlation::events::sources::Counter::new(),
                    ))
                } else if dag.is_sink(v) {
                    Box::new(PassThrough)
                } else {
                    Box::new(Aggregate::sum())
                }
            })
            .collect()
    };

    let mut engine = Engine::builder(dag.clone(), make())
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let parallel = engine.run(30).unwrap().history.unwrap();

    let partition = partition_min_cut(&dag, &numbering, 3, 0.5);
    let mut sim = DistributedSim::new(&dag, make(), &partition).unwrap();
    sim.run(30).unwrap();

    assert_eq!(parallel.equivalent(&sim.history()), Ok(()));
    // Sanity on the accounting: some messages crossed machines, and the
    // per-machine execution counts cover every vertex-phase pair.
    assert!(sim.remote_messages() > 0);
    let total_exec: u64 = sim.stats().iter().map(|s| s.executions).sum();
    assert_eq!(total_exec, 30 * dag.vertex_count() as u64);
}
