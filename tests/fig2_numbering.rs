//! Reproduction of **Figure 2**: two topologically sorted numberings of
//! the same 7-node graph and their S(v) tables — one violating the
//! serial-prefix restriction, one satisfying it — plus property tests
//! that the FIFO-Kahn construction always satisfies the restriction.

use event_correlation::graph::{generators, Numbering, NumberingError};
use proptest::prelude::*;

/// The S(v) tables exactly as printed in the paper's Figure 2.
#[test]
fn figure2_s_tables() {
    let dag = generators::fig2_graph();

    // (b) Satisfactory numbering: the identity assignment.
    let good = Numbering::from_assignment(&dag, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
    let expected_b: [&[u32]; 8] = [
        &[1, 2, 3],
        &[1, 2, 3],
        &[1, 2, 3, 4],
        &[1, 2, 3, 4, 5],
        &[1, 2, 3, 4, 5],
        &[1, 2, 3, 4, 5, 6],
        &[1, 2, 3, 4, 5, 6, 7],
        &[1, 2, 3, 4, 5, 6, 7],
    ];
    for (v, expect) in expected_b.iter().enumerate() {
        assert_eq!(
            good.s_set(&dag, v as u32),
            expect.to_vec(),
            "S({v}) mismatch in Figure 2(b)"
        );
    }
    // m-sequence as stated in §3.1.1: [3, 3, 4, 5, 5, 6, 7, 7].
    assert_eq!(good.m_table(), &[3, 3, 4, 5, 5, 6, 7, 7]);

    // (a) Unsatisfactory numbering: vertices 4 and 5 transposed. The
    // checker pinpoints the defect the paper describes: S(2) is
    // {1,2,3,5}, missing 4.
    let err = Numbering::from_assignment(&dag, &[1, 2, 3, 5, 4, 6, 7]).unwrap_err();
    assert_eq!(err, NumberingError::NotSerialPrefix { v: 2, missing: 4 });
}

/// The construction algorithm reproduces Figure 2(b) for the figure's
/// graph (inserted in paper order).
#[test]
fn construction_matches_figure2b() {
    let dag = generators::fig2_graph();
    let n = Numbering::compute(&dag);
    for v in dag.vertices() {
        assert_eq!(n.index_of(v), v.0 + 1, "FIFO-Kahn must give the identity");
    }
    n.verify(&dag).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO-Kahn numberings satisfy the serial-prefix restriction on
    /// arbitrary DAGs.
    #[test]
    fn computed_numbering_always_valid(
        n in 1usize..60,
        p in 0.0f64..0.5,
        seed in 0u64..10_000,
        connect in proptest::bool::ANY,
    ) {
        let dag = generators::random_dag(n, p, connect, seed);
        let numbering = Numbering::compute(&dag);
        prop_assert!(numbering.verify(&dag).is_ok());
    }

    /// Properties (2)–(4) of §3.1.1 hold for computed numberings.
    #[test]
    fn m_properties_hold(
        n in 2usize..50,
        seed in 0u64..10_000,
    ) {
        let dag = generators::random_dag(n, 0.15, true, seed);
        let numbering = Numbering::compute(&dag);
        let nn = numbering.len() as u32;
        for v in 1..nn {
            prop_assert!(numbering.m(v - 1) <= numbering.m(v), "property (2)");
            prop_assert!(v < numbering.m(v), "property (3)");
        }
        prop_assert_eq!(numbering.m(nn), nn, "property (4)");
    }

    /// A random non-FIFO topological order is either rejected by the
    /// checker or genuinely satisfies the restriction — the checker
    /// never accepts an invalid numbering (cross-validated against the
    /// brute-force S(v) definition).
    #[test]
    fn checker_agrees_with_bruteforce(
        n in 2usize..20,
        seed in 0u64..5_000,
        swap_a in 0usize..20,
        swap_b in 0usize..20,
    ) {
        let dag = generators::random_dag(n, 0.2, true, seed);
        let good = Numbering::compute(&dag);
        // Perturb the valid numbering by swapping two positions.
        let mut assignment: Vec<u32> = dag
            .vertices()
            .map(|v| good.index_of(v))
            .collect();
        let (a, b) = (swap_a % n, swap_b % n);
        assignment.swap(a, b);

        let checker_ok = Numbering::from_assignment(&dag, &assignment).is_ok();

        // Brute force: topological + every S(v) sequential.
        let topo_ok = dag.edges().all(|(u, w)| {
            assignment[u.index()] < assignment[w.index()]
        });
        let prefix_ok = (0..=n as u32).all(|v| {
            let mut in_s: Vec<u32> = dag
                .vertices()
                .filter(|&w| dag.preds(w).iter().all(|&u| assignment[u.index()] <= v))
                .map(|w| assignment[w.index()])
                .collect();
            in_s.sort_unstable();
            in_s.iter().enumerate().all(|(i, &idx)| idx == i as u32 + 1)
        });
        prop_assert_eq!(checker_ok, topo_ok && prefix_ok);
    }
}
