//! End-to-end spec-file tests: XML text → parsed spec → engine →
//! results, including file loading and parallel/sequential agreement.

use event_correlation::spec::{load_file, load_str, SpecError};

const HURRICANE_SPEC: &str = r#"<?xml version="1.0"?>
<!-- Hurricane monitoring: flood and occupancy sensors feeding
     role-specific composite alerts (§1 of the paper). -->
<computation phases="336" threads="4" max-inflight="16">
  <node id="flood"    type="random-walk" start="1.0"  step="0.15" seed="1"/>
  <node id="hospital" type="random-walk" start="0.65" step="0.02" seed="2"/>
  <node id="shelter"  type="random-walk" start="0.40" step="0.03" seed="3"/>

  <node id="flood-avg" type="moving-average" window="12"><input ref="flood"/></node>
  <node id="hosp-avg"  type="moving-average" window="24"><input ref="hospital"/></node>
  <node id="shel-avg"  type="moving-average" window="24"><input ref="shelter"/></node>

  <node id="flooding"  type="threshold" mode="above" level="2.0"><input ref="flood-avg"/></node>
  <node id="hosp-full" type="threshold" mode="above" level="0.85"><input ref="hosp-avg"/></node>
  <node id="shel-full" type="threshold" mode="above" level="0.80"><input ref="shel-avg"/></node>

  <node id="health-alert" type="any-of">
    <input ref="hosp-full"/><input ref="shel-full"/>
  </node>
  <node id="crisis-level" type="true-count">
    <input ref="flooding"/><input ref="hosp-full"/><input ref="shel-full"/>
  </node>
</computation>"#;

#[test]
fn hurricane_spec_runs() {
    let loaded = load_str(HURRICANE_SPEC).unwrap();
    assert_eq!(loaded.settings.phases, 336);
    assert_eq!(loaded.settings.threads, 4);
    let crisis = loaded.handles["crisis-level"];
    let mut engine = loaded.engine().build().unwrap();
    let report = engine.run(336).unwrap();
    assert_eq!(report.metrics.phases_completed, 336);
    let history = report.history.unwrap();
    let levels = history.sink_outputs_of(crisis.vertex());
    assert!(
        !levels.is_empty(),
        "crisis level should report at least once"
    );
}

#[test]
fn spec_parallel_matches_sequential() {
    let h_par = {
        let mut e = load_str(HURRICANE_SPEC).unwrap().engine().build().unwrap();
        e.run(150).unwrap().history.unwrap()
    };
    let h_seq = {
        let mut s = load_str(HURRICANE_SPEC).unwrap().sequential().unwrap();
        s.run(150).unwrap();
        s.into_history()
    };
    assert_eq!(h_seq.equivalent(&h_par), Ok(()));
}

#[test]
fn spec_loads_from_file() {
    let dir = std::env::temp_dir().join("ec-spec-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hurricane.xml");
    std::fs::write(&path, HURRICANE_SPEC).unwrap();
    let loaded = load_file(&path).unwrap();
    assert_eq!(loaded.settings.phases, 336);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_error() {
    let err = load_file("/definitely/not/here.xml").unwrap_err();
    assert!(matches!(err, SpecError::Structure(_)));
}

#[test]
fn malformed_xml_is_an_error() {
    assert!(matches!(
        load_str("<computation><node id=").unwrap_err(),
        SpecError::Xml(_)
    ));
}

#[test]
fn engine_honours_spec_thread_and_inflight_settings() {
    let doc = r#"<computation phases="20" threads="1" max-inflight="1">
      <node id="a" type="counter"/>
      <node id="b" type="pass-through"><input ref="a"/></node>
    </computation>"#;
    let loaded = load_str(doc).unwrap();
    let mut engine = loaded.engine().build().unwrap();
    let report = engine.run(20).unwrap();
    // max-inflight 1 forbids any pipelining.
    assert_eq!(report.metrics.max_concurrent_phases, 1);
}
