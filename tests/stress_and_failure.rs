//! Stress and failure-injection tests: exactly-once execution under
//! heavy concurrency, panic containment, and invariant checking under
//! adversarial module behaviour.

use event_correlation::core::{
    Emission, Engine, EngineError, ExecCtx, FnModule, Module, PassThrough, SourceModule,
};
use event_correlation::events::sources::Counter;
use event_correlation::events::Value;
use event_correlation::graph::{generators, Dag};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts executions per vertex-phase pair via module side effects; any
/// double execution or skip is detected.
#[test]
fn exactly_once_under_heavy_concurrency() {
    let dag = generators::layered(5, 4, 2, 31);
    let n = dag.vertex_count();
    let phases: u64 = 50;
    let counters: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());

    let modules: Vec<Box<dyn Module>> = dag
        .vertices()
        .map(|v| -> Box<dyn Module> {
            let counters = Arc::clone(&counters);
            let idx = v.index();
            if dag.is_source(v) {
                Box::new(FnModule::new("counting-source", move |ctx: ExecCtx<'_>| {
                    counters[idx].fetch_add(1, Ordering::Relaxed);
                    Emission::Broadcast(Value::Int(ctx.phase.get() as i64))
                }))
            } else {
                Box::new(FnModule::new("counting-node", move |_ctx: ExecCtx<'_>| {
                    counters[idx].fetch_add(1, Ordering::Relaxed);
                    Emission::Broadcast(Value::Int(1))
                }))
            }
        })
        .collect();

    let mut engine = Engine::builder(dag, modules)
        .threads(8)
        .max_inflight(32)
        .check_invariants(true)
        .record_history(false)
        .build()
        .unwrap();
    let report = engine.run(phases).unwrap();
    // Everything broadcasts, so every vertex executes every phase —
    // exactly once.
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            phases,
            "vertex {i} executed the wrong number of times"
        );
    }
    assert_eq!(report.metrics.executions, phases * n as u64);
}

#[test]
fn panic_in_module_fails_cleanly() {
    let dag = generators::layered(3, 3, 2, 5);
    let modules: Vec<Box<dyn Module>> = dag
        .vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(SourceModule::new(Counter::new()))
            } else if v.0 == 5 {
                Box::new(FnModule::new("bomb", |ctx: ExecCtx<'_>| {
                    if ctx.phase.get() == 7 {
                        panic!("injected failure at phase 7");
                    }
                    Emission::Broadcast(Value::Int(0))
                }))
            } else {
                Box::new(PassThrough)
            }
        })
        .collect();
    let mut engine = Engine::builder(dag, modules).threads(4).build().unwrap();
    let start = std::time::Instant::now();
    let err = engine.run(100).unwrap_err();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "failure must not hang the run"
    );
    match err {
        EngineError::WorkerPanic(msg) => assert!(msg.contains("injected failure")),
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn bad_emission_target_fails_cleanly() {
    let mut dag = Dag::new();
    let a = dag.add_vertex("a");
    let b = dag.add_vertex("b");
    let c = dag.add_vertex("c");
    dag.add_edge(a, b).unwrap();
    dag.add_edge(b, c).unwrap();
    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(SourceModule::new(Counter::new())),
        // b targets a (not a successor).
        Box::new(FnModule::new("bad", move |_ctx: ExecCtx<'_>| {
            Emission::Targeted(vec![(a, Value::Int(1))])
        })),
        Box::new(PassThrough),
    ];
    let mut engine = Engine::builder(dag, modules).threads(2).build().unwrap();
    let err = engine.run(5).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("non-successor"), "got: {msg}");
}

#[test]
fn run_after_failure_reports_failure() {
    let dag = generators::chain(2);
    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(SourceModule::new(Counter::new())),
        Box::new(FnModule::new("bomb", |_ctx: ExecCtx<'_>| {
            panic!("always fails")
        })),
    ];
    let mut engine = Engine::builder(dag, modules).threads(2).build().unwrap();
    assert!(engine.run(3).is_err());
    // Subsequent runs refuse to proceed rather than hanging.
    assert!(engine.run(3).is_err());
}

#[test]
fn targeted_emission_routes_selectively() {
    // A router that alternates between its two successors; checks that
    // Targeted emissions deliver to exactly the chosen successor.
    let mut dag = Dag::new();
    let src = dag.add_vertex("src");
    let router = dag.add_vertex("router");
    let left = dag.add_vertex("left");
    let right = dag.add_vertex("right");
    dag.add_edge(src, router).unwrap();
    dag.add_edge(router, left).unwrap();
    dag.add_edge(router, right).unwrap();

    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(SourceModule::new(Counter::new())),
        Box::new(FnModule::new("router", move |ctx: ExecCtx<'_>| {
            let v = ctx.inputs.fresh.last().unwrap().1.clone();
            let odd = v.as_i64().unwrap() % 2 == 1;
            Emission::Targeted(vec![(if odd { left } else { right }, v)])
        })),
        Box::new(PassThrough),
        Box::new(PassThrough),
    ];
    let mut engine = Engine::builder(dag, modules)
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let history = engine.run(10).unwrap().history.unwrap();
    let lefts: Vec<i64> = history
        .sink_outputs_of(left)
        .iter()
        .map(|(_, v)| v.as_i64().unwrap())
        .collect();
    let rights: Vec<i64> = history
        .sink_outputs_of(right)
        .iter()
        .map(|(_, v)| v.as_i64().unwrap())
        .collect();
    assert_eq!(lefts, vec![1, 3, 5, 7, 9]);
    assert_eq!(rights, vec![2, 4, 6, 8, 10]);
}

#[test]
fn long_run_many_phases() {
    // A smoke test for sustained operation: thousands of phases over a
    // non-trivial graph, bounded memory via the in-flight throttle.
    let dag = generators::layered(4, 3, 2, 13);
    let modules: Vec<Box<dyn Module>> = dag
        .vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(SourceModule::new(Counter::new()))
            } else {
                Box::new(PassThrough)
            }
        })
        .collect();
    let mut engine = Engine::builder(dag, modules)
        .threads(4)
        .max_inflight(8)
        .record_history(false)
        .build()
        .unwrap();
    let report = engine.run(5_000).unwrap();
    assert_eq!(report.metrics.phases_completed, 5_000);
}
