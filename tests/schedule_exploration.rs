//! Adversarial schedule exploration.
//!
//! The parallel engine executes ready pairs in whatever order its
//! workers happen to dequeue them; the correctness argument (§3.3) says
//! *any* order consistent with the ready-set rule yields the same
//! result. The thread-based tests can only sample a few interleavings
//! per run — here we use the deterministic [`Stepper`] to drive
//! *chosen* adversarial interleavings (random, latest-phase-first,
//! highest-vertex-first) over random graphs and check every history
//! against the FIFO reference.

use event_correlation::core::{Module, PassThrough, SourceModule, Stepper, SumModule};
use event_correlation::events::sources::{Counter, Sparse};
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::graph::{generators, Dag};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn modules_for(dag: &Dag, mix: u64) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            let k = v.0 as u64 + mix;
            if dag.is_source(v) {
                if k.is_multiple_of(3) {
                    Box::new(SourceModule::new(Sparse::counter(0.4, k)))
                } else {
                    Box::new(SourceModule::new(Counter::new()))
                }
            } else if k.is_multiple_of(2) {
                Box::new(SumModule)
            } else if k.is_multiple_of(3) {
                Box::new(Aggregate::max())
            } else {
                Box::new(PassThrough)
            }
        })
        .collect()
}

/// Executes all phases with a pluggable choice of which ready pair to
/// run next.
fn run_with_policy(
    dag: &Dag,
    mix: u64,
    phases: u64,
    mut pick: impl FnMut(&[(u32, u64)]) -> usize,
) -> event_correlation::core::ExecutionHistory {
    let mut stepper = Stepper::new(dag, modules_for(dag, mix)).unwrap();
    for _ in 0..phases {
        stepper.start_phase();
    }
    loop {
        let ready = stepper.ready_pairs();
        if ready.is_empty() {
            break;
        }
        let (v, p) = ready[pick(&ready) % ready.len()];
        stepper.step_pair(v, p).unwrap();
    }
    assert_eq!(stepper.completed_through(), phases);
    stepper.history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adversarial_orders_are_serializable(
        n in 3usize..16,
        graph_seed in 0u64..300,
        mix in 0u64..300,
        order_seed in 0u64..300,
    ) {
        let dag = generators::random_dag(n, 0.25, true, graph_seed);
        let phases = 6u64;

        // Reference: FIFO (what a single worker does).
        let reference = run_with_policy(&dag, mix, phases, |_| 0);

        // Random order.
        let mut rng = SmallRng::seed_from_u64(order_seed);
        let random = run_with_policy(&dag, mix, phases, |ready| {
            let mut idxs: Vec<usize> = (0..ready.len()).collect();
            idxs.shuffle(&mut rng);
            idxs[0]
        });
        prop_assert!(reference.equivalent(&random).is_ok(),
            "random order diverged: {}", reference.equivalent(&random).unwrap_err());

        // Latest-phase-first: maximises pipelining pressure.
        let latest = run_with_policy(&dag, mix, phases, |ready| {
            ready
                .iter()
                .enumerate()
                .max_by_key(|(_, (v, p))| (*p, *v))
                .map(|(i, _)| i)
                .unwrap()
        });
        prop_assert!(reference.equivalent(&latest).is_ok());

        // Highest-vertex-first: drains sinks before sources when legal.
        let deepest = run_with_policy(&dag, mix, phases, |ready| {
            ready
                .iter()
                .enumerate()
                .max_by_key(|(_, (v, _))| *v)
                .map(|(i, _)| i)
                .unwrap()
        });
        prop_assert!(reference.equivalent(&deepest).is_ok());
    }
}

#[test]
fn stepper_agrees_with_engine_and_oracle() {
    use event_correlation::core::{Engine, Sequential};
    let dag = generators::layered(4, 3, 2, 77);
    let phases = 8u64;

    let stepper_hist = run_with_policy(&dag, 1, phases, |_| 0);

    let mut seq = Sequential::new(&dag, modules_for(&dag, 1)).unwrap();
    seq.run(phases).unwrap();
    assert_eq!(seq.into_history().equivalent(&stepper_hist), Ok(()));

    let mut engine = Engine::builder(dag.clone(), modules_for(&dag, 1))
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let par = engine.run(phases).unwrap().history.unwrap();
    assert_eq!(par.equivalent(&stepper_hist), Ok(()));
}
