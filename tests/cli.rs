//! Integration tests for the `ec` command-line tool.

use std::process::{Command, Output};

fn ec(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(args)
        .output()
        .expect("ec binary runs")
}

fn write_spec(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ec-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

const SPEC: &str = r#"<computation phases="30" threads="2">
  <node id="tx" type="counter"/>
  <node id="avg" type="moving-average" window="4"><input ref="tx"/></node>
  <node id="big" type="threshold" level="10"><input ref="avg"/></node>
</computation>"#;

#[test]
fn help_prints_usage() {
    for args in [vec!["--help"], vec![]] {
        let out = ec(&args);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage:"), "{text}");
    }
}

#[test]
fn validate_reports_graph_stats() {
    let path = write_spec("validate.xml", SPEC);
    let out = ec(&["validate", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 nodes (1 sources, 1 sinks), 2 edges"), "{text}");
    assert!(text.contains("depth 3"), "{text}");
}

#[test]
fn run_parallel_and_sequential() {
    let path = write_spec("run.xml", SPEC);
    let par = ec(&["run", path.to_str().unwrap()]);
    assert!(par.status.success());
    let par_text = String::from_utf8_lossy(&par.stdout);
    assert!(par_text.contains("parallel run: 30 phases"), "{par_text}");
    assert!(par_text.contains("big:"), "{par_text}");

    let seq = ec(&["run", path.to_str().unwrap(), "--sequential"]);
    assert!(seq.status.success());
    let seq_text = String::from_utf8_lossy(&seq.stdout);
    assert!(seq_text.contains("sequential run: 30 phases"), "{seq_text}");
}

#[test]
fn run_flag_overrides() {
    let path = write_spec("flags.xml", SPEC);
    let out = ec(&["run", path.to_str().unwrap(), "--phases", "5", "--threads", "1", "--quiet"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5 phases on 1 threads"), "{text}");
    // --quiet suppresses sink listings.
    assert!(!text.contains("big:"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let path = write_spec("dot.xml", SPEC);
    let out = ec(&["dot", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph computation {"), "{text}");
    assert!(text.contains("1: tx"), "{text}");
}

#[test]
fn errors_exit_nonzero() {
    let out = ec(&["run", "/no/such/spec.xml"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = ec(&["frobnicate"]);
    assert!(!out.status.success());

    let bad = write_spec("bad.xml", "<computation><node id=");
    let out = ec(&["run", bad.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn demo_runs() {
    let out = ec(&["demo"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("demo:"), "{text}");
}
