//! Integration tests for the `ec` command-line tool.

use std::process::{Command, Output};

fn ec(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(args)
        .output()
        .expect("ec binary runs")
}

fn write_spec(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ec-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

const SPEC: &str = r#"<computation phases="30" threads="2">
  <node id="tx" type="counter"/>
  <node id="avg" type="moving-average" window="4"><input ref="tx"/></node>
  <node id="big" type="threshold" level="10"><input ref="avg"/></node>
</computation>"#;

#[test]
fn help_prints_usage() {
    for args in [vec!["--help"], vec![]] {
        let out = ec(&args);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage:"), "{text}");
    }
}

#[test]
fn validate_reports_graph_stats() {
    let path = write_spec("validate.xml", SPEC);
    let out = ec(&["validate", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("3 nodes (1 sources, 1 sinks), 2 edges"),
        "{text}"
    );
    assert!(text.contains("depth 3"), "{text}");
}

#[test]
fn run_parallel_and_sequential() {
    let path = write_spec("run.xml", SPEC);
    let par = ec(&["run", path.to_str().unwrap()]);
    assert!(par.status.success());
    let par_text = String::from_utf8_lossy(&par.stdout);
    assert!(par_text.contains("parallel run: 30 phases"), "{par_text}");
    assert!(par_text.contains("big:"), "{par_text}");

    let seq = ec(&["run", path.to_str().unwrap(), "--sequential"]);
    assert!(seq.status.success());
    let seq_text = String::from_utf8_lossy(&seq.stdout);
    assert!(seq_text.contains("sequential run: 30 phases"), "{seq_text}");
}

#[test]
fn run_flag_overrides() {
    let path = write_spec("flags.xml", SPEC);
    let out = ec(&[
        "run",
        path.to_str().unwrap(),
        "--phases",
        "5",
        "--threads",
        "1",
        "--quiet",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5 phases on 1 threads"), "{text}");
    // --quiet suppresses sink listings.
    assert!(!text.contains("big:"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let path = write_spec("dot.xml", SPEC);
    let out = ec(&["dot", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph computation {"), "{text}");
    assert!(text.contains("1: tx"), "{text}");
}

#[test]
fn errors_exit_nonzero() {
    let out = ec(&["run", "/no/such/spec.xml"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = ec(&["frobnicate"]);
    assert!(!out.status.success());

    let bad = write_spec("bad.xml", "<computation><node id=");
    let out = ec(&["run", bad.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn demo_runs() {
    let out = ec(&["demo"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("demo:"), "{text}");
}

/// Runs `ec` with the given stdin content piped in.
fn ec_with_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ec binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    child.wait_with_output().expect("ec binary runs")
}

const LIVE_SPEC: &str = r#"<computation threads="2">
  <node id="tx" type="live"/>
  <node id="avg" type="moving-average" window="3"><input ref="tx"/></node>
  <node id="big" type="threshold" level="100"><input ref="avg"/></node>
</computation>"#;

#[test]
fn stream_ingests_csv_and_ndjson() {
    let path = write_spec("live.xml", LIVE_SPEC);
    let input = "tx,10\ntx,20\n\n{\"source\": \"tx\", \"value\": 400}\n\ntx,5\n";
    let out = ec_with_stdin(&["stream", path.to_str().unwrap()], input);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The moving average crosses 100 once the 400 event lands (phase 3).
    assert!(text.contains("[phase 1] big = false"), "{text}");
    assert!(text.contains("[phase 3] big = true"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("4 events in, 0 dropped, 4 phases"), "{err}");
}

#[test]
fn stream_epoch_count_policy() {
    let path = write_spec("live_count.xml", LIVE_SPEC);
    // No explicit flushes: the count policy seals every 2 events.
    let input = "tx,10\ntx,20\ntx,400\ntx,400\n";
    let out = ec_with_stdin(
        &[
            "stream",
            path.to_str().unwrap(),
            "--epoch-count",
            "2",
            "--quiet",
        ],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("big = true"), "{text}");
}

#[test]
fn stream_reports_bad_lines_and_unknown_sources() {
    let path = write_spec("live_bad.xml", LIVE_SPEC);
    let input = "not-an-event\nnope,1\ntx,10\n";
    let out = ec_with_stdin(&["stream", path.to_str().unwrap()], input);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning:"), "{err}");
    assert!(err.contains("1 events in, 2 dropped"), "{err}");
}

#[test]
fn stream_rejects_conflicting_epoch_flags() {
    let path = write_spec("live_conflict.xml", LIVE_SPEC);
    let out = ec_with_stdin(
        &[
            "stream",
            path.to_str().unwrap(),
            "--epoch-count",
            "2",
            "--epoch-ms",
            "5",
        ],
        "",
    );
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn stream_flushes_on_full_queue_instead_of_hanging() {
    let path = write_spec("live_full.xml", LIVE_SPEC);
    // 10 events, no blank lines, capacity 4: the CLI must self-seal
    // when a queue fills (blocking would deadlock the single-threaded
    // reader) and still ingest every event.
    let mut input = String::new();
    for i in 0..10 {
        input.push_str(&format!("tx,{}\n", i * 50));
    }
    let out = ec_with_stdin(
        &["stream", path.to_str().unwrap(), "--capacity", "4"],
        &input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("10 events in, 0 dropped, 10 phases"), "{err}");
}

#[test]
fn stream_reject_mode_drops_overflow() {
    let path = write_spec("live_reject.xml", LIVE_SPEC);
    let mut input = String::new();
    for i in 0..10 {
        input.push_str(&format!("tx,{}\n", i * 50));
    }
    let out = ec_with_stdin(
        &[
            "stream",
            path.to_str().unwrap(),
            "--capacity",
            "4",
            "--reject",
        ],
        &input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // First 4 fill the queue; the rest drop; shutdown seals the 4.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("4 events in, 6 dropped, 4 phases"), "{err}");
    assert!(err.contains("queue full, event dropped"), "{err}");
}

const DURABLE_SPEC_TEMPLATE: &str = r#"<computation threads="2">
  <durability dir="__DIR__" snapshot-every="2"/>
  <node id="tx" type="live"/>
  <node id="avg" type="moving-average" window="3"><input ref="tx"/></node>
  <node id="alarm" type="threshold" level="10"><input ref="avg"/></node>
</computation>"#;

#[test]
fn stream_checkpoint_then_recover_then_resume() {
    let store = std::env::temp_dir().join(format!("ec-cli-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let spec_body = DURABLE_SPEC_TEMPLATE.replace("__DIR__", store.to_str().unwrap());
    let path = write_spec("durable.xml", &spec_body);
    let spec = path.to_str().unwrap();

    // First run: three sealed epochs through the spec's durability dir.
    let out = ec_with_stdin(&["stream", spec], "tx,5\n\ntx,20\n\ntx,30\n\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resuming at phase 1"), "{err}");

    // Recover: resumable phase and the replayed tail.
    let out = ec(&["recover", store.to_str().unwrap(), spec]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("committed phases: 3"), "{text}");
    assert!(text.contains("resumable at phase 4"), "{text}");
    assert!(text.contains("wal tail: clean"), "{text}");

    // Second run resumes at phase 4 (global numbering).
    let out = ec_with_stdin(&["stream", spec], "tx,40\n\n");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resuming at phase 4"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // avg(20,30,40) = 30 > 10: alarm already true before the kill, so
    // the new phase is silent; the replayed tail re-emits nothing new.
    assert!(!stdout.contains("phase 1]"), "{stdout}");

    // --checkpoint flag (fresh dir) overrides the spec's element.
    let store2 = std::env::temp_dir().join(format!("ec-cli-durable2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store2);
    let out = ec_with_stdin(
        &["stream", spec, "--checkpoint", store2.to_str().unwrap()],
        "tx,50\n\n",
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resuming at phase 1"), "{err}");

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&store2);
}

#[test]
fn store_inspect_verify_compact() {
    let store = std::env::temp_dir().join(format!("ec-cli-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let spec_body = DURABLE_SPEC_TEMPLATE.replace("__DIR__", store.to_str().unwrap());
    let path = write_spec("store-cli.xml", &spec_body);
    let spec = path.to_str().unwrap();
    let dir = store.to_str().unwrap();

    // Build a real store: three sealed epochs (snapshot-every=2).
    let out = ec_with_stdin(&["stream", spec], "tx,5\n\ntx,20\n\ntx,30\n\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // inspect shows the segmented layout end to end.
    let out = ec(&["store", dir, "inspect"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("layout: segmented"), "{text}");
    assert!(text.contains("committed phases: 3"), "{text}");
    assert!(text.contains("seg-000000000001.log"), "{text}");
    assert!(text.contains("resumable at phase 4"), "{text}");

    // verify walks every CRC and reports a healthy store.
    let out = ec(&["store", dir, "verify"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OK"), "{text}");

    // compact is safe to run any time (here nothing is dead yet:
    // every segment still carries rows past the snapshot).
    let out = ec(&["store", dir, "compact"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Flip one byte inside the segment: verify must exit nonzero.
    let seg = store.join("wal").join("seg-000000000001.log");
    let mut bytes = std::fs::read(&seg).unwrap();
    let n = bytes.len();
    bytes[n - 10] ^= 0xff;
    std::fs::write(&seg, &bytes).unwrap();
    let out = ec(&["store", dir, "verify"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("problem"), "{err}");

    // Unknown action and missing store both fail cleanly.
    let out = ec(&["store", dir, "frobnicate"]);
    assert!(!out.status.success());
    let out = ec(&["store", "/definitely/not/a/store", "verify"]);
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn recover_errors_without_store() {
    let path = write_spec("recover-missing.xml", SPEC);
    let out = ec(&["recover", "/definitely/not/a/store", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no write-ahead log"), "{err}");
}

#[test]
fn sessions_serve_multiple_specs_on_one_pool() {
    let a = write_spec("sess_a.xml", LIVE_SPEC);
    let b = write_spec("sess_b.xml", LIVE_SPEC);
    // Session names are the file stems (sess_a / sess_b); a blank line
    // ticks every session.
    let input = "sess_a,tx,400\nsess_b,tx,10\n\nsess_a,tx,5\nnope,tx,1\nsess_b,oops,2\n";
    let out = ec_with_stdin(
        &[
            "sessions",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threads",
            "2",
        ],
        input,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Each tenant's alarms are tagged with its session name and keep
    // independent phase numbering.
    assert!(text.contains("[sess_a phase 1] big = true"), "{text}");
    assert!(text.contains("[sess_b phase 1] big = false"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("3 events in, 2 dropped"), "{err}");
    assert!(err.contains("unknown session \"nope\""), "{err}");
    assert!(err.contains("unknown source \"oops\""), "{err}");
    // Per-tenant summary rows (the tick seals each tenant's buffered
    // event as phase 1; sess_a's second event seals at the final
    // flush).
    assert!(err.contains("sess_a: 2 phases retired, 2 events"), "{err}");
    assert!(err.contains("sess_b: 1 phases retired, 1 events"), "{err}");
}

#[test]
fn sessions_with_root_restore_each_tenant() {
    let a = write_spec("sess_dur_a.xml", LIVE_SPEC);
    let b = write_spec("sess_dur_b.xml", LIVE_SPEC);
    let root = std::env::temp_dir().join(format!("ec-cli-sessions-root-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let args = [
        "sessions",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--root",
        root.to_str().unwrap(),
    ];
    let out = ec_with_stdin(&args, "sess_dur_a,tx,1\nsess_dur_a,tx,2\nsess_dur_b,tx,3\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Second run resumes each tenant at its own committed phase.
    let out = ec_with_stdin(&args, "sess_dur_b,tx,4\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("session \"sess_dur_a\"") && err.contains("resuming at phase 3"),
        "{err}"
    );
    assert!(err.contains("resuming at phase 2"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sessions_reject_duplicate_names_and_bad_weights() {
    let a = write_spec("sess_dup.xml", LIVE_SPEC);
    let out = ec_with_stdin(&["sessions", a.to_str().unwrap(), a.to_str().unwrap()], "");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unique"), "{err}");

    let out = ec_with_stdin(
        &["sessions", a.to_str().unwrap(), "--weight", "nonsense"],
        "",
    );
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("NAME=W"), "{err}");

    // A weight naming no session is a typo, not a no-op.
    let out = ec_with_stdin(&["sessions", a.to_str().unwrap(), "--weight", "typo=4"], "");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown session \"typo\""), "{err}");
}

#[test]
fn trace_writes_chrome_json() {
    let path = write_spec("trace.xml", LIVE_SPEC);
    let out_file = std::env::temp_dir()
        .join("ec-cli-tests")
        .join("trace-out.json");
    let _ = std::fs::remove_file(&out_file);
    let out = ec_with_stdin(
        &[
            "trace",
            path.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ],
        "tx,10\ntx,20\n\ntx,5\n",
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace written to"), "{err}");
    let json = std::fs::read_to_string(&out_file).expect("trace file written");
    let events = event_correlation::obs::validate_chrome_trace(&json).expect("well-formed trace");
    assert!(events > 0, "{json}");
    assert!(json.contains("\"name\":\"epoch_sealed\""), "{json}");
    assert!(json.contains("\"name\":\"phase_retired\""), "{json}");
    let _ = std::fs::remove_file(&out_file);
}

#[test]
fn stream_metrics_flag_serves_exposition() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let path = write_spec("metrics.xml", LIVE_SPEC);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(["stream", path.to_str().unwrap(), "--metrics", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ec binary spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    // The endpoint line is printed before stdin is consumed; find the
    // ephemeral port in it while the stream is still live.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "stream exited before announcing the metrics endpoint"
        );
        if let Some(rest) = line.trim().strip_prefix("metrics endpoint: http://") {
            break rest
                .split_once("/metrics")
                .expect("endpoint line has a path")
                .0
                .to_string();
        }
    };
    stdin.write_all(b"tx,10\ntx,20\n\n").expect("stdin writes");
    stdin.flush().unwrap();
    let body = event_correlation::obs::http_get(&addr, "/metrics").expect("scrape live stream");
    event_correlation::obs::validate_exposition(&body).expect("well-formed exposition");
    assert!(body.contains("ec_executions_total"), "{body}");
    drop(stdin); // EOF: the stream shuts down cleanly.
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
}

#[test]
fn top_renders_one_frame() {
    use std::sync::Arc;
    let page = "\
# TYPE ec_executions_total counter\nec_executions_total 42\n\
# TYPE ec_phases_completed_total counter\nec_phases_completed_total 7\n\
# TYPE ec_seal_events_total counter\nec_seal_events_total 99\n\
# TYPE ec_phase_seconds summary\nec_phase_seconds{quantile=\"0.5\"} 0.002\n\
ec_phase_seconds{quantile=\"0.95\"} 0.004\nec_phase_seconds{quantile=\"0.99\"} 0.008\n\
ec_phase_seconds{quantile=\"1\"} 0.016\nec_phase_seconds_sum 1.5\nec_phase_seconds_count 7\n\
# TYPE ec_session_events_per_sec gauge\n\
ec_session_events_per_sec{session=\"alpha\"} 123\n";
    let server = event_correlation::obs::MetricsServer::bind(
        "127.0.0.1:0",
        Arc::new(move || page.to_string()),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let out = ec(&["top", &addr, "--once"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("completed 7"), "{text}");
    assert!(text.contains("sealed 99"), "{text}");
    assert!(text.contains("p50 2.0ms"), "{text}");
    assert!(text.contains("session alpha"), "{text}");
}

#[test]
fn doctor_exits_by_verdict() {
    use std::sync::Arc;
    // Healthy endpoint: doctor prints the report and exits 0.
    let ok_body = "{\"verdict\":\"ok\",\"reasons\":[],\"admitted\":5,\"retired\":5}";
    let server = event_correlation::obs::MetricsServer::bind_routes(
        "127.0.0.1:0",
        vec![(
            "/healthz",
            event_correlation::obs::CONTENT_TYPE_JSON,
            Arc::new(move || ok_body.to_string()),
        )],
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let out = ec(&["doctor", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"verdict\":\"ok\""), "{text}");
    assert!(text.contains("healthy"), "{text}");
    drop(server);

    // Stalled endpoint: nonzero exit, reasons surfaced on stderr.
    let bad_body = "{\"verdict\":\"stalled\",\"reasons\":[\"ingest wedged: source s1 full\"],\
                    \"admitted\":5,\"retired\":3}";
    let server = event_correlation::obs::MetricsServer::bind_routes(
        "127.0.0.1:0",
        vec![(
            "/healthz",
            event_correlation::obs::CONTENT_TYPE_JSON,
            Arc::new(move || bad_body.to_string()),
        )],
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let out = ec(&["doctor", &addr]);
    assert!(!out.status.success(), "stalled verdict must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("health verdict: stalled"), "{err}");
    assert!(err.contains("ingest wedged"), "{err}");
}

#[test]
fn doctor_reads_a_live_stream_runtime() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let path = write_spec("doctor_live.xml", LIVE_SPEC);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(["stream", path.to_str().unwrap(), "--metrics", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ec binary spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "stream exited before announcing the metrics endpoint"
        );
        if let Some(rest) = line.trim().strip_prefix("metrics endpoint: http://") {
            break rest
                .split_once("/metrics")
                .expect("endpoint line has a path")
                .0
                .to_string();
        }
    };
    stdin.write_all(b"tx,10\ntx,20\n\n").expect("stdin writes");
    stdin.flush().unwrap();
    let out = ec(&["doctor", &addr]);
    assert!(
        out.status.success(),
        "doctor on a healthy stream: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    drop(stdin);
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
}

#[test]
fn top_errors_helpfully_when_nothing_listens() {
    // Bind-then-drop guarantees a dead port.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = ec(&["top", &dead, "--once"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("is the runtime up with --metrics?"), "{err}");
}

/// Spawns `ec serve` on an ephemeral port and scrapes the endpoint
/// lines from stderr while the server is live. Returns the child, its
/// stdin handle (drop it for a clean EOF shutdown), the stderr reader
/// (positioned after the endpoint lines), the wire address, and the
/// metrics address when `--metrics` was passed.
fn spawn_serve(
    spec: &std::path::Path,
    extra: &[&str],
) -> (
    std::process::Child,
    std::process::ChildStdin,
    std::io::BufReader<std::process::ChildStderr>,
    String,
    Option<String>,
) {
    use std::io::BufRead;
    use std::process::Stdio;

    let mut args = vec!["serve", spec.to_str().unwrap(), "--addr", "127.0.0.1:0"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ec"))
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ec binary spawns");
    let stdin = child.stdin.take().expect("stdin piped");
    let mut stderr = std::io::BufReader::new(child.stderr.take().expect("stderr piped"));
    let want_metrics = extra.contains(&"--metrics");
    let mut wire = None;
    let mut metrics = None;
    while wire.is_none() || (want_metrics && metrics.is_none()) {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "serve exited before announcing its endpoints"
        );
        if let Some(rest) = line.trim().strip_prefix("wire endpoint: ") {
            wire = Some(
                rest.split_once(' ')
                    .expect("endpoint line has tenants")
                    .0
                    .to_string(),
            );
        } else if let Some(rest) = line.trim().strip_prefix("metrics endpoint: http://") {
            metrics = Some(
                rest.split_once("/metrics")
                    .expect("endpoint line has a path")
                    .0
                    .to_string(),
            );
        }
    }
    (child, stdin, stderr, wire.unwrap(), metrics)
}

#[test]
fn serve_accepts_a_push_client_and_exits_on_stdin_close() {
    let path = write_spec("serve_live.xml", LIVE_SPEC);
    let (mut child, stdin, mut stderr, wire, _) = spawn_serve(&path, &[]);

    // A full producer session over the wire: three events, two seals.
    let out = ec_with_stdin(&["push", &wire, "serve_live"], "tx,10\ntx,20\n\ntx,400\n\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sources [\"tx\"]"), "{err}");
    assert!(
        err.contains("3 events in (3 acked), 0 dropped, 2 seals"),
        "{err}"
    );

    // Closing stdin is the supervisor hanging up: the server drains,
    // reports per-tenant phase counts, and exits zero.
    drop(stdin);
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).expect("stderr drains");
    assert!(rest.contains("serve done:"), "{rest}");
    assert!(rest.contains("3 events in"), "{rest}");
    assert!(rest.contains("serve_live: 3 phases committed"), "{rest}");
}

#[test]
fn serve_metrics_healthz_and_doctor() {
    let path = write_spec("serve_metrics.xml", LIVE_SPEC);
    let (mut child, stdin, _stderr, wire, metrics) =
        spawn_serve(&path, &["--metrics", "127.0.0.1:0", "--quiet"]);
    let metrics = metrics.expect("metrics endpoint announced");

    let out = ec_with_stdin(&["push", &wire, "serve_metrics", "--quiet"], "tx,10\n\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let body = event_correlation::obs::http_get(&metrics, "/metrics").expect("scrape server");
    event_correlation::obs::validate_exposition(&body).expect("well-formed exposition");
    assert!(body.contains("ec_wire_connections_total"), "{body}");
    assert!(body.contains("ec_session_events_per_sec"), "{body}");

    let health = event_correlation::obs::http_get(&metrics, "/healthz").expect("healthz");
    assert!(health.contains("\"verdict\""), "{health}");

    let out = ec(&["doctor", &metrics]);
    assert!(
        out.status.success(),
        "doctor on a healthy server: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    drop(stdin);
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
}

#[test]
fn push_with_session_replays_exactly_once_across_process_restarts() {
    let path = write_spec("serve_resume.xml", LIVE_SPEC);
    let (mut child, stdin, mut stderr, wire, _) = spawn_serve(&path, &[]);

    let args = [
        "push",
        &wire,
        "serve_resume",
        "--retry",
        "3",
        "--session",
        "cli-sess",
    ];
    let input = "tx,10\ntx,20\n\n";
    let out = ec_with_stdin(&args, input);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("session \"cli-sess\""), "{err}");
    assert!(err.contains("2 events in (2 acked)"), "{err}");

    // The same input under the same session id — a crash-retry replay.
    // The server's dedup window re-acks every batch without
    // re-applying, so the client still sees full acks while the commit
    // stays exactly-once.
    let out = ec_with_stdin(&args, input);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2 events in (2 acked)"), "{err}");

    drop(stdin);
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).expect("stderr drains");
    // Two identical runs, one commit: the replay added no phases.
    assert!(rest.contains("serve_resume: 2 phases committed"), "{rest}");
}

#[test]
fn push_refusals_exit_nonzero_with_diagnostics() {
    let path = write_spec("serve_auth.xml", LIVE_SPEC);
    let (mut child, stdin, _stderr, wire, _) =
        spawn_serve(&path, &["--token", "sesame", "--quiet"]);

    // Wrong token: refused at Hello, before any stdin is consumed.
    let out = ec_with_stdin(&["push", &wire, "serve_auth", "--token", "wrong"], "");
    assert!(!out.status.success(), "bad token must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("token"), "{err}");

    // Unknown tenant, correct token: refused with the tenant named.
    let out = ec_with_stdin(&["push", &wire, "nope", "--token", "sesame"], "");
    assert!(!out.status.success(), "unknown tenant must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown tenant"), "{err}");

    // The right credentials still work on the same server.
    let out = ec_with_stdin(
        &["push", &wire, "serve_auth", "--token", "sesame", "--quiet"],
        "tx,1\n\n",
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    drop(stdin);
    let status = child.wait().expect("ec binary exits");
    assert!(status.success());
}
