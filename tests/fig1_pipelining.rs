//! Reproduction of **Figure 1**: a 10-node graph in which multiple
//! phases execute concurrently.
//!
//! The figure depicts 5 phases in flight at once on a 10-node graph,
//! with nodes near the top executing earlier phases than nodes near the
//! bottom. We run the same-shape graph (depth 5) with per-vertex
//! synthetic compute and verify that the engine actually pipelines:
//! several distinct phases execute concurrently, and deep pipelining
//! never violates serializability.

use event_correlation::core::{Engine, Module, PassThrough, Sequential, SourceModule, Workload};
use event_correlation::events::sources::Counter;
use event_correlation::graph::{generators, Topology};

fn fig1_modules(spin: u64) -> Vec<Box<dyn Module>> {
    let dag = generators::fig1_graph();
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            if dag.is_source(v) {
                Box::new(Workload::new(SourceModule::new(Counter::new()), spin))
            } else {
                Box::new(Workload::new(PassThrough, spin))
            }
        })
        .collect()
}

#[test]
fn fig1_graph_has_depth_five() {
    let dag = generators::fig1_graph();
    let topo = Topology::analyze(&dag);
    assert_eq!(dag.vertex_count(), 10);
    assert_eq!(
        topo.depth(),
        5,
        "five phases can be in flight, one per level"
    );
}

#[test]
fn phases_execute_concurrently() {
    // Enough threads and in-flight budget that the pipeline can fill;
    // per-vertex spin makes executions long enough to overlap.
    let mut engine = Engine::builder(generators::fig1_graph(), fig1_modules(60_000))
        .threads(8)
        .max_inflight(16)
        .record_history(false)
        .build()
        .unwrap();
    let report = engine.run(120).unwrap();
    assert_eq!(report.metrics.phases_completed, 120);
    assert!(
        report.metrics.max_concurrent_phases >= 3,
        "expected ≥3 concurrent phases on a depth-5 graph, saw {} (mean {:.2})",
        report.metrics.max_concurrent_phases,
        report.metrics.mean_concurrent_phases(),
    );
}

#[test]
fn throttle_caps_pipeline_depth() {
    let mut engine = Engine::builder(generators::fig1_graph(), fig1_modules(10_000))
        .threads(8)
        .max_inflight(2)
        .record_history(false)
        .build()
        .unwrap();
    let report = engine.run(60).unwrap();
    assert!(
        report.metrics.max_concurrent_phases <= 2,
        "throttle of 2 violated: {}",
        report.metrics.max_concurrent_phases
    );
}

#[test]
fn pipelined_run_matches_oracle() {
    let mut seq = Sequential::new(&generators::fig1_graph(), fig1_modules(0)).unwrap();
    seq.run(80).unwrap();
    let mut engine = Engine::builder(generators::fig1_graph(), fig1_modules(0))
        .threads(8)
        .max_inflight(16)
        .check_invariants(true)
        .build()
        .unwrap();
    let par = engine.run(80).unwrap().history.unwrap();
    assert_eq!(seq.into_history().equivalent(&par), Ok(()));
}
