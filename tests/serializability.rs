//! The central correctness property (§2): the parallel engine's
//! observable behaviour equals the sequential phase-at-a-time
//! execution's, for every graph shape, module mix and thread count.
//!
//! Three executors are compared pairwise: the parallel engine
//! (pipelined, Listings 1–2), the phase-barrier parallel baseline, and
//! the sequential oracle. All must produce identical per-vertex
//! execution histories.

use event_correlation::core::{
    BarrierParallel, Engine, ExecutionHistory, Module, PassThrough, Sequential, SourceModule,
    SumModule, Workload,
};
use event_correlation::events::sources::{Bursty, Counter, Diurnal, RandomWalk, Sparse};
use event_correlation::fusion::operators::aggregate::Aggregate;
use event_correlation::fusion::operators::anomaly::ZScoreAnomaly;
use event_correlation::fusion::operators::delta::ChangeDetector;
use event_correlation::fusion::operators::moving::MovingAverage;
use event_correlation::fusion::operators::threshold::Threshold;
use event_correlation::graph::{generators, Dag, VertexId};
use proptest::prelude::*;

/// Builds a deterministic module mix for `dag`: sources get varied
/// generators, interior vertices varied operators, chosen by vertex id
/// and `mix_seed`.
fn modules_for(dag: &Dag, mix_seed: u64) -> Vec<Box<dyn Module>> {
    dag.vertices()
        .map(|v| -> Box<dyn Module> {
            let k = (v.0 as u64).wrapping_mul(2654435761).wrapping_add(mix_seed);
            if dag.is_source(v) {
                match k % 4 {
                    0 => Box::new(SourceModule::new(Counter::new())),
                    1 => Box::new(SourceModule::new(RandomWalk::new(10.0, 1.0, k))),
                    2 => Box::new(SourceModule::new(Sparse::counter(0.3, k))),
                    _ => Box::new(SourceModule::new(Diurnal::new(5.0, 2.0, 12, 0.3, k))),
                }
            } else {
                match k % 6 {
                    0 => Box::new(PassThrough),
                    1 => Box::new(SumModule),
                    2 => Box::new(MovingAverage::new(4)),
                    3 => Box::new(Aggregate::mean()),
                    4 => Box::new(ChangeDetector::new(0.5)),
                    _ => Box::new(Threshold::above(12.0)),
                }
            }
        })
        .collect()
}

fn run_sequential(dag: &Dag, mix_seed: u64, phases: u64) -> ExecutionHistory {
    let mut seq = Sequential::new(dag, modules_for(dag, mix_seed)).unwrap();
    seq.run(phases).unwrap();
    seq.into_history()
}

fn run_parallel(dag: &Dag, mix_seed: u64, phases: u64, threads: usize) -> ExecutionHistory {
    let mut engine = Engine::builder(dag.clone(), modules_for(dag, mix_seed))
        .threads(threads)
        .check_invariants(true)
        .build()
        .unwrap();
    engine.run(phases).unwrap().history.unwrap()
}

fn run_barrier(dag: &Dag, mix_seed: u64, phases: u64, threads: usize) -> ExecutionHistory {
    let mut bar = BarrierParallel::new(dag, modules_for(dag, mix_seed), threads).unwrap();
    bar.run(phases).unwrap();
    bar.into_history()
}

fn assert_all_equivalent(dag: &Dag, mix_seed: u64, phases: u64, threads: usize) {
    let seq = run_sequential(dag, mix_seed, phases);
    let par = run_parallel(dag, mix_seed, phases, threads);
    if let Err(d) = seq.equivalent(&par) {
        panic!("parallel diverged from sequential: {d}");
    }
    let bar = run_barrier(dag, mix_seed, phases, threads);
    if let Err(d) = seq.equivalent(&bar) {
        panic!("barrier diverged from sequential: {d}");
    }
}

#[test]
fn chain_all_thread_counts() {
    let dag = generators::chain(8);
    for threads in [1, 2, 4, 8] {
        assert_all_equivalent(&dag, 1, 40, threads);
    }
}

#[test]
fn diamond_and_fan() {
    assert_all_equivalent(&generators::diamond(), 2, 50, 4);
    assert_all_equivalent(&generators::fan(6, 3), 3, 50, 4);
}

#[test]
fn layered_graphs() {
    for seed in 0..4 {
        let dag = generators::layered(5, 4, 2, seed);
        assert_all_equivalent(&dag, seed, 25, 4);
    }
}

#[test]
fn binary_tree_aggregation() {
    let dag = generators::binary_in_tree(4); // 15 vertices
    assert_all_equivalent(&dag, 7, 30, 4);
}

#[test]
fn paper_figure_graphs() {
    assert_all_equivalent(&generators::fig1_graph(), 11, 40, 4);
    assert_all_equivalent(&generators::fig2_graph(), 12, 40, 4);
    assert_all_equivalent(&generators::fig3_graph(), 13, 40, 4);
}

#[test]
fn sparse_sources_exercise_absence_paths() {
    // Very sparse sources: most phases propagate nothing, so the
    // "information conveyed by absence" machinery is the common case.
    let dag = generators::layered(4, 3, 2, 9);
    let make = || -> Vec<Box<dyn Module>> {
        dag.vertices()
            .map(|v| -> Box<dyn Module> {
                if dag.is_source(v) {
                    Box::new(SourceModule::new(Sparse::counter(0.05, v.0 as u64)))
                } else {
                    Box::new(Aggregate::sum())
                }
            })
            .collect()
    };
    let mut seq = Sequential::new(&dag, make()).unwrap();
    seq.run(200).unwrap();
    let mut eng = Engine::builder(dag.clone(), make())
        .threads(8)
        .check_invariants(true)
        .build()
        .unwrap();
    let par = eng.run(200).unwrap().history.unwrap();
    assert_eq!(seq.into_history().equivalent(&par), Ok(()));
}

#[test]
fn anomaly_chain_with_heavy_compute() {
    // Workload wrappers make executions slow enough that real
    // interleaving occurs across phases.
    let dag = generators::chain(5);
    let make = || -> Vec<Box<dyn Module>> {
        vec![
            Box::new(SourceModule::new(RandomWalk::new(100.0, 5.0, 77))),
            Box::new(Workload::new(MovingAverage::new(8), 2_000)),
            Box::new(Workload::new(ChangeDetector::new(1.0), 2_000)),
            Box::new(Workload::new(ZScoreAnomaly::new(16, 2.5), 2_000)),
            Box::new(PassThrough),
        ]
    };
    let mut seq = Sequential::new(&dag, make()).unwrap();
    seq.run(60).unwrap();
    let mut eng = Engine::builder(dag.clone(), make())
        .threads(8)
        .check_invariants(true)
        .build()
        .unwrap();
    let par = eng.run(60).unwrap().history.unwrap();
    assert_eq!(seq.into_history().equivalent(&par), Ok(()));
}

#[test]
fn multiple_runs_compose() {
    // Running 3 × 10 phases must equal one 30-phase sequential run.
    let dag = generators::diamond();
    let mut seq = Sequential::new(&dag, modules_for(&dag, 5)).unwrap();
    seq.run(30).unwrap();
    let seq_hist = seq.into_history();

    let mut engine = Engine::builder(dag.clone(), modules_for(&dag, 5))
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let mut merged = ExecutionHistory::new(dag.vertex_count());
    for _ in 0..3 {
        let h = engine.run(10).unwrap().history.unwrap();
        for v in dag.vertices() {
            for (p, e) in h.of(v) {
                merged.record(v, *p, e.clone());
            }
        }
        for r in h.sink_outputs() {
            merged.record_sink(r.vertex, r.phase, r.value.clone());
        }
    }
    merged.finalize();
    assert_eq!(seq_hist.equivalent(&merged), Ok(()));
}

#[test]
fn bursty_sources_and_latest_value_memory() {
    let dag = generators::fan(4, 2);
    let make = || -> Vec<Box<dyn Module>> {
        dag.vertices()
            .map(|v| -> Box<dyn Module> {
                if dag.is_source(v) {
                    Box::new(SourceModule::new(Bursty::new(0.5, v.0 as u64 + 1)))
                } else if dag.is_sink(v) {
                    Box::new(PassThrough)
                } else {
                    Box::new(Aggregate::max())
                }
            })
            .collect()
    };
    let mut seq = Sequential::new(&dag, make()).unwrap();
    seq.run(100).unwrap();
    let mut eng = Engine::builder(dag.clone(), make())
        .threads(4)
        .check_invariants(true)
        .build()
        .unwrap();
    let par = eng.run(100).unwrap().history.unwrap();
    assert_eq!(seq.into_history().equivalent(&par), Ok(()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs × module mixes × thread counts are serializable.
    #[test]
    fn random_dag_serializable(
        n in 2usize..24,
        p in 0.05f64..0.4,
        graph_seed in 0u64..1000,
        mix_seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let dag = generators::random_dag(n, p, true, graph_seed);
        let seq = run_sequential(&dag, mix_seed, 15);
        let par = run_parallel(&dag, mix_seed, 15, threads);
        prop_assert!(seq.equivalent(&par).is_ok(),
            "divergence: {:?}", seq.equivalent(&par).unwrap_err());
    }

    /// The barrier baseline is serializable too.
    #[test]
    fn random_dag_barrier_serializable(
        n in 2usize..20,
        graph_seed in 0u64..500,
        mix_seed in 0u64..500,
    ) {
        let dag = generators::random_dag(n, 0.2, true, graph_seed);
        let seq = run_sequential(&dag, mix_seed, 12);
        let bar = run_barrier(&dag, mix_seed, 12, 4);
        prop_assert!(seq.equivalent(&bar).is_ok());
    }

    /// Sink outputs agree as well (ordering after finalize).
    #[test]
    fn sink_outputs_agree(
        layers in 2usize..5,
        width in 1usize..4,
        mix_seed in 0u64..300,
    ) {
        let dag = generators::layered(layers, width, 2, mix_seed);
        let seq = run_sequential(&dag, mix_seed, 10);
        let par = run_parallel(&dag, mix_seed, 10, 4);
        let sv: Vec<(VertexId, u64, String)> = seq
            .sink_outputs()
            .iter()
            .map(|r| (r.vertex, r.phase.get(), r.value.to_string()))
            .collect();
        let pv: Vec<(VertexId, u64, String)> = par
            .sink_outputs()
            .iter()
            .map(|r| (r.vertex, r.phase.get(), r.value.to_string()))
            .collect();
        prop_assert_eq!(sv, pv);
    }
}
