//! Reproduction of **Figure 3**: eight steps in the execution of a
//! 6-node computation graph across two pipelined phases, with the
//! partial / full / full-and-ready set memberships after each step.
//!
//! The figure's conventions: diamonds = partial set only, octagons =
//! full set only, squares = full and ready sets. We replay the exact
//! event order of the caption using the deterministic [`Stepper`]:
//!
//! (a) phase 1 initiated
//! (b) (1,1) executed, generated output
//! (c) phase 2 initiated
//! (d) (1,2) executed, generated no output
//! (e) (2,1) executed, generated output
//! (f) (2,2) executed, generated output
//! (g) (3,1) executed, generated output
//! (h) (4,1) executed, generated output
//!
//! Graph (1-based schedule indices): sources 1, 2; edges 1→3, 2→3,
//! 2→4, 3→5, 4→5, 5→6.

use event_correlation::core::{Emission, ExecCtx, FnModule, Module, SetMembership, Stepper};
use event_correlation::events::Value;
use event_correlation::graph::generators;

/// A source scripted per the caption: vertex 1 emits in phase 1 but not
/// phase 2; vertex 2 emits in both.
fn scripted_source(emit_phases: &'static [u64]) -> impl Module {
    FnModule::new("scripted", move |ctx: ExecCtx<'_>| {
        if emit_phases.contains(&ctx.phase.get()) {
            Emission::Broadcast(Value::Int(ctx.phase.get() as i64))
        } else {
            Emission::Silent
        }
    })
}

/// Interior vertices always forward when they receive anything.
fn forwarder() -> impl Module {
    FnModule::new("fwd", |ctx: ExecCtx<'_>| match ctx.inputs.fresh.last() {
        Some((_, v)) => Emission::Broadcast(v.clone()),
        None => Emission::Silent,
    })
}

fn build_stepper() -> Stepper {
    let dag = generators::fig3_graph();
    // Vertex ids are inserted in schedule order for fig3_graph, so
    // modules line up by insertion index.
    let modules: Vec<Box<dyn Module>> = vec![
        Box::new(scripted_source(&[1])),    // vertex 1
        Box::new(scripted_source(&[1, 2])), // vertex 2
        Box::new(forwarder()),              // vertex 3
        Box::new(forwarder()),              // vertex 4
        Box::new(forwarder()),              // vertex 5
        Box::new(forwarder()),              // vertex 6
    ];
    Stepper::new(&dag, modules).unwrap()
}

#[test]
fn figure3_eight_steps() {
    let mut s = build_stepper();

    // (a) Phase 1 initiated: both sources full+ready for phase 1.
    assert_eq!(s.start_phase(), 1);
    let snap = s.snapshot();
    assert_eq!(snap.ready(), vec![(1, 1), (2, 1)]);
    assert_eq!(snap.partial(), Vec::<(u32, u64)>::new());
    assert_eq!(snap.x_of(1), Some(0));

    // (b) (1,1) executed, generated output → (3,1) has a message but
    // vertex 2 has not finished phase 1, so (3,1) is only partial.
    let o = s.step_pair(1, 1).unwrap();
    assert_eq!(o.emitted, 1);
    let snap = s.snapshot();
    assert_eq!(snap.membership(3, 1), Some(SetMembership::Partial));
    assert_eq!(snap.ready(), vec![(2, 1)]);
    assert_eq!(snap.x_of(1), Some(1)); // vertex 1 done, vertex 2 active

    // (c) Phase 2 initiated: (1,2) becomes ready at once (vertex 1 has
    // no earlier unfinished phase); (2,2) is full but must wait behind
    // (2,1).
    assert_eq!(s.start_phase(), 2);
    let snap = s.snapshot();
    assert_eq!(snap.membership(1, 2), Some(SetMembership::FullAndReady));
    assert_eq!(snap.membership(2, 2), Some(SetMembership::FullOnly));
    assert_eq!(snap.x_of(2), Some(0));

    // (d) (1,2) executed, generated no output: nothing new downstream;
    // phase 2 may not overtake phase 1 (x_2 ≤ x_1).
    let o = s.step_pair(1, 2).unwrap();
    assert_eq!(o.emitted, 0);
    let snap = s.snapshot();
    assert_eq!(snap.membership(3, 2), None); // absence of messages
    assert!(snap.x_of(2).unwrap() <= snap.x_of(1).unwrap());

    // (e) (2,1) executed, generated output → vertices 3 and 4 now have
    // complete phase-1 information: both become full and ready.
    let o = s.step_pair(2, 1).unwrap();
    assert_eq!(o.emitted, 2);
    let snap = s.snapshot();
    assert_eq!(snap.membership(3, 1), Some(SetMembership::FullAndReady));
    assert_eq!(snap.membership(4, 1), Some(SetMembership::FullAndReady));
    assert_eq!(snap.x_of(1), Some(2));
    // (2,2) is now the minimal full phase for vertex 2 → ready.
    assert_eq!(snap.membership(2, 2), Some(SetMembership::FullAndReady));

    // (f) (2,2) executed, generated output → (3,2), (4,2) become full
    // (their predecessors finished phase 2) but NOT ready: their
    // phase-1 pairs are still pending — the no-overtaking rule in
    // action.
    let o = s.step_pair(2, 2).unwrap();
    assert_eq!(o.emitted, 2);
    let snap = s.snapshot();
    assert_eq!(snap.membership(3, 2), Some(SetMembership::FullOnly));
    assert_eq!(snap.membership(4, 2), Some(SetMembership::FullOnly));
    assert_eq!(snap.membership(3, 1), Some(SetMembership::FullAndReady));

    // (g) (3,1) executed, generated output → (5,1) partial (vertex 4
    // still pending for phase 1); (3,2) becomes ready.
    let o = s.step_pair(3, 1).unwrap();
    assert_eq!(o.emitted, 1);
    let snap = s.snapshot();
    assert_eq!(snap.membership(5, 1), Some(SetMembership::Partial));
    assert_eq!(snap.membership(3, 2), Some(SetMembership::FullAndReady));

    // (h) (4,1) executed, generated output → all of vertex 5's phase-1
    // inputs are known: (5,1) full and ready; (4,2) ready.
    let o = s.step_pair(4, 1).unwrap();
    assert_eq!(o.emitted, 1);
    let snap = s.snapshot();
    assert_eq!(snap.membership(5, 1), Some(SetMembership::FullAndReady));
    assert_eq!(snap.membership(4, 2), Some(SetMembership::FullAndReady));
    assert_eq!(snap.x_of(1), Some(4));

    // Epilogue: drain and verify both phases complete and the trace
    // recorded every transition.
    s.drain().unwrap();
    assert_eq!(s.completed_through(), 2);
    let trace = s.take_trace();
    let order = trace.execution_order();
    assert_eq!(
        &order[..6],
        &[(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (4, 1)],
        "the replayed interleaving matches the caption"
    );
    // Render the trace like the figure (smoke test of the formatter).
    let text = trace.to_string();
    assert!(text.contains("phase 1 initiated"));
    assert!(text.contains("(1, 1) executed"));
}

#[test]
fn figure3_serializable_under_any_interleaving() {
    // Whatever order the ready pairs are executed in, the histories
    // agree — the figure's interleaving is just one of many legal ones.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let reference = {
        let mut s = build_stepper();
        for _ in 0..4 {
            s.start_phase();
        }
        s.drain().unwrap();
        s.history()
    };
    for seed in 0..20 {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut s = build_stepper();
        for _ in 0..4 {
            s.start_phase();
        }
        loop {
            let mut ready = s.ready_pairs();
            if ready.is_empty() {
                break;
            }
            ready.shuffle(&mut rng);
            let (v, p) = ready[0];
            s.step_pair(v, p).unwrap();
        }
        assert_eq!(s.completed_through(), 4);
        assert_eq!(
            reference.equivalent(&s.history()),
            Ok(()),
            "seed {seed} diverged"
        );
    }
}
